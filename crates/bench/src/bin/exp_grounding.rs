//! **E3** — P2 grounding: entity-linking accuracy with/without each signal,
//! and terminology-disambiguation accuracy with/without context.
//!
//! Expected shape: lexical-only linking falls for popular-but-wrong senses;
//! adding embeddings recovers them; disambiguation accuracy rises with
//! context length. Metrics: precision/recall/F1 and top-1 accuracy — the
//! paper's named metrics for grounding quality.

use cda_bench::{f, header, row};
use cda_kg::linking::{Entity, Linker, LinkerConfig};
use cda_kg::vocab::{Concept, Vocabulary};

/// A benchmark of ambiguous mentions with gold entities and contexts.
fn linking_benchmark() -> (Linker, Vec<(&'static str, &'static str, &'static str)>) {
    let linker = Linker::new(
        vec![
            Entity::new(
                "labour_barometer",
                "Swiss Labour Market Barometer",
                vec!["barometer", "labour market barometer"],
                "monthly leading indicator survey labour market experts employment",
                40.0,
            ),
            Entity::new(
                "weather_barometer",
                "Barometer",
                vec!["barometer"],
                "instrument measuring atmospheric pressure weather meteorology",
                400.0,
            ),
            Entity::new(
                "mercury_element",
                "Mercury",
                vec!["mercury"],
                "chemical element metal liquid thermometer instrument",
                300.0,
            ),
            Entity::new(
                "mercury_planet",
                "Mercury",
                vec!["mercury", "planet mercury"],
                "smallest planet solar system orbit astronomy",
                350.0,
            ),
            Entity::new(
                "jaguar_animal",
                "Jaguar",
                vec!["jaguar"],
                "big cat feline predator rainforest animal",
                150.0,
            ),
            Entity::new(
                "jaguar_car",
                "Jaguar Cars",
                vec!["jaguar"],
                "british luxury car manufacturer vehicle automobile",
                500.0,
            ),
        ],
        128,
    );
    let cases = vec![
        ("barometer", "the labour market survey indicator for employment", "labour_barometer"),
        ("barometer", "atmospheric pressure is falling before the storm", "weather_barometer"),
        ("mercury", "the thermometer contains a silvery liquid metal element", "mercury_element"),
        ("mercury", "the smallest planet orbits closest to the sun", "mercury_planet"),
        ("jaguar", "the predator stalked through the rainforest", "jaguar_animal"),
        ("jaguar", "the luxury vehicle accelerates smoothly on the motorway", "jaguar_car"),
        ("barometer", "employment experts answer the monthly survey", "labour_barometer"),
        ("mercury", "astronomy students observed the orbit at dawn", "mercury_planet"),
    ];
    (linker, cases)
}

fn main() {
    header("E3", "grounding: entity linking ablation + disambiguation in context");
    let (linker, cases) = linking_benchmark();
    row(&["signals".into(), "top-1 acc".into(), "mrr".into()]);
    for (label, config) in [
        ("lexical only", LinkerConfig { use_lexical: true, use_embedding: false, use_popularity: false }),
        ("lexical+pop", LinkerConfig { use_lexical: true, use_embedding: false, use_popularity: true }),
        ("embedding only", LinkerConfig { use_lexical: false, use_embedding: true, use_popularity: false }),
        ("lex+embed", LinkerConfig { use_lexical: true, use_embedding: true, use_popularity: false }),
        ("all signals", LinkerConfig::default()),
    ] {
        let mut correct = 0usize;
        let mut mrr_total = 0.0;
        for (mention, context, gold) in &cases {
            let ranked = linker.link(mention, context, config);
            if ranked.first().map(|c| c.entity_id.as_str()) == Some(*gold) {
                correct += 1;
            }
            if let Some(pos) = ranked.iter().position(|c| c.entity_id == *gold) {
                mrr_total += 1.0 / (pos + 1) as f64;
            }
        }
        row(&[
            label.into(),
            f(correct as f64 / cases.len() as f64),
            f(mrr_total / cases.len() as f64),
        ]);
    }

    println!("\nterminology disambiguation (vocabulary, varying context):");
    let mut vocab = Vocabulary::new();
    vocab.register(
        "barometer",
        Concept::new("swiss_labour_barometer", "monthly labour market survey indicator employment", vec!["employment"]),
    );
    vocab.register(
        "barometer",
        Concept::new("weather_barometer", "atmospheric pressure instrument weather", vec!["meteorology"]),
    );
    row(&["context".into(), "top concept".into(), "confidence".into()]);
    for context in [
        "",
        "survey",
        "employment survey",
        "monthly employment survey of the labour market",
    ] {
        let d = vocab.disambiguate("barometer", context);
        row(&[
            format!("{:?}", &context[..context.len().min(14)]),
            d[0].concept.id.clone(),
            f(d[0].confidence),
        ]);
    }
}
