//! # cda-provenance
//!
//! Provenance and explanation machinery for **P3 Explainability** (and the
//! evidence side of **P4 Soundness**).
//!
//! The paper demands that "for every answer it should be possible to explain
//! how the answer was computed", introduces two new explanation properties —
//! **losslessness** ("an answer explanation is indeed representative of the
//! calculations and source data used to generate it") and **invertibility**
//! ("to be able to recover individual calculations from an explanation") —
//! and asks for provenance to be "tracked across components".
//!
//! * [`semiring`] — provenance semirings: why-provenance (witness sets),
//!   how-provenance (polynomials over source-row variables), and the
//!   counting semiring, following Green et al.'s framework referenced by the
//!   paper's survey citation \[21\];
//! * [`lineage`] — the cross-component lineage graph: datasets, model calls,
//!   queries, computations, and answers linked by `derivedFrom` edges;
//! * [`checks`] — executable **losslessness** and **invertibility**
//!   verification: losslessness replays the query on *only the cited rows*
//!   and demands the same answer; invertibility recomputes an aggregate from
//!   its how-provenance and compares (experiment E4 reports both rates);
//! * [`explain`] — the user-facing explanation renderer (sources, plan,
//!   code, NL summary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checks;
pub mod explain;
pub mod lineage;
pub mod mitigate;
pub mod semiring;

pub use checks::{check_invertibility, check_losslessness};
pub use mitigate::recalibrate;
pub use explain::Explanation;
pub use lineage::{LineageGraph, NodeKind};
pub use semiring::{HowPolynomial, Monomial};

use std::fmt;

/// Errors from provenance operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceError {
    /// A referenced lineage node does not exist.
    UnknownNode(usize),
    /// The query replay needed for a check failed.
    Replay(String),
    /// A row index was out of range for the result table.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Table size.
        len: usize,
    },
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(id) => write!(f, "unknown lineage node {id}"),
            Self::Replay(m) => write!(f, "replay failed: {m}"),
            Self::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range for result of {len} rows")
            }
        }
    }
}

impl std::error::Error for ProvenanceError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProvenanceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ProvenanceError::UnknownNode(3).to_string().contains('3'));
        assert!(ProvenanceError::RowOutOfRange { row: 9, len: 2 }.to_string().contains('9'));
    }
}
