//! The mutation gate — the only product path through which DML reaches the
//! world.
//!
//! Reads flow through swap-on-read snapshots and never need coordination;
//! writes are where reliability is won or lost, so every write funnels
//! through [`Session::apply_sql`], which stages the full pipeline:
//!
//! 1. **Static gate** (P4): the analyzer's DML pass (codes `A019`–`A023`)
//!    runs before anything executes, with the same analyzer-guided repair
//!    loop the query path uses. A statement that still dooms execution
//!    after repair is [`WriteDecision::Rejected`] — nothing was modified.
//! 2. **Effect analysis**: [`cda_analyzer::statement_effects`] derives the
//!    statement's static read/write sets, sharpened by the abstract
//!    interpreter (a provably-empty row match is reported as a no-op).
//! 3. **Guarded execution**: when [`crate::CdaConfig::effect_check`] is on, the
//!    write executes under a [`cda_sql::WriteGuard`] built from the static
//!    write set, so execution escaping the analysis aborts loudly instead
//!    of silently corrupting state the invalidation logic believes
//!    untouched.
//! 4. **Commit**: the session's world advances to a successor snapshot
//!    carrying [`WorldDelta::Data`] with the statement's effects — the
//!    durable layer then drops exactly the cached answers whose read sets
//!    intersect the write set (and keeps, re-stamped, everything else),
//!    table statistics are re-collected for the written table only, and
//!    the in-memory semantic cache is invalidated with the same precision.
//!    A write that matched zero rows commits nothing: no epoch bump, no
//!    invalidation, caches stay warm.
//!
//! Sessions holding the old snapshot keep a consistent view; the server's
//! write lane re-points them with
//! [`Session::adopt_world`](crate::session::Session::adopt_world).

use crate::session::{CacheStore, Session, SessionCache};
use crate::world::WorldDelta;
use cda_analyzer::EffectSet;

/// What the mutation gate decided about one DML statement.
#[derive(Debug, Clone)]
pub enum WriteDecision {
    /// The statement passed the gate and executed; the outcome says whether
    /// it committed (matched rows) or was a no-op.
    Applied(WriteOutcome),
    /// The static gate rejected the statement — nothing executed, nothing
    /// was modified.
    Rejected {
        /// NL renderings of the gate's findings (`A019`–`A023` et al.).
        annotations: Vec<String>,
        /// One-line summary of why the write was rejected.
        summary: String,
    },
}

/// The result of an applied (gate-approved, executed) write.
#[derive(Debug, Clone)]
pub struct WriteOutcome {
    /// The SQL that executed — post-repair, so it may differ from the input.
    pub sql: String,
    /// Target table (lowercased catalog key).
    pub table: String,
    /// Rows inserted, updated, or deleted.
    pub affected: u64,
    /// The statement's static effect set — what the invalidation used.
    pub effects: EffectSet,
    /// World epoch after the write (unchanged when nothing committed).
    pub epoch: u64,
    /// Whether the world advanced. False exactly when `affected == 0`:
    /// the commit decides, not the proof, so a write that matched nothing
    /// leaves the epoch and every cached answer untouched.
    pub committed: bool,
    /// Cached answers dropped by precise invalidation — in-memory entries
    /// whose read sets intersect the write set, plus durable records the
    /// storage-side reconciliation removed.
    pub cache_invalidated: usize,
    /// NL renderings of repair hints applied before the gate passed.
    pub repairs: Vec<String>,
}

impl Session {
    /// Apply one DML statement through the mutation gate. See the module
    /// docs for the staged pipeline; in short: static gate (with repair) →
    /// effect analysis → guarded execution → precise-invalidation commit.
    ///
    /// `Err` means the pipeline itself failed — a non-write statement, an
    /// execution error, or an effect-sanitizer violation (an analyzer
    /// soundness bug, by construction, surfaced loudly). Gate rejections
    /// are the `Ok(`[`WriteDecision::Rejected`]`)` value, not errors: they
    /// are the soundness mechanism working as designed.
    pub fn apply_sql(&mut self, sql: &str) -> crate::Result<WriteDecision> {
        let (effects, result, executed_sql, repairs) = {
            let catalog = self.world.catalog();
            let analyzer = cda_analyzer::Analyzer::new(catalog.sql())
                .with_stats(catalog.stats())
                .with_row_budget(self.config.row_budget);
            let mut sql = sql.to_owned();
            let mut report = analyzer.analyze_statement(&sql);
            let mut repairs = Vec::new();
            // Diagnosis→generation feedback, same loop as the query path.
            // The DML pass early-returns after an unknown table, so a
            // misspelled table *and* column takes two rounds to converge.
            if report.dooms_execution() && self.config.repair_rounds > 0 {
                for _ in 0..self.config.repair_rounds {
                    let hints = analyzer.repair_hints(&sql, &report);
                    if hints.is_empty() {
                        break;
                    }
                    let Some(fixed) = cda_analyzer::apply_hints(&sql, &hints) else {
                        break;
                    };
                    repairs.extend(hints.iter().map(|h| format!("[repair] {h}")));
                    sql = fixed;
                    report = analyzer.analyze_statement(&sql);
                    if !report.dooms_execution() {
                        break;
                    }
                }
            }
            if report.dooms_execution() {
                return Ok(WriteDecision::Rejected {
                    annotations: report.annotations(),
                    summary: report.summary(),
                });
            }
            let stmt = cda_sql::parser::parse_statement(&sql).map_err(sql_err)?;
            if !stmt.is_write() {
                return Err(crate::CdaError::Substrate(
                    "apply_sql takes DML (INSERT/UPDATE/DELETE); route SELECT through \
                     the query path"
                        .into(),
                ));
            }
            let effects =
                cda_analyzer::statement_effects(catalog.sql(), &stmt, Some(catalog.stats()))
                    .map_err(sql_err)?;
            let plan = cda_sql::dml::plan_dml(catalog.sql(), &stmt).map_err(sql_err)?;
            // The sanitizer cross-checks execution against the static write
            // set — a cross-check on the analyzer (CdaConfig::effect_check),
            // not a user-facing property.
            let guard = if self.config.effect_check { effects.write_guard() } else { None };
            let result =
                cda_sql::dml::execute_dml_checked(catalog.sql(), &plan, self.exec_options(), guard.as_ref())
                    .map_err(sql_err)?;
            (effects, result, sql, repairs)
        };

        if result.affected == 0 {
            // The commit decides, not the proof: a write that matched no
            // rows changes nothing, so the epoch and every cached answer —
            // in memory and on disk — stay exactly as they were.
            return Ok(WriteDecision::Applied(WriteOutcome {
                sql: executed_sql,
                table: result.table,
                affected: 0,
                effects,
                epoch: self.world.epoch(),
                committed: false,
                cache_invalidated: 0,
                repairs,
            }));
        }

        let mut catalog = self.world.catalog().clone();
        catalog.replace_table(&result.table, result.new_table)?;
        let world = self
            .world
            .successor()
            .catalog(catalog)
            .delta(WorldDelta::Data(effects.clone()))
            .open()?
            .into_shared();
        let mem_dropped = match &mut self.semantic_cache {
            SessionCache::Mem(c) => c.invalidate(&effects),
            SessionCache::Durable(c) => {
                c.set_world(std::sync::Arc::clone(&world));
                0
            }
        };
        let outcome = WriteOutcome {
            sql: executed_sql,
            table: result.table,
            affected: result.affected,
            effects,
            epoch: world.epoch(),
            committed: true,
            cache_invalidated: mem_dropped + world.stale_cache_dropped(),
            repairs,
        };
        self.world = world;
        Ok(WriteDecision::Applied(outcome))
    }
}

fn sql_err(e: cda_sql::SqlError) -> crate::CdaError {
    crate::CdaError::Substrate(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_session;

    fn count(s: &Session, sql: &str) -> i64 {
        let r = cda_sql::execute(s.catalog().sql(), sql).unwrap();
        match r.table.value(0, 0).unwrap() {
            cda_dataframe::Value::Int(v) => v,
            other => panic!("expected an integer count, got {other:?}"),
        }
    }

    #[test]
    fn applied_write_advances_epoch_and_mutates_data() {
        let mut s = demo_session(11);
        let epoch0 = s.epoch();
        let before = count(&s, "SELECT COUNT(*) FROM employment_by_type");
        let d = s
            .apply_sql(
                "INSERT INTO employment_by_type (canton, type, employees) \
                 VALUES ('Uri', 'full_time', 1234)",
            )
            .unwrap();
        let WriteDecision::Applied(o) = d else { panic!("gate rejected a valid insert: {d:?}") };
        assert_eq!(o.affected, 1);
        assert!(o.committed);
        assert_eq!(o.epoch, epoch0 + 1);
        assert_eq!(s.epoch(), epoch0 + 1);
        let after = count(&s, "SELECT COUNT(*) FROM employment_by_type");
        assert_eq!(after, before + 1);
    }

    #[test]
    fn doomed_write_is_rejected_without_mutating() {
        let mut s = demo_session(11);
        // With repair off, an unknown table (A019) dooms the statement
        // outright. (With repair on, nearest-name substitution can save it.)
        s.config.repair_rounds = 0;
        let epoch0 = s.epoch();
        let d = s.apply_sql("DELETE FROM no_such_table_at_all").unwrap();
        let WriteDecision::Rejected { annotations, summary } = d else {
            panic!("gate passed a doomed delete: {d:?}")
        };
        assert!(!annotations.is_empty());
        assert!(!summary.is_empty());
        assert_eq!(s.epoch(), epoch0, "rejected writes must not advance the world");
    }

    #[test]
    fn repair_fixes_a_misspelled_table_then_applies() {
        let mut s = demo_session(11);
        let d = s
            .apply_sql(
                "UPDATE employment_by_typ SET employees = 0 WHERE canton = 'ZH'",
            )
            .unwrap();
        let WriteDecision::Applied(o) = d else { panic!("repair failed: {d:?}") };
        assert!(o.sql.contains("employment_by_type"));
        assert!(!o.repairs.is_empty());
        assert!(o.affected > 0);
    }

    #[test]
    fn noop_write_commits_nothing() {
        let mut s = demo_session(11);
        let epoch0 = s.epoch();
        let d = s
            .apply_sql("DELETE FROM employment_by_type WHERE year = 1900")
            .unwrap();
        let WriteDecision::Applied(o) = d else { panic!("{d:?}") };
        assert_eq!(o.affected, 0);
        assert!(!o.committed);
        assert_eq!(o.epoch, epoch0);
        assert_eq!(s.epoch(), epoch0, "a zero-row write must not bump the epoch");
        assert_eq!(o.cache_invalidated, 0);
    }

    #[test]
    fn select_is_refused_by_the_write_path() {
        let mut s = demo_session(11);
        let err = s.apply_sql("SELECT canton FROM employment_by_type");
        assert!(err.is_err() || matches!(err, Ok(WriteDecision::Rejected { .. })));
        // Either way nothing changed.
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn precise_invalidation_drops_only_intersecting_cached_answers() {
        let mut s = demo_session(11);
        // Warm the cache with an answer over employment_by_type.
        let a1 = s.process("What is the total employees in employment_by_type per canton?");
        assert!(a1.executed_sql.is_some(), "{}", a1.text);
        let entries_before = s.stats().cache.entries;
        assert!(entries_before > 0, "the analysis turn should cache its answer");
        // Write to a table none of the cached plans read.
        let d = s
            .apply_sql(
                "INSERT INTO wage_stats (canton, sector, median_wage) \
                 VALUES ('ZH', 'services', 5000.0)",
            )
            .unwrap();
        let WriteDecision::Applied(o) = d else { panic!("{d:?}") };
        assert!(o.committed);
        assert_eq!(
            o.cache_invalidated, 0,
            "a write to an unread table must not drop cached answers"
        );
        assert_eq!(s.stats().cache.entries, entries_before);
        // Now write to the table the cached answer reads: it must drop.
        let d = s
            .apply_sql(
                "UPDATE employment_by_type SET employees = employees WHERE canton = 'ZH'",
            )
            .unwrap();
        let WriteDecision::Applied(o) = d else { panic!("{d:?}") };
        assert!(o.cache_invalidated >= 1, "intersecting cached answers must drop");
        assert!(s.stats().cache.entries < entries_before + 1);
    }

    #[test]
    fn effect_check_is_answer_neutral() {
        let sqls = [
            "INSERT INTO employment_by_type (canton, type, employees) \
             VALUES ('Uri', 'part_time', 77)",
            "UPDATE employment_by_type SET employees = 1 WHERE canton = 'BE'",
            "DELETE FROM employment_by_type WHERE canton = 'GE'",
        ];
        for sql in sqls {
            let mut on = demo_session(5);
            on.config.effect_check = true;
            let mut off = demo_session(5);
            off.config.effect_check = false;
            let (a, b) = (on.apply_sql(sql).unwrap(), off.apply_sql(sql).unwrap());
            match (a, b) {
                (WriteDecision::Applied(x), WriteDecision::Applied(y)) => {
                    assert_eq!(x.affected, y.affected, "{sql}");
                    assert_eq!(x.epoch, y.epoch, "{sql}");
                }
                (x, y) => panic!("decisions diverged under the sanitizer: {x:?} vs {y:?}"),
            }
            let ta = count(&on, "SELECT COUNT(*) FROM employment_by_type");
            let tb = count(&off, "SELECT COUNT(*) FROM employment_by_type");
            assert_eq!(ta, tb, "{sql}");
        }
    }
}
