//! Template-based natural-language generation.
//!
//! The NL model layer must "generate natural language explanations of
//! results or summaries of data sources". Generation here is deliberately
//! template-driven: deterministic, auditable, and — crucially for P3 —
//! structurally unable to assert anything that is not in its inputs. Every
//! renderer takes the data *and its provenance* and cites sources inline,
//! which is the paper's "answer, confidence score, and provenance data"
//! output contract (layer ⓔ).

use cda_dataframe::Table;

/// Render a one-line summary of a dataset for discovery answers.
pub fn describe_dataset(name: &str, description: &str, rows: usize, columns: usize) -> String {
    format!("{name}: {description} ({rows} rows × {columns} columns)")
}

/// Render a discovery answer offering candidate datasets, with the
/// clarifying question Figure 1's first turn ends with (P5 Guidance).
pub fn discovery_answer(assumption: &str, options: &[(String, String)]) -> String {
    let mut out = String::new();
    if !assumption.is_empty() {
        out.push_str(&format!("I am assuming you are interested in {assumption}.\n"));
    }
    out.push_str("Our data sources contain ");
    let descs: Vec<String> =
        options.iter().map(|(name, desc)| format!("{desc} ({name})")).collect();
    out.push_str(&descs.join(", or "));
    out.push_str(". Which would you prefer?");
    out
}

/// Render a tabular answer with source citation.
pub fn tabular_answer(table: &Table, source: &str, max_rows: usize) -> String {
    let mut out = table.render(max_rows);
    if !source.is_empty() {
        out.push_str(&format!("Source: {source}\n"));
    }
    out
}

/// Render a seasonality-insight answer in the Figure-1 style: the claim, the
/// confidence, the sufficiency caveat, and the code that produced it.
pub fn seasonality_answer(
    period: usize,
    confidence: f64,
    span_note: Option<&str>,
    code: &str,
) -> String {
    let mut out = format!(
        "Given the statistics, there is a seasonality in the data; the best fitted seasonal \
         period is {period} (confidence {:.0}%).",
        confidence * 100.0
    );
    if let Some(note) = span_note {
        out.push(' ');
        out.push_str(note);
    }
    out.push_str(
        "\nHere are the trend, seasonality and residual components, with the code that \
         produced them:\n",
    );
    out.push_str(code);
    out
}

/// Render the refusal used when data is insufficient (P4: "refrain from
/// producing answers when unable to produce any answer with sufficient
/// certainty").
pub fn insufficient_answer(what: &str, required: usize, available: usize) -> String {
    format!(
        "I cannot reliably compute {what}: it needs at least {required} observations but only \
         {available} are available. I would rather not guess — could you broaden the time range \
         or pick another dataset?"
    )
}

/// Render an analysis code snippet (the "corresponding python snippet" of
/// Figure 1) for a seasonal decomposition.
pub fn decomposition_snippet(dataset: &str, column: &str, period: usize) -> String {
    format!(
        "import pandas as pd\n\
         from statsmodels.tsa.seasonal import seasonal_decompose\n\
         df = load_dataset(\"{dataset}\")\n\
         result = seasonal_decompose(df[\"{column}\"], model=\"additive\", period={period})\n\
         result.plot()\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, DataType, Field, Schema};

    #[test]
    fn dataset_description() {
        let s = describe_dataset("barometer", "monthly labour-market indicator", 120, 2);
        assert!(s.contains("barometer"));
        assert!(s.contains("120 rows"));
    }

    #[test]
    fn discovery_answer_lists_options_and_asks() {
        let s = discovery_answer(
            "data about employment or the labour market",
            &[
                ("employment_by_type".into(), "employment type distribution".into()),
                ("barometer".into(), "the Swiss Labour Market Barometer".into()),
            ],
        );
        assert!(s.contains("I am assuming"));
        assert!(s.contains("employment type distribution"));
        assert!(s.contains("Barometer"));
        assert!(s.ends_with("Which would you prefer?"));
    }

    #[test]
    fn tabular_answer_cites_source() {
        let t = Table::from_columns(
            Schema::new(vec![Field::new("x", DataType::Int)]),
            vec![Column::from_ints(&[1, 2])],
        )
        .unwrap();
        let s = tabular_answer(&t, "https://example.org/data", 10);
        assert!(s.contains("Source: https://example.org/data"));
        assert!(s.contains('x'));
    }

    #[test]
    fn seasonality_answer_matches_figure1_shape() {
        let code = decomposition_snippet("barometer", "value", 6);
        let s = seasonality_answer(
            6,
            0.90,
            Some("I am only reporting data for the last 10 years since there is no sufficient data earlier."),
            &code,
        );
        assert!(s.contains("best fitted seasonal period is 6"));
        assert!(s.contains("confidence 90%"));
        assert!(s.contains("last 10 years"));
        assert!(s.contains("seasonal_decompose"));
        assert!(s.contains("period=6"));
    }

    #[test]
    fn refusal_names_the_gap() {
        let s = insufficient_answer("seasonality insights", 24, 7);
        assert!(s.contains("24"));
        assert!(s.contains('7'));
        assert!(s.contains("rather not guess"));
    }
}
