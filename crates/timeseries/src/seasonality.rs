//! Seasonality detection with a confidence score.
//!
//! This is the computation behind the Figure-1 sentence "the best fitted
//! seasonal period is 6 (confidence 90%)". Candidate periods are the local
//! maxima of the autocorrelation function; each candidate is scored by the
//! variance its decomposition explains relative to alternatives, yielding a
//! normalized **confidence** the soundness layer (P4) can surface and the
//! calibration experiment E10 can validate against ground truth.

use crate::decompose::decompose;
use crate::series::TimeSeries;
use crate::{Result, TsError};

/// The outcome of seasonality detection.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalityResult {
    /// The best-fitting period (in observations).
    pub period: usize,
    /// Confidence in `[0, 1]`: the best candidate's share of total candidate
    /// strength, discounted by residual noise.
    pub confidence: f64,
    /// Autocorrelation at the chosen lag.
    pub acf_peak: f64,
    /// All candidate periods with their scores (descending score).
    pub candidates: Vec<(usize, f64)>,
}

/// Sample autocorrelation at lags `1..=max_lag`.
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Vec<f64> {
    let n = values.len();
    if n < 2 {
        return vec![0.0; max_lag];
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let denom: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    (1..=max_lag)
        .map(|lag| {
            if lag >= n || denom == 0.0 {
                return 0.0;
            }
            let num: f64 = (0..n - lag)
                .map(|i| (values[i] - mean) * (values[i + lag] - mean))
                .sum();
            num / denom
        })
        .collect()
}

/// Detect the dominant seasonal period of a series.
///
/// Requires at least `min_obs` observations (default callers pass ≥ 3 full
/// candidate periods). Returns [`TsError::InsufficientData`] otherwise — the
/// refusal path P4 requires.
pub fn detect_seasonality(series: &TimeSeries, min_obs: usize) -> Result<SeasonalityResult> {
    series.require(min_obs.max(8))?;
    let values = series.values();
    let n = values.len();
    let max_lag = (n / 2).max(2);
    let acf = autocorrelation(values, max_lag);
    // candidate periods: local ACF maxima with positive correlation
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for lag in 2..max_lag {
        let idx = lag - 1; // acf[0] is lag 1
        let left = if idx == 0 { f64::NEG_INFINITY } else { acf[idx - 1] };
        let right = if idx + 1 < acf.len() { acf[idx + 1] } else { f64::NEG_INFINITY };
        if acf[idx] > 0.1 && acf[idx] >= left && acf[idx] >= right {
            candidates.push((lag, acf[idx]));
        }
    }
    if candidates.is_empty() {
        return Err(TsError::InvalidParameter("no seasonal structure detected".into()));
    }
    // Score each candidate: ACF evidence + *seasonal* fit, i.e. how much of
    // the detrended variance the seasonal component explains. (Plain R²
    // would be fooled by the moving-average trend absorbing noise.)
    let mut scored: Vec<(usize, f64)> = Vec::new();
    for &(period, acf_val) in &candidates {
        if n >= 2 * period {
            if let Ok(fit) = seasonal_fit(series, period) {
                scored.push((period, 0.5 * acf_val.max(0.0) + 0.5 * fit));
            }
        }
    }
    if scored.is_empty() {
        return Err(TsError::InsufficientData { required: 2 * candidates[0].0, available: n });
    }
    // Merge harmonics into their fundamental (lag 12 of a period-6 series
    // peaks as high as lag 6): ascending by period, a candidate divisible by
    // an already-kept fundamental folds into it with the max score.
    scored.sort_by_key(|&(p, _)| p);
    let mut fundamentals: Vec<(usize, f64)> = Vec::new();
    for (p, s) in scored {
        match fundamentals.iter_mut().find(|(f, _)| p % *f == 0) {
            Some((_, fs)) => *fs = fs.max(s),
            None => fundamentals.push((p, s)),
        }
    }
    fundamentals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (period, best_score) = fundamentals[0];
    let second_score = fundamentals.get(1).map_or(0.0, |&(_, s)| s);
    // Confidence = seasonal fit × ACF significance × dominance over the
    // runner-up hypothesis.
    let fit = seasonal_fit(series, period).unwrap_or(0.0);
    let acf_peak = acf.get(period - 1).copied().unwrap_or(0.0);
    let white_noise_band = 4.0 / (n as f64).sqrt();
    let significance = (acf_peak / white_noise_band).clamp(0.0, 1.0);
    let dominance = if best_score > 0.0 { best_score / (best_score + second_score) } else { 0.0 };
    let confidence = (fit * significance * dominance).clamp(0.0, 1.0);
    Ok(SeasonalityResult { period, confidence, acf_peak, candidates: fundamentals })
}

/// Fraction of the *detrended* variance explained by the seasonal component
/// of a decomposition at `period` (clamped to `[0, 1]`).
pub fn seasonal_fit(series: &TimeSeries, period: usize) -> Result<f64> {
    let d = decompose(series, period)?;
    let values = series.values();
    let detrended: Vec<f64> = values.iter().zip(&d.trend).map(|(&v, &t)| v - t).collect();
    let mean = detrended.iter().sum::<f64>() / detrended.len() as f64;
    let var: f64 = detrended.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return Ok(0.0);
    }
    let resid: f64 = d.residual.iter().map(|r| r * r).sum();
    Ok((1.0 - resid / var).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let ts = TimeSeries::synthetic_seasonal(120, 12, 10.0, 0.0, 0.0, 1);
        let acf = autocorrelation(ts.values(), 30);
        // lag 12 (index 11) should be a strong positive peak
        assert!(acf[11] > 0.9, "acf@12 = {}", acf[11]);
        // lag 6 (half period) strongly negative for a sinusoid
        assert!(acf[5] < -0.5, "acf@6 = {}", acf[5]);
    }

    #[test]
    fn acf_edge_cases() {
        assert_eq!(autocorrelation(&[1.0], 3), vec![0.0, 0.0, 0.0]);
        let flat = autocorrelation(&[2.0; 10], 3);
        assert!(flat.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn detects_period_six_like_figure_one() {
        // the Figure-1 answer: monthly barometer with 6-month seasonality
        let ts = TimeSeries::synthetic_seasonal(120, 6, 5.0, 0.05, 0.5, 42);
        let r = detect_seasonality(&ts, 24).unwrap();
        assert_eq!(r.period, 6);
        assert!(r.confidence > 0.6, "confidence {}", r.confidence);
    }

    #[test]
    fn detects_period_twelve() {
        let ts = TimeSeries::synthetic_seasonal(144, 12, 8.0, 0.0, 1.0, 7);
        let r = detect_seasonality(&ts, 24).unwrap();
        assert_eq!(r.period, 12);
    }

    #[test]
    fn confidence_decreases_with_noise() {
        let clean = TimeSeries::synthetic_seasonal(120, 6, 5.0, 0.0, 0.2, 3);
        let noisy = TimeSeries::synthetic_seasonal(120, 6, 5.0, 0.0, 8.0, 3);
        let rc = detect_seasonality(&clean, 24).unwrap();
        // refusing on very noisy data is also acceptable, hence `if let`
        if let Ok(rn) = detect_seasonality(&noisy, 24) {
            assert!(rc.confidence > rn.confidence,
                "clean {} vs noisy {}", rc.confidence, rn.confidence);
        }
    }

    #[test]
    fn insufficient_data_is_refused() {
        let ts = TimeSeries::synthetic_seasonal(10, 6, 5.0, 0.0, 0.1, 1);
        assert!(matches!(
            detect_seasonality(&ts, 24),
            Err(TsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn pure_noise_yields_error_or_low_confidence() {
        let ts = TimeSeries::synthetic_seasonal(200, 0, 0.0, 0.0, 1.0, 5);
        match detect_seasonality(&ts, 24) {
            Err(_) => {}
            Ok(r) => assert!(r.confidence < 0.5, "noise confidence {}", r.confidence),
        }
    }

    #[test]
    fn candidates_are_reported_sorted() {
        let ts = TimeSeries::synthetic_seasonal(144, 12, 8.0, 0.0, 0.5, 2);
        let r = detect_seasonality(&ts, 24).unwrap();
        for w in r.candidates.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
