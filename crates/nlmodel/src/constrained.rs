//! Inference-time output control: constrained decoding, rejection sampling,
//! and reward-guided reranking.
//!
//! The paper (Sec. 3.2, Soundness): "Structured outputs can also be obtained
//! through a combination of rejection sampling, constrained decoding and
//! parsing" and "reward-augmented decoding". Experiment E7 sweeps these
//! strategies and measures SQL-validity rate and execution accuracy.
//!
//! * [`DecodingStrategy::Free`] — take the first sample as-is.
//! * [`DecodingStrategy::Constrained`] — discard candidates that fail the
//!   SQL grammar (parser as the constraint automaton).
//! * [`DecodingStrategy::Rejection`] — additionally require the candidate to
//!   *execute* against the catalog without binding/semantic errors.
//! * [`DecodingStrategy::Reranked`] — sample k, keep the valid ones, and
//!   pick the candidate with the highest reward-model score.
//!
//! Candidates that the static gate ([`cda_analyzer::Analyzer`]) proves
//! doomed (unknown tables/columns, GROUP BY violations, type misuse, …) are
//! discarded **before** execution-based verification: for those findings a
//! failed execution is implied, so the gate cannot change which candidates
//! are accepted — it only skips the execution cost (experiment E13 measures
//! the saving; [`DecodeResult::static_rejects`] counts the skips). When the
//! analyzer carries table statistics and a row budget ([`decode_with`]),
//! candidates whose *estimated* result size exceeds the budget are skipped
//! too ([`DecodeResult::budget_rejects`]) — the cost-before-run vetting of
//! experiment E14.

use crate::lm::{Generation, Nl2SqlPrompt, SimLm};
use crate::{NlError, Result};
use cda_analyzer::Analyzer;
use cda_sql::{Catalog, execute};

/// Decoding strategies of increasing control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodingStrategy {
    /// First sample, unchecked.
    Free,
    /// Grammar-constrained: first sample that parses.
    Constrained,
    /// Constrained + must execute against the catalog.
    Rejection,
    /// Sample k, filter to executable, rerank by reward.
    Reranked,
}

impl DecodingStrategy {
    /// Label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            DecodingStrategy::Free => "free",
            DecodingStrategy::Constrained => "constrained",
            DecodingStrategy::Rejection => "rejection",
            DecodingStrategy::Reranked => "reranked",
        }
    }
}

/// The outcome of a controlled decode.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// The chosen generation.
    pub generation: Generation,
    /// Samples drawn before acceptance.
    pub attempts: usize,
    /// Candidates discarded by the static soundness gate without executing.
    pub static_rejects: usize,
    /// Candidates discarded because their estimated result size exceeded
    /// the analyzer's row budget (requires stats + budget, see
    /// [`decode_with`]).
    pub budget_rejects: usize,
}

/// A transparent reward model for candidate SQL: parses (+1), executes (+2),
/// returns non-empty results (+0.5), mentions every filter column of the
/// question's vocabulary (+0.5 heuristic via length proximity to the prompt's
/// schema terms). Scores are deliberately simple and inspectable.
pub fn reward(catalog: &Catalog, sql: &str) -> f64 {
    let mut r = 0.0;
    if cda_sql::parser::parse(sql).is_err() {
        return r;
    }
    r += 1.0;
    // Statically-doomed candidates would fail execution anyway; skip the
    // execution cost without changing the score.
    if Analyzer::new(catalog).execution_doomed(sql) {
        return r;
    }
    if let Ok(result) = execute(catalog, sql) {
        r += 2.0;
        if result.table.num_rows() > 0 {
            r += 0.5;
        }
    }
    r
}

/// Run one decode under a strategy against a plain catalog (static gate
/// only, no cost pass). `budget` bounds sampling for the rejection/reranked
/// strategies.
pub fn decode(
    lm: &SimLm,
    prompt: &Nl2SqlPrompt,
    catalog: &Catalog,
    strategy: DecodingStrategy,
    temperature: f64,
    budget: usize,
) -> Result<DecodeResult> {
    decode_with(lm, prompt, &Analyzer::new(catalog), strategy, temperature, budget)
}

/// Run one decode under a strategy, gated by a configured [`Analyzer`].
/// When the analyzer carries statistics and a row budget, the rejection
/// strategy also skips candidates whose estimated result size exceeds the
/// budget — before paying their (large) execution cost.
pub fn decode_with(
    lm: &SimLm,
    prompt: &Nl2SqlPrompt,
    analyzer: &Analyzer<'_>,
    strategy: DecodingStrategy,
    temperature: f64,
    budget: usize,
) -> Result<DecodeResult> {
    let budget = budget.max(1);
    let catalog = analyzer.catalog();
    match strategy {
        DecodingStrategy::Free => Ok(DecodeResult {
            generation: lm.generate_sql(prompt, temperature, 0),
            attempts: 1,
            static_rejects: 0,
            budget_rejects: 0,
        }),
        DecodingStrategy::Constrained => {
            for s in 0..budget as u64 {
                let g = lm.generate_sql(prompt, temperature, s);
                if cda_sql::parser::parse(&g.sql).is_ok() {
                    return Ok(DecodeResult {
                        generation: g,
                        attempts: s as usize + 1,
                        static_rejects: 0,
                        budget_rejects: 0,
                    });
                }
            }
            Err(NlError::BudgetExhausted { attempts: budget })
        }
        DecodingStrategy::Rejection => {
            let mut static_rejects = 0usize;
            let mut budget_rejects = 0usize;
            for s in 0..budget as u64 {
                let g = lm.generate_sql(prompt, temperature, s);
                // Pre-execution gate: a statically-doomed candidate cannot
                // pass the execute() check below, so skip it unexecuted; an
                // over-budget candidate would execute but produce a result
                // too large to be useful interactively.
                let report = analyzer.analyze(&g.sql);
                if report.dooms_execution() {
                    static_rejects += 1;
                    continue;
                }
                if report.exceeds_budget() {
                    budget_rejects += 1;
                    continue;
                }
                if execute(catalog, &g.sql).is_ok() {
                    return Ok(DecodeResult {
                        generation: g,
                        attempts: s as usize + 1,
                        static_rejects,
                        budget_rejects,
                    });
                }
            }
            Err(NlError::BudgetExhausted { attempts: budget })
        }
        DecodingStrategy::Reranked => {
            let gens = lm.sample_k(prompt, temperature, budget);
            let mut best: Option<(f64, usize)> = None;
            for (i, g) in gens.iter().enumerate() {
                let score = reward(catalog, &g.sql) + g.mean_logprob.exp() * 0.1;
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, i));
                }
            }
            let Some((score, i)) = best else {
                return Err(NlError::BudgetExhausted { attempts: budget });
            };
            if score <= 0.0 {
                return Err(NlError::BudgetExhausted { attempts: budget });
            }
            Ok(DecodeResult {
                generation: gens[i].clone(),
                attempts: budget,
                static_rejects: 0,
                budget_rejects: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::SimLmConfig;
    use crate::nl2sql::AnalyticTask;
    use cda_dataframe::kernels::AggKind;
    use cda_dataframe::{Column, DataType, Field, Schema, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("jobs", DataType::Int),
            ]),
            vec![Column::from_strs(&["ZH", "GE"]), Column::from_ints(&[10, 20])],
        )
        .unwrap();
        c.register("employment", t).unwrap();
        c
    }

    fn prompt() -> Nl2SqlPrompt {
        Nl2SqlPrompt {
            task: AnalyticTask {
                table: "employment".into(),
                agg: AggKind::Sum,
                metric: Some("jobs".into()),
                group_by: Some("canton".into()),
                filters: vec![],
                order_desc: false,
                limit: None,
            },
            schema: Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("jobs", DataType::Int),
            ]),
            other_tables: vec![],
        }
    }

    #[test]
    fn reward_model_ranks_sensibly() {
        let c = catalog();
        let invalid = reward(&c, "SELECT FROM FROM");
        let unbound = reward(&c, "SELECT nope FROM employment");
        let good = reward(&c, "SELECT SUM(jobs) FROM employment");
        assert_eq!(invalid, 0.0);
        assert_eq!(unbound, 1.0);
        assert!(good >= 3.5);
    }

    #[test]
    fn free_decoding_can_emit_garbage() {
        let lm = SimLm::new(SimLmConfig { hallucination_rate: 1.0, seed: 3, ..Default::default() });
        let c = catalog();
        let mut saw_invalid = false;
        for seed in 0..30 {
            let lm =
                SimLm::new(SimLmConfig { hallucination_rate: 1.0, seed, ..Default::default() });
            let r = decode(&lm, &prompt(), &c, DecodingStrategy::Free, 1.0, 1).unwrap();
            if cda_sql::parser::parse(&r.generation.sql).is_err() {
                saw_invalid = true;
                break;
            }
        }
        let _ = lm;
        assert!(saw_invalid, "free decoding should eventually emit invalid SQL");
    }

    #[test]
    fn constrained_decoding_always_parses() {
        let c = catalog();
        for seed in 0..20 {
            let lm =
                SimLm::new(SimLmConfig { hallucination_rate: 0.9, seed, ..Default::default() });
            if let Ok(r) = decode(&lm, &prompt(), &c, DecodingStrategy::Constrained, 1.0, 16) {
                assert!(cda_sql::parser::parse(&r.generation.sql).is_ok());
            }
        }
    }

    #[test]
    fn rejection_decoding_always_executes() {
        let c = catalog();
        for seed in 0..20 {
            let lm =
                SimLm::new(SimLmConfig { hallucination_rate: 0.9, seed, ..Default::default() });
            if let Ok(r) = decode(&lm, &prompt(), &c, DecodingStrategy::Rejection, 1.0, 16) {
                assert!(execute(&c, &r.generation.sql).is_ok());
            }
        }
    }

    #[test]
    fn reranked_prefers_executable_candidates() {
        let c = catalog();
        let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.8, seed: 11, ..Default::default() });
        let r = decode(&lm, &prompt(), &c, DecodingStrategy::Reranked, 1.0, 12).unwrap();
        assert!(execute(&c, &r.generation.sql).is_ok());
        assert_eq!(r.attempts, 12);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // a prompt whose table is absent from the catalog can never execute
        let mut p = prompt();
        p.task.table = "missing".into();
        let c = catalog();
        let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.0, ..Default::default() });
        let e = decode(&lm, &p, &c, DecodingStrategy::Rejection, 0.0, 4);
        assert!(matches!(e, Err(NlError::BudgetExhausted { attempts: 4 })));
    }

    #[test]
    fn static_gate_preserves_rejection_outcomes() {
        // With and without the gate, rejection decoding must accept the same
        // candidate: the gate only skips executions that would have failed.
        let c = catalog();
        for seed in 0..20 {
            let lm =
                SimLm::new(SimLmConfig { hallucination_rate: 0.9, seed, ..Default::default() });
            let gated = decode(&lm, &prompt(), &c, DecodingStrategy::Rejection, 1.0, 16);
            // Reference: replay the same sample stream with execute() alone.
            let mut reference = None;
            for s in 0..16u64 {
                let g = lm.generate_sql(&prompt(), 1.0, s);
                if execute(&c, &g.sql).is_ok() {
                    reference = Some((g.sql, s as usize + 1));
                    break;
                }
            }
            match (gated, reference) {
                (Ok(r), Some((sql, attempts))) => {
                    assert_eq!(r.generation.sql, sql, "seed {seed}");
                    assert_eq!(r.attempts, attempts, "seed {seed}");
                }
                (Err(_), None) => {}
                (g, r) => panic!("gate changed the outcome at seed {seed}: {g:?} vs {r:?}"),
            }
        }
    }

    #[test]
    fn static_gate_counts_skipped_candidates() {
        // A prompt over a missing table is statically doomed every time.
        let mut p = prompt();
        p.task.table = "missing".into();
        let c = catalog();
        let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.0, ..Default::default() });
        let e = decode(&lm, &p, &c, DecodingStrategy::Rejection, 0.0, 4);
        assert!(matches!(e, Err(NlError::BudgetExhausted { attempts: 4 })));
        let ok = decode(&lm, &prompt(), &c, DecodingStrategy::Rejection, 0.0, 4).unwrap();
        assert_eq!(ok.static_rejects, 0);
    }

    #[test]
    fn row_budget_skips_oversized_candidates() {
        let c = catalog();
        let stats = cda_analyzer::Statistics::from_catalog(&c);
        let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.0, ..Default::default() });
        // A zero row budget flags every candidate as over-budget: the
        // sampler must skip them all and exhaust its budget.
        let strict = Analyzer::new(&c).with_stats(&stats).with_row_budget(0);
        let e = decode_with(&lm, &prompt(), &strict, DecodingStrategy::Rejection, 0.0, 4);
        assert!(matches!(e, Err(NlError::BudgetExhausted { attempts: 4 })));
        // A generous budget changes nothing relative to the plain gate.
        let lax = Analyzer::new(&c).with_stats(&stats).with_row_budget(1_000_000);
        let r = decode_with(&lm, &prompt(), &lax, DecodingStrategy::Rejection, 0.0, 4).unwrap();
        assert_eq!(r.budget_rejects, 0);
        assert!(execute(&c, &r.generation.sql).is_ok());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(DecodingStrategy::Free.label(), "free");
        assert_eq!(DecodingStrategy::Reranked.label(), "reranked");
    }
}
