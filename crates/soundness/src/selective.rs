//! Selective answering (abstention) and risk–coverage analysis.
//!
//! The paper: the system "should be able to refrain from producing answers
//! when unable to produce any answer with sufficient certainty". A
//! [`SelectivePolicy`] answers only above a confidence threshold; the
//! risk–coverage curve shows, for every threshold, what fraction of
//! questions is answered (coverage) and how often those answers are wrong
//! (risk). Experiment E6 sweeps this trade-off for both confidence signals.

/// A confidence-thresholded answering policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivePolicy {
    /// Minimum confidence required to answer.
    pub threshold: f64,
}

impl SelectivePolicy {
    /// Construct a policy.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// Whether the system should answer at this confidence.
    pub fn should_answer(&self, confidence: f64) -> bool {
        confidence >= self.threshold
    }
}

/// One point on the risk–coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskCoveragePoint {
    /// The threshold generating this point.
    pub threshold: f64,
    /// Fraction of questions answered.
    pub coverage: f64,
    /// Error rate among answered questions (0 when nothing is answered).
    pub risk: f64,
}

/// Sweep thresholds over the observed confidences and compute the curve.
/// Thresholds are the distinct confidence values plus 0 (answer everything).
pub fn risk_coverage_curve(confidences: &[f64], correct: &[bool]) -> Vec<RiskCoveragePoint> {
    assert_eq!(confidences.len(), correct.len());
    let n = confidences.len();
    if n == 0 {
        return Vec::new();
    }
    let mut thresholds: Vec<f64> = confidences.to_vec();
    thresholds.push(0.0);
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    thresholds
        .into_iter()
        .map(|t| {
            let answered: Vec<bool> = confidences
                .iter()
                .zip(correct)
                .filter(|(&c, _)| c >= t)
                .map(|(_, &ok)| ok)
                .collect();
            let coverage = answered.len() as f64 / n as f64;
            let risk = if answered.is_empty() {
                0.0
            } else {
                answered.iter().filter(|&&ok| !ok).count() as f64 / answered.len() as f64
            };
            RiskCoveragePoint { threshold: t, coverage, risk }
        })
        .collect()
}

/// The highest-coverage threshold whose risk stays at or below
/// `target_risk`, or `None` if even full abstention cannot meet it (only
/// when the curve is empty).
pub fn threshold_for_risk(confidences: &[f64], correct: &[bool], target_risk: f64) -> Option<f64> {
    let curve = risk_coverage_curve(confidences, correct);
    curve
        .into_iter()
        .filter(|p| p.risk <= target_risk)
        .max_by(|a, b| {
            a.coverage
                .partial_cmp(&b.coverage)
                .unwrap_or(std::cmp::Ordering::Equal)
                // prefer the lower threshold at equal coverage
                .then(b.threshold.partial_cmp(&a.threshold).unwrap_or(std::cmp::Ordering::Equal))
        })
        .map(|p| p.threshold)
}

/// Area under the risk–coverage curve (lower is better): answer items in
/// descending-confidence order and average the running risk over all
/// coverage levels `1/n … 1` (the standard sample-wise AURC). Ties in
/// confidence are broken pessimistically (incorrect first), so an
/// uninformative constant signal scores its full base risk.
pub fn aurc(confidences: &[f64], correct: &[bool]) -> f64 {
    assert_eq!(confidences.len(), correct.len());
    let n = confidences.len();
    if n == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        confidences[b]
            .partial_cmp(&confidences[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(correct[a].cmp(&correct[b])) // incorrect (false) first on ties
    });
    let mut errors = 0usize;
    let mut area = 0.0;
    for (i, &idx) in order.iter().enumerate() {
        if !correct[idx] {
            errors += 1;
        }
        area += errors as f64 / (i + 1) as f64;
    }
    area / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_thresholding() {
        let p = SelectivePolicy::new(0.7);
        assert!(p.should_answer(0.7));
        assert!(p.should_answer(0.9));
        assert!(!p.should_answer(0.69));
    }

    #[test]
    fn curve_endpoints() {
        let conf = vec![0.9, 0.8, 0.3, 0.2];
        let correct = vec![true, true, false, true];
        let curve = risk_coverage_curve(&conf, &correct);
        // threshold 0 answers everything: coverage 1, risk 1/4
        let full = curve.iter().find(|p| p.threshold == 0.0).unwrap();
        assert_eq!(full.coverage, 1.0);
        assert_eq!(full.risk, 0.25);
        // highest threshold answers only the most confident (correct) one
        let top = curve.iter().find(|p| (p.threshold - 0.9).abs() < 1e-12).unwrap();
        assert_eq!(top.coverage, 0.25);
        assert_eq!(top.risk, 0.0);
    }

    #[test]
    fn informative_confidence_allows_zero_risk_at_partial_coverage() {
        // confidences perfectly separate correct from incorrect
        let conf = vec![0.9, 0.85, 0.2, 0.1];
        let correct = vec![true, true, false, false];
        let t = threshold_for_risk(&conf, &correct, 0.0).unwrap();
        assert!(t > 0.2 && t <= 0.85);
        let curve = risk_coverage_curve(&conf, &correct);
        let pt = curve.iter().find(|p| (p.threshold - t).abs() < 1e-12).unwrap();
        assert_eq!(pt.coverage, 0.5);
        assert_eq!(pt.risk, 0.0);
    }

    #[test]
    fn useless_confidence_cannot_reduce_risk() {
        // constant confidence: any threshold answers all or nothing
        let conf = vec![0.5; 6];
        let correct = vec![true, false, true, false, true, false];
        let t = threshold_for_risk(&conf, &correct, 0.1);
        // only the all-abstain point (threshold above 0.5) would meet 10% risk,
        // but thresholds are drawn from observed confidences ∪ {0}, so the
        // best achievable is... the 0.5 threshold with risk 0.5 → no solution
        // except nothing < … hence None or a point with coverage 0? All
        // observed thresholds answer everything (risk 0.5) → None.
        assert_eq!(t, None);
    }

    #[test]
    fn aurc_prefers_informative_signal() {
        let correct = vec![true, true, false, false];
        let informative = vec![0.9, 0.8, 0.2, 0.1];
        let useless = vec![0.5, 0.5, 0.5, 0.5];
        assert!(aurc(&informative, &correct) < aurc(&useless, &correct));
    }

    #[test]
    fn empty_inputs() {
        assert!(risk_coverage_curve(&[], &[]).is_empty());
        assert_eq!(aurc(&[], &[]), 0.0);
        assert_eq!(threshold_for_risk(&[], &[], 0.5), None);
    }
}
