//! Property-based tests over the core invariants of the substrates.

use cda_dataframe::{Column, DataType, Field, Schema, Table, Value};
use cda_provenance::semiring::HowPolynomial;
use cda_sql::{execute_with_options, Catalog, ExecOptions, OptimizerRules};
use cda_vector::exact::{ExactIndex, TopK};
use cda_vector::progressive::{GuaranteeMode, ProgressiveIndex};
use cda_vector::{Neighbor, VectorIndex, VectorSet};
use cda_testkit::prelude::*;
use cda_testkit::prop as proptest;

// ---------------------------------------------------------------- helpers

fn value_strategy() -> Gen<Value> {
    prop_oneof![
        3 => (-1000i64..1000).prop_map(Value::Int),
        3 => (-100.0f64..100.0).prop_map(Value::Float),
        2 => "[a-z]{0,6}".prop_map(Value::from),
        1 => any::<bool>().prop_map(Value::Bool),
        1 => Just(Value::Null),
    ]
}

fn table_strategy() -> Gen<Table> {
    // three columns: group (string), x (int), y (float with nulls)
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec("[a-c]", n..=n),
            proptest::collection::vec(-50i64..50, n..=n),
            proptest::collection::vec(proptest::option::of(-10.0f64..10.0), n..=n),
        )
            .prop_map(|(groups, xs, ys)| {
                let schema = Schema::new(vec![
                    Field::new("g", DataType::Str),
                    Field::new("x", DataType::Int),
                    Field::new("y", DataType::Float),
                ]);
                let gs: Vec<&str> = groups.iter().map(String::as_str).collect();
                Table::from_columns(
                    schema,
                    vec![
                        Column::from_strs(&gs),
                        Column::from_ints(&xs),
                        Column::from_opt_floats(&ys),
                    ],
                )
                .expect("consistent columns")
            })
    })
}

// ------------------------------------------------------------- dataframe

proptest! {
    #[test]
    fn filter_then_concat_partitions_table(t in table_strategy(), pivot in -50i64..50) {
        // rows with x < pivot plus rows with x >= pivot = all rows
        let xs = t.column_by_name("x").unwrap();
        let lt: Vec<bool> = (0..t.num_rows())
            .map(|i| xs.value(i).unwrap().as_i64().unwrap() < pivot)
            .collect();
        let ge: Vec<bool> = lt.iter().map(|b| !b).collect();
        let a = t.filter(&lt).unwrap();
        let b = t.filter(&ge).unwrap();
        prop_assert_eq!(a.num_rows() + b.num_rows(), t.num_rows());
    }

    #[test]
    fn take_preserves_values_and_lineage(t in table_strategy()) {
        let idx: Vec<usize> = (0..t.num_rows()).rev().collect();
        let rev = t.take(&idx).unwrap();
        for (new, &old) in idx.iter().enumerate() {
            prop_assert_eq!(rev.row(new).unwrap(), t.row(old).unwrap());
            prop_assert_eq!(rev.lineage(new).unwrap(), t.lineage(old).unwrap());
        }
    }

    #[test]
    fn value_total_cmp_is_a_total_order(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // antisymmetry
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // transitivity (check one direction)
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }
}

// ------------------------------------------------------------------- sql

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_never_changes_results(t in table_strategy(), pivot in -50i64..50) {
        let mut catalog = Catalog::new();
        catalog.register("t", t).unwrap();
        let sql = format!(
            "SELECT g, COUNT(*) AS n, SUM(x) AS sx FROM t WHERE x >= {pivot} GROUP BY g ORDER BY g"
        );
        let full = execute_with_options(&catalog, &sql, ExecOptions::default()).unwrap();
        let naive = execute_with_options(
            &catalog,
            &sql,
            ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None },
        )
        .unwrap();
        prop_assert_eq!(full.table.num_rows(), naive.table.num_rows());
        for r in 0..full.table.num_rows() {
            prop_assert_eq!(full.table.row(r).unwrap(), naive.table.row(r).unwrap());
        }
    }

    #[test]
    fn sql_sum_matches_manual_computation(t in table_strategy()) {
        let manual: i64 = {
            let xs = t.column_by_name("x").unwrap();
            (0..t.num_rows()).map(|i| xs.value(i).unwrap().as_i64().unwrap()).sum()
        };
        let n = t.num_rows();
        let mut catalog = Catalog::new();
        catalog.register("t", t).unwrap();
        let r = execute_with_options(&catalog, "SELECT SUM(x), COUNT(*) FROM t", ExecOptions::default()).unwrap();
        prop_assert_eq!(r.table.value(0, 0).unwrap(), Value::Int(manual));
        prop_assert_eq!(r.table.value(0, 1).unwrap(), Value::Int(n as i64));
    }

    #[test]
    fn aggregate_lineage_covers_exactly_the_groups_rows(t in table_strategy()) {
        let mut catalog = Catalog::new();
        let groups: Vec<String> = {
            let g = t.column_by_name("g").unwrap();
            (0..t.num_rows()).map(|i| g.value(i).unwrap().as_str().unwrap().to_owned()).collect()
        };
        catalog.register("t", t).unwrap();
        let tag = catalog.get("t").unwrap().tag;
        let r = execute_with_options(&catalog, "SELECT g, COUNT(*) FROM t GROUP BY g", ExecOptions::default()).unwrap();
        for row in 0..r.table.num_rows() {
            let key = r.table.value(row, 0).unwrap().as_str().unwrap().to_owned();
            let expected: Vec<u64> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| **g == key)
                .map(|(i, _)| i as u64)
                .collect();
            let lineage: Vec<u64> = r
                .table
                .lineage(row)
                .unwrap()
                .iter()
                .filter(|rid| rid.table == tag)
                .map(|rid| rid.row)
                .collect();
            prop_assert_eq!(lineage, expected);
        }
    }
}

// ---------------------------------------------------------------- vector

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn topk_matches_full_sort(dists in proptest::collection::vec(0.0f32..100.0, 1..60), k in 1usize..10) {
        let mut topk = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            topk.push(Neighbor::new(i, d));
        }
        let got: Vec<usize> = topk.into_sorted().iter().map(|n| n.id).collect();
        let mut want: Vec<(usize, f32)> = dists.iter().copied().enumerate().collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let want: Vec<usize> = want.into_iter().take(k).map(|(i, _)| i).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn progressive_deterministic_equals_exact(seed in 0u64..500) {
        let data = VectorSet::uniform(300, 8, seed).unwrap();
        let index = ProgressiveIndex::build(&data, 8, 0, 5, seed);
        let exact = ExactIndex::build(&data);
        let queries = data.queries_near(3, 0.1, seed ^ 1);
        for q in queries {
            let got: Vec<usize> = index
                .search_mode(&data, &q, 5, GuaranteeMode::Deterministic)
                .0
                .iter()
                .map(|n| n.id)
                .collect();
            let want: Vec<usize> = exact.search(&data, &q, 5).iter().map(|n| n.id).collect();
            prop_assert_eq!(got, want);
        }
    }
}

// ------------------------------------------------------------- provenance

fn poly_strategy() -> Gen<HowPolynomial> {
    proptest::collection::vec((0u64..6, 0u64..6), 0..4).prop_map(|pairs| {
        pairs.into_iter().fold(HowPolynomial::zero(), |acc, (a, b)| {
            let m = HowPolynomial::var(cda_dataframe::RowId::new(1, a))
                .times(&HowPolynomial::var(cda_dataframe::RowId::new(1, b)));
            acc.plus(&m)
        })
    })
}

proptest! {
    #[test]
    fn semiring_laws_hold(p in poly_strategy(), q in poly_strategy(), r in poly_strategy()) {
        // commutativity
        prop_assert_eq!(p.plus(&q), q.plus(&p));
        prop_assert_eq!(p.times(&q), q.times(&p));
        // associativity
        prop_assert_eq!(p.plus(&q).plus(&r), p.plus(&q.plus(&r)));
        prop_assert_eq!(p.times(&q).times(&r), p.times(&q.times(&r)));
        // distributivity
        prop_assert_eq!(p.times(&q.plus(&r)), p.times(&q).plus(&p.times(&r)));
        // identities
        prop_assert_eq!(p.plus(&HowPolynomial::zero()), p.clone());
        prop_assert_eq!(p.times(&HowPolynomial::one()), p.clone());
        prop_assert!(p.times(&HowPolynomial::zero()).is_zero());
    }

    #[test]
    fn evaluation_is_a_homomorphism(p in poly_strategy(), q in poly_strategy()) {
        // eval(p + q) = eval(p) + eval(q); eval(p * q) = eval(p) * eval(q)
        let val = |rid: cda_dataframe::RowId| (rid.row as f64) + 1.5;
        let sum = p.plus(&q).evaluate(&val);
        prop_assert!((sum - (p.evaluate(&val) + q.evaluate(&val))).abs() < 1e-6 * (1.0 + sum.abs()));
        let prod = p.times(&q).evaluate(&val);
        prop_assert!((prod - p.evaluate(&val) * q.evaluate(&val)).abs() < 1e-6 * (1.0 + prod.abs()));
    }
}

// ---------------------------------------------------------------- kg + ts

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn triple_store_scan_agrees_with_contains(
        triples in proptest::collection::vec(("[a-d]", "[p-r]", "[x-z]"), 1..30)
    ) {
        let mut kg = cda_kg::TripleStore::new();
        for (s, p, o) in &triples {
            kg.insert(s, p, o);
        }
        for (s, p, o) in &triples {
            prop_assert!(kg.contains(s, p, o));
            // every scan pattern that binds (s, p) must include this triple
            let hits = kg.scan_str(Some(s), Some(p), None);
            prop_assert!(hits.iter().any(|(_, _, oo)| oo == o));
        }
        // total count equals distinct triples
        let mut distinct = triples.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(kg.len(), distinct.len());
    }

    #[test]
    fn seasonality_detection_recovers_planted_period(
        period in prop_oneof![Just(4usize), Just(6), Just(12)],
        seed in 0u64..200
    ) {
        let ts = cda_timeseries::TimeSeries::synthetic_seasonal(144, period, 8.0, 0.05, 0.5, seed);
        let r = cda_timeseries::seasonality::detect_seasonality(&ts, 24).unwrap();
        prop_assert_eq!(r.period, period);
    }
}

// ------------------------------------------------------ round-trip laws

/// Reference LIKE implementation via dynamic programming (independent of the
/// recursive matcher in cda-sql).
fn like_reference(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => c == s[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[s.len()][p.len()]
}

proptest! {
    #[test]
    fn like_matches_reference_dp(s in "[ab%_]{0,8}", p in "[ab%_]{0,6}") {
        prop_assert_eq!(
            cda_sql::plan::like_match(&s, &p),
            like_reference(&s, &p),
            "s={:?} p={:?}", s, p
        );
    }

    #[test]
    fn sql_display_reparses_to_same_ast(
        seed in 0u64..300,
    ) {
        // generate a task via the workload generator, render SQL, parse,
        // display, re-parse: the two ASTs must be identical
        use cda_nlmodel::nl2sql::{Workload, WorkloadTable};
        use cda_dataframe::{DataType, Field, Schema};
        let tables = vec![WorkloadTable {
            name: "t".into(),
            schema: Schema::new(vec![
                Field::new("g", DataType::Str),
                Field::new("x", DataType::Int),
                Field::new("y", DataType::Float),
            ]),
            string_values: vec![("g".into(), vec!["a".into(), "b".into()])],
        }];
        let w = Workload::generate(&tables, 3, seed);
        for task in &w.tasks {
            let ast1 = cda_sql::parser::parse(&task.gold_sql).unwrap();
            let rendered = ast1.to_string();
            let ast2 = cda_sql::parser::parse(&rendered).unwrap();
            prop_assert_eq!(&ast1, &ast2, "sql: {}", task.gold_sql);
        }
    }

    #[test]
    fn csv_round_trips_table_values(t in table_strategy()) {
        // render the table as CSV and parse it back; values must agree
        let mut csv = String::from("g,x,y\n");
        for r in 0..t.num_rows() {
            let row = t.row(r).unwrap();
            let cell = |v: &Value| match v {
                Value::Null => String::new(),
                Value::Str(s) => format!("\"{}\"", s.replace('"', "\"\"")),
                other => other.to_string(),
            };
            csv.push_str(&format!("{},{},{}\n", cell(&row[0]), cell(&row[1]), cell(&row[2])));
        }
        let parsed = cda_dataframe::csv::parse_csv(&csv, &Default::default()).unwrap();
        prop_assert_eq!(parsed.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            let orig = t.row(r).unwrap();
            let back = parsed.row(r).unwrap();
            for (a, b) in orig.iter().zip(&back) {
                match (a, b) {
                    (Value::Null, Value::Null) => {}
                    (Value::Str(x), Value::Str(y)) => prop_assert_eq!(x, y),
                    (x, y) => prop_assert_eq!(
                        x.as_f64().map(|v| (v * 1e9).round()),
                        y.as_f64().map(|v| (v * 1e9).round()),
                        "row {} {:?} vs {:?}", r, x, y
                    ),
                }
            }
        }
    }
}

// ----------------------------------------------------- pinned regressions
//
// Counterexamples proptest shrank to in past runs (persisted from
// `properties.proptest-regressions` when the suite moved to cda-testkit).
// proptest's opaque `cc` seed hashes cannot be replayed by another
// framework, so the *shrunk inputs themselves* are pinned as named tests:
//   cc d490c75d… # shrinks to a = Str("j"), b = Bool(false), c = Str("a")
//   cc f8a989eb… # shrinks to seed = 135
mod regressions {
    use super::*;
    use std::cmp::Ordering;

    /// Shrunk case of `value_total_cmp_is_a_total_order`: mixed-type
    /// comparison `Str / Bool / Str` once broke antisymmetry/transitivity.
    #[test]
    fn value_total_cmp_str_bool_str() {
        let (a, b, c) = (Value::from("j"), Value::Bool(false), Value::from("a"));
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        assert_eq!(b.total_cmp(&c), c.total_cmp(&b).reverse());
        assert_eq!(a.total_cmp(&c), c.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// Shrunk case `seed = 135` replayed against every seed-driven
    /// property (the original `cc` hash does not record which one).
    #[test]
    fn seed_135_progressive_deterministic_equals_exact() {
        let seed = 135u64;
        let data = VectorSet::uniform(300, 8, seed).unwrap();
        let index = ProgressiveIndex::build(&data, 8, 0, 5, seed);
        let exact = ExactIndex::build(&data);
        for q in data.queries_near(3, 0.1, seed ^ 1) {
            let got: Vec<usize> = index
                .search_mode(&data, &q, 5, GuaranteeMode::Deterministic)
                .0
                .iter()
                .map(|n| n.id)
                .collect();
            let want: Vec<usize> = exact.search(&data, &q, 5).iter().map(|n| n.id).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn seed_135_sql_display_reparses_to_same_ast() {
        use cda_dataframe::{DataType, Field, Schema};
        use cda_nlmodel::nl2sql::{Workload, WorkloadTable};
        let tables = vec![WorkloadTable {
            name: "t".into(),
            schema: Schema::new(vec![
                Field::new("g", DataType::Str),
                Field::new("x", DataType::Int),
                Field::new("y", DataType::Float),
            ]),
            string_values: vec![("g".into(), vec!["a".into(), "b".into()])],
        }];
        let w = Workload::generate(&tables, 3, 135);
        for task in &w.tasks {
            let ast1 = cda_sql::parser::parse(&task.gold_sql).unwrap();
            let ast2 = cda_sql::parser::parse(&ast1.to_string()).unwrap();
            assert_eq!(ast1, ast2, "sql: {}", task.gold_sql);
        }
    }

    #[test]
    fn seed_135_seasonality_detection_recovers_planted_period() {
        for period in [4usize, 6, 12] {
            let ts = cda_timeseries::TimeSeries::synthetic_seasonal(144, period, 8.0, 0.05, 0.5, 135);
            let r = cda_timeseries::seasonality::detect_seasonality(&ts, 24).unwrap();
            assert_eq!(r.period, period, "planted period {period}");
        }
    }
}
