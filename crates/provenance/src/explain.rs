//! User-facing explanation assembly.
//!
//! An [`Explanation`] bundles everything the paper says an answer must carry
//! (layer ⓔ: "Answer, Confidence Score, and Provenance Data"): the cited
//! sources, the executed plan, the code, the NL summary, and the outcome of
//! the losslessness/invertibility verification. Explanations are *consistent*
//! by construction: rendering is a pure function of the bundle, so equivalent
//! outcomes produce equivalent explanations (one of the paper's explicitly
//! stated requirements).

use crate::checks::{InvertReport, LosslessReport};
use cda_dataframe::RowId;
use std::fmt;

/// A complete explanation bundle for one answer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Explanation {
    /// Short NL restatement of what was computed.
    pub summary: String,
    /// Source datasets (names) the answer draws on.
    pub sources: Vec<String>,
    /// Base rows cited (where-from provenance).
    pub cited_rows: Vec<RowId>,
    /// The executed logical plan, pretty-printed.
    pub plan: String,
    /// The query or code that produced the answer.
    pub code: String,
    /// Confidence attached to the answer, if any.
    pub confidence: Option<f64>,
    /// Losslessness verification outcome, if run.
    pub lossless: Option<LosslessReport>,
    /// Invertibility verification outcome, if run.
    pub invertible: Option<InvertReport>,
}

impl Explanation {
    /// Start an explanation with a summary.
    pub fn new(summary: impl Into<String>) -> Self {
        Self { summary: summary.into(), ..Default::default() }
    }

    /// Builder: attach sources.
    pub fn with_sources(mut self, sources: Vec<String>) -> Self {
        self.sources = sources;
        self
    }

    /// Builder: attach cited rows.
    pub fn with_rows(mut self, rows: Vec<RowId>) -> Self {
        self.cited_rows = rows;
        self
    }

    /// Builder: attach the plan text.
    pub fn with_plan(mut self, plan: impl Into<String>) -> Self {
        self.plan = plan.into();
        self
    }

    /// Builder: attach code.
    pub fn with_code(mut self, code: impl Into<String>) -> Self {
        self.code = code.into();
        self
    }

    /// Builder: attach a confidence score.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = Some(confidence);
        self
    }

    /// Builder: attach verification outcomes.
    pub fn with_verification(
        mut self,
        lossless: Option<LosslessReport>,
        invertible: Option<InvertReport>,
    ) -> Self {
        self.lossless = lossless;
        self.invertible = invertible;
        self
    }

    /// Whether every verification that was run passed.
    pub fn verified(&self) -> bool {
        self.lossless.as_ref().is_none_or(|l| l.lossless)
            && self.invertible.as_ref().is_none_or(|i| i.invertible)
    }

    /// Render a concise, user-facing text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary);
        out.push('\n');
        if let Some(c) = self.confidence {
            out.push_str(&format!("Confidence: {:.0}%\n", c * 100.0));
        }
        if !self.sources.is_empty() {
            out.push_str(&format!("Sources: {}\n", self.sources.join(", ")));
        }
        if !self.cited_rows.is_empty() {
            let shown: Vec<String> =
                self.cited_rows.iter().take(8).map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "Cited rows ({}): {}{}\n",
                self.cited_rows.len(),
                shown.join(", "),
                if self.cited_rows.len() > 8 { ", …" } else { "" }
            ));
        }
        match (&self.lossless, &self.invertible) {
            (None, None) => {}
            (l, i) => {
                let l_txt = l.as_ref().map_or("not checked".to_owned(), |r| {
                    if r.lossless { "passed".to_owned() } else { "FAILED".to_owned() }
                });
                let i_txt = i.as_ref().map_or("not checked".to_owned(), |r| {
                    if r.invertible { "passed".to_owned() } else { "FAILED".to_owned() }
                });
                out.push_str(&format!("Verification: losslessness {l_txt}, invertibility {i_txt}\n"));
            }
        }
        if !self.code.is_empty() {
            out.push_str("Code:\n");
            out.push_str(&self.code);
            if !self.code.ends_with('\n') {
                out.push('\n');
            }
        }
        if !self.plan.is_empty() {
            out.push_str("Plan:\n");
            out.push_str(&self.plan);
        }
        out
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Explanation {
        Explanation::new("Total jobs per canton")
            .with_sources(vec!["emp".into()])
            .with_rows(vec![RowId::new(1, 0), RowId::new(1, 1)])
            .with_plan("Aggregate\n  Scan emp\n")
            .with_code("SELECT canton, SUM(jobs) FROM emp GROUP BY canton")
            .with_confidence(0.93)
    }

    #[test]
    fn render_contains_all_sections() {
        let text = sample().render();
        assert!(text.contains("Total jobs per canton"));
        assert!(text.contains("Confidence: 93%"));
        assert!(text.contains("Sources: emp"));
        assert!(text.contains("Cited rows (2): t1:r0, t1:r1"));
        assert!(text.contains("SELECT canton"));
        assert!(text.contains("Scan emp"));
        assert_eq!(sample().to_string(), text);
    }

    #[test]
    fn long_citations_are_elided() {
        let rows: Vec<RowId> = (0..20).map(|i| RowId::new(1, i)).collect();
        let text = Explanation::new("x").with_rows(rows).render();
        assert!(text.contains("Cited rows (20)"));
        assert!(text.contains('…'));
    }

    #[test]
    fn verification_states_render() {
        let e = sample().with_verification(
            Some(LosslessReport { lossless: true, cited_rows: 2, replay_rows: 1 }),
            Some(InvertReport { invertible: false, recomputed: 1.0, reported: 2.0 }),
        );
        let text = e.render();
        assert!(text.contains("losslessness passed"));
        assert!(text.contains("invertibility FAILED"));
        assert!(!e.verified());
    }

    #[test]
    fn verified_is_vacuously_true_without_checks() {
        assert!(sample().verified());
    }

    #[test]
    fn rendering_is_deterministic_consistency_property() {
        // equivalent bundles render identically — the paper's "explanations
        // of equivalent outcomes should be equivalent"
        assert_eq!(sample().render(), sample().render());
    }
}
