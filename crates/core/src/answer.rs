//! Annotated answers — the system's output contract (layer ⓔ).
//!
//! Every turn returns an [`AnswerTurn`]: the NL text, the confidence score,
//! the provenance explanation, the property tags that Figure 1 displays next
//! to each system message, per-layer timing (experiment E9), and guidance
//! suggestions for the next step.

use cda_provenance::Explanation;
use std::fmt;
use std::time::Duration;

/// The reliability property a piece of an answer exercised, as annotated in
/// Figure 1 ("(P1) Efficient retrieval", "(P4) Soundness by provenance &
/// confidence", …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyTag {
    /// P1 — efficient retrieval.
    Efficiency,
    /// P2 — grounding of terminology.
    Grounding,
    /// P3 — explainability (provenance, code).
    Explainability,
    /// P4 — soundness (confidence, verification, refusal).
    Soundness,
    /// P5 — guidance (follow-up questions, suggestions).
    Guidance,
}

impl PropertyTag {
    /// The paper's short label.
    pub fn label(self) -> &'static str {
        match self {
            PropertyTag::Efficiency => "P1",
            PropertyTag::Grounding => "P2",
            PropertyTag::Explainability => "P3",
            PropertyTag::Soundness => "P4",
            PropertyTag::Guidance => "P5",
        }
    }
}

impl fmt::Display for PropertyTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-layer wall-clock breakdown of one turn (experiment E9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TurnTimings {
    /// NL model layer: intent + generation + decoding.
    pub nl_model: Duration,
    /// Computational infrastructure: retrieval + execution + analytics.
    pub infrastructure: Duration,
    /// Soundness: UQ sampling + verification.
    pub soundness: Duration,
    /// Explainability: provenance assembly + checks.
    pub explainability: Duration,
    /// Guidance: planning + suggestion ranking.
    pub guidance: Duration,
}

impl TurnTimings {
    /// Total measured time.
    pub fn total(&self) -> Duration {
        self.nl_model + self.infrastructure + self.soundness + self.explainability + self.guidance
    }
}

/// Whether the system answered or abstained, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerStatus {
    /// A regular answer.
    Answered,
    /// The system offered options and asked the user to choose (P5).
    AskedClarification,
    /// The system refused: confidence below threshold or data insufficient
    /// (P4). The payload names the reason.
    Abstained(String),
}

/// One system turn.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerTurn {
    /// The rendered NL answer.
    pub text: String,
    /// Overall confidence in `[0, 1]`, when the turn carries a claim.
    pub confidence: Option<f64>,
    /// Property annotations (Figure-1 style).
    pub properties: Vec<PropertyTag>,
    /// The provenance explanation bundle (P3), when a computation ran.
    pub explanation: Option<Explanation>,
    /// Ranked follow-up suggestions (P5).
    pub suggestions: Vec<String>,
    /// Answer/clarify/abstain status.
    pub status: AnswerStatus,
    /// Per-layer timings.
    pub timings: TurnTimings,
    /// The SQL the turn executed, when one ran. This is machine metadata
    /// used by evaluation harnesses; the *user-facing* code lives in
    /// [`AnswerTurn::explanation`] and is subject to the P3 toggle.
    pub executed_sql: Option<String>,
    /// NL-rendered static-analysis findings (`cda-analyzer` codes) attached
    /// to this turn — the pre-execution half of the P4 soundness signal.
    pub analysis: Vec<String>,
}

impl AnswerTurn {
    /// A plain answered turn.
    pub fn answered(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            confidence: None,
            properties: Vec::new(),
            explanation: None,
            suggestions: Vec::new(),
            status: AnswerStatus::Answered,
            timings: TurnTimings::default(),
            executed_sql: None,
            analysis: Vec::new(),
        }
    }

    /// Builder: attach confidence and tag P4.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = Some(confidence.clamp(0.0, 1.0));
        self.tag(PropertyTag::Soundness);
        self
    }

    /// Builder: attach an explanation and tag P3.
    pub fn with_explanation(mut self, explanation: Explanation) -> Self {
        self.explanation = Some(explanation);
        self.tag(PropertyTag::Explainability);
        self
    }

    /// Builder: attach suggestions and tag P5.
    pub fn with_suggestions(mut self, suggestions: Vec<String>) -> Self {
        if !suggestions.is_empty() {
            self.tag(PropertyTag::Guidance);
        }
        self.suggestions = suggestions;
        self
    }

    /// Add a property tag (idempotent).
    pub fn tag(&mut self, p: PropertyTag) {
        if !self.properties.contains(&p) {
            self.properties.push(p);
        }
    }

    /// Render with annotations, roughly as Figure 1 displays turns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.text);
        out.push('\n');
        if let Some(c) = self.confidence {
            out.push_str(&format!("Confidence: {:.0}%\n", c * 100.0));
        }
        if !self.properties.is_empty() {
            let tags: Vec<&str> = self.properties.iter().map(|p| p.label()).collect();
            out.push_str(&format!("[{}]\n", tags.join(", ")));
        }
        if !self.suggestions.is_empty() {
            out.push_str("You could ask next:\n");
            for s in &self.suggestions {
                out.push_str(&format!("  - {s}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_tags() {
        let t = AnswerTurn::answered("hello")
            .with_confidence(0.9)
            .with_suggestions(vec!["try seasonality".into()]);
        assert_eq!(t.properties, vec![PropertyTag::Soundness, PropertyTag::Guidance]);
        assert_eq!(t.confidence, Some(0.9));
    }

    #[test]
    fn confidence_clamped() {
        let t = AnswerTurn::answered("x").with_confidence(3.0);
        assert_eq!(t.confidence, Some(1.0));
    }

    #[test]
    fn tags_are_idempotent() {
        let mut t = AnswerTurn::answered("x");
        t.tag(PropertyTag::Grounding);
        t.tag(PropertyTag::Grounding);
        assert_eq!(t.properties.len(), 1);
    }

    #[test]
    fn render_includes_annotations() {
        let t = AnswerTurn::answered("The period is 6")
            .with_confidence(0.9)
            .with_suggestions(vec!["forecast next year".into()]);
        let s = t.render();
        assert!(s.contains("Confidence: 90%"));
        assert!(s.contains("[P4, P5]"));
        assert!(s.contains("forecast next year"));
    }

    #[test]
    fn empty_suggestions_do_not_tag_guidance() {
        let t = AnswerTurn::answered("x").with_suggestions(vec![]);
        assert!(t.properties.is_empty());
    }

    #[test]
    fn timings_total() {
        let t = TurnTimings {
            nl_model: Duration::from_millis(2),
            infrastructure: Duration::from_millis(3),
            ..TurnTimings::default()
        };
        assert_eq!(t.total(), Duration::from_millis(5));
    }

    #[test]
    fn property_labels() {
        assert_eq!(PropertyTag::Efficiency.to_string(), "P1");
        assert_eq!(PropertyTag::Guidance.label(), "P5");
    }
}
