//! Error type for the dataframe substrate.

use std::fmt;

/// Errors produced by table construction, access, and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataFrameError {
    /// A column name was not found in the schema.
    ColumnNotFound(String),
    /// A positional index (row or column) was out of bounds.
    IndexOutOfBounds {
        /// What kind of index overflowed ("row" or "column").
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Columns of a table disagreed in length.
    LengthMismatch {
        /// Expected length (from the first column / schema).
        expected: usize,
        /// Actual length encountered.
        actual: usize,
    },
    /// Schema arity and column count disagree.
    ArityMismatch {
        /// Number of fields in the schema.
        fields: usize,
        /// Number of columns supplied.
        columns: usize,
    },
    /// A value had the wrong type for its column.
    TypeMismatch {
        /// The expected data type.
        expected: String,
        /// The value actually provided, rendered.
        actual: String,
    },
    /// CSV input could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Two schemas were expected to be identical but differ.
    SchemaMismatch(String),
    /// Operation is not defined for the given data type.
    UnsupportedType {
        /// The operation attempted.
        op: &'static str,
        /// The data type it was attempted on.
        ty: String,
    },
}

impl fmt::Display for DataFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            Self::IndexOutOfBounds { kind, index, len } => {
                write!(f, "{kind} index {index} out of bounds for length {len}")
            }
            Self::LengthMismatch { expected, actual } => {
                write!(f, "column length mismatch: expected {expected}, got {actual}")
            }
            Self::ArityMismatch { fields, columns } => {
                write!(f, "schema has {fields} fields but {columns} columns were supplied")
            }
            Self::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            Self::CsvParse { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Self::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Self::UnsupportedType { op, ty } => write!(f, "operation {op} unsupported for type {ty}"),
        }
    }
}

impl std::error::Error for DataFrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataFrameError::ColumnNotFound("salary".into());
        assert!(e.to_string().contains("salary"));
        let e = DataFrameError::IndexOutOfBounds { kind: "row", index: 9, len: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let e = DataFrameError::CsvParse { line: 4, message: "bad quote".into() };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(DataFrameError::SchemaMismatch("x".into()));
    }
}
