//! Calibration metrics: ECE, Brier score, reliability bins, AUROC.
//!
//! The paper's Evaluation paragraph asks for "the probabilistic
//! interpretation of any correctness estimation" to be measured; these are
//! the standard instruments. Inputs are parallel vectors of predicted
//! confidences in `[0, 1]` and boolean correctness outcomes.

use crate::{Result, SoundnessError};

/// One bin of a reliability diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the confidence bin.
    pub lower: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub upper: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted confidence in the bin.
    pub mean_confidence: f64,
    /// Empirical accuracy in the bin.
    pub accuracy: f64,
}

/// Build an equal-width reliability diagram with `bins` bins.
pub fn reliability_diagram(
    confidences: &[f64],
    correct: &[bool],
    bins: usize,
) -> Result<Vec<ReliabilityBin>> {
    if confidences.len() != correct.len() {
        return Err(SoundnessError::LengthMismatch);
    }
    let bins = bins.max(1);
    let mut out: Vec<ReliabilityBin> = (0..bins)
        .map(|b| ReliabilityBin {
            lower: b as f64 / bins as f64,
            upper: (b + 1) as f64 / bins as f64,
            count: 0,
            mean_confidence: 0.0,
            accuracy: 0.0,
        })
        .collect();
    for (&c, &ok) in confidences.iter().zip(correct) {
        let b = ((c * bins as f64) as usize).min(bins - 1);
        let bin = &mut out[b];
        bin.count += 1;
        bin.mean_confidence += c;
        bin.accuracy += f64::from(u8::from(ok));
    }
    for bin in &mut out {
        if bin.count > 0 {
            bin.mean_confidence /= bin.count as f64;
            bin.accuracy /= bin.count as f64;
        }
    }
    Ok(out)
}

/// Expected calibration error over `bins` equal-width bins:
/// `Σ (n_b / n) · |accuracy_b − confidence_b|`.
pub fn expected_calibration_error(
    confidences: &[f64],
    correct: &[bool],
    bins: usize,
) -> Result<f64> {
    if confidences.is_empty() {
        return Ok(0.0);
    }
    let diagram = reliability_diagram(confidences, correct, bins)?;
    let n = confidences.len() as f64;
    Ok(diagram
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.count as f64 / n) * (b.accuracy - b.mean_confidence).abs())
        .sum())
}

/// Brier score: mean squared error of confidence against the 0/1 outcome.
pub fn brier_score(confidences: &[f64], correct: &[bool]) -> Result<f64> {
    if confidences.len() != correct.len() {
        return Err(SoundnessError::LengthMismatch);
    }
    if confidences.is_empty() {
        return Ok(0.0);
    }
    Ok(confidences
        .iter()
        .zip(correct)
        .map(|(&c, &ok)| {
            let y = f64::from(u8::from(ok));
            (c - y) * (c - y)
        })
        .sum::<f64>()
        / confidences.len() as f64)
}

/// Negative log-likelihood (log loss) of the confidences against the 0/1
/// outcomes, with probabilities clamped away from {0, 1} for finiteness.
pub fn log_loss(confidences: &[f64], correct: &[bool]) -> Result<f64> {
    if confidences.len() != correct.len() {
        return Err(SoundnessError::LengthMismatch);
    }
    if confidences.is_empty() {
        return Ok(0.0);
    }
    let eps = 1e-12;
    Ok(-confidences
        .iter()
        .zip(correct)
        .map(|(&c, &ok)| {
            let p = c.clamp(eps, 1.0 - eps);
            if ok {
                p.ln()
            } else {
                (1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / confidences.len() as f64)
}

/// Perplexity — `exp(log loss)` — one of the prediction metrics the paper's
/// Evaluation paragraph names. 1.0 is perfect; 2.0 matches coin-flipping.
pub fn perplexity(confidences: &[f64], correct: &[bool]) -> Result<f64> {
    Ok(log_loss(confidences, correct)?.exp())
}

/// Area under the ROC curve of "confidence predicts correctness"
/// (Mann–Whitney formulation; ties count half). Returns 0.5 when one class
/// is absent.
pub fn auroc(confidences: &[f64], correct: &[bool]) -> Result<f64> {
    if confidences.len() != correct.len() {
        return Err(SoundnessError::LengthMismatch);
    }
    let pos: Vec<f64> = confidences
        .iter()
        .zip(correct)
        .filter(|(_, &ok)| ok)
        .map(|(&c, _)| c)
        .collect();
    let neg: Vec<f64> = confidences
        .iter()
        .zip(correct)
        .filter(|(_, &ok)| !ok)
        .map(|(&c, _)| c)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return Ok(0.5);
    }
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    Ok(wins / (pos.len() * neg.len()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // 10 predictions at 0.8, 8 correct
        let conf = vec![0.8; 10];
        let correct = vec![true, true, true, true, true, true, true, true, false, false];
        let ece = expected_calibration_error(&conf, &correct, 10).unwrap();
        assert!(ece < 1e-9, "ece {ece}");
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        let conf = vec![0.95; 10];
        let correct = vec![true, false, false, false, false, false, false, false, false, false];
        let ece = expected_calibration_error(&conf, &correct, 10).unwrap();
        assert!((ece - 0.85).abs() < 1e-9, "ece {ece}");
    }

    #[test]
    fn brier_extremes() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]).unwrap(), 0.0);
        assert_eq!(brier_score(&[1.0, 0.0], &[false, true]).unwrap(), 1.0);
        assert_eq!(brier_score(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn auroc_separable_and_random() {
        // perfectly separable
        let conf = vec![0.9, 0.8, 0.2, 0.1];
        let correct = vec![true, true, false, false];
        assert_eq!(auroc(&conf, &correct).unwrap(), 1.0);
        // anti-separable
        let correct = vec![false, false, true, true];
        assert_eq!(auroc(&conf, &correct).unwrap(), 0.0);
        // one-class degenerate
        assert_eq!(auroc(&[0.5, 0.6], &[true, true]).unwrap(), 0.5);
        // ties
        assert_eq!(auroc(&[0.5, 0.5], &[true, false]).unwrap(), 0.5);
    }

    #[test]
    fn reliability_diagram_bins_correctly() {
        let conf = vec![0.05, 0.15, 0.95, 1.0];
        let correct = vec![false, false, true, true];
        let bins = reliability_diagram(&conf, &correct, 10).unwrap();
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[9].count, 2); // 0.95 and the edge value 1.0
        assert_eq!(bins[9].accuracy, 1.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(expected_calibration_error(&[0.5], &[], 5).is_err());
        assert!(brier_score(&[0.5], &[]).is_err());
        assert!(auroc(&[0.5], &[]).is_err());
        assert!(reliability_diagram(&[0.5], &[], 5).is_err());
        assert!(log_loss(&[0.5], &[]).is_err());
    }

    #[test]
    fn log_loss_and_perplexity() {
        // coin-flip confidence on a balanced outcome: log loss = ln 2,
        // perplexity = 2
        let conf = vec![0.5, 0.5];
        let correct = vec![true, false];
        assert!((log_loss(&conf, &correct).unwrap() - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((perplexity(&conf, &correct).unwrap() - 2.0).abs() < 1e-12);
        // confident and right: near-perfect perplexity
        let p = perplexity(&[0.999], &[true]).unwrap();
        assert!(p < 1.01);
        // confident and wrong: blows up but stays finite
        let p = perplexity(&[1.0], &[false]).unwrap();
        assert!(p.is_finite() && p > 1000.0);
        assert_eq!(log_loss(&[], &[]).unwrap(), 0.0);
    }
}
