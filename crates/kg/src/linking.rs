//! Entity extraction and entity linking.
//!
//! The paper: "entity extraction and entity linking processes will enrich a
//! KG representation of both the schema and the contents of the data".
//! Extraction uses gazetteer maximal matching over token n-grams; linking
//! ranks candidate entities by a weighted combination of three signals that
//! experiment E3 ablates:
//!
//! * **lexical** — Jaccard similarity of character trigrams between mention
//!   and entity name/aliases,
//! * **embedding** — cosine similarity of hash embeddings of the mention's
//!   sentence context and the entity description,
//! * **popularity** — a log-scaled prior.

use crate::vocab::tokenize;
use std::collections::{HashMap, HashSet};

/// A known entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Canonical id (KG node name).
    pub id: String,
    /// Primary name.
    pub name: String,
    /// Alternative surface forms.
    pub aliases: Vec<String>,
    /// Short description used for context matching.
    pub description: String,
    /// Popularity prior (e.g. reference count), ≥ 0.
    pub popularity: f64,
}

impl Entity {
    /// Construct an entity.
    pub fn new(
        id: impl Into<String>,
        name: impl Into<String>,
        aliases: Vec<&str>,
        description: impl Into<String>,
        popularity: f64,
    ) -> Self {
        Self {
            id: id.into(),
            name: name.into(),
            aliases: aliases.into_iter().map(str::to_owned).collect(),
            description: description.into(),
            popularity,
        }
    }

    fn surface_forms(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.name.as_str()).chain(self.aliases.iter().map(String::as_str))
    }
}

/// A mention found in text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// The matched surface text (normalized tokens joined by spaces).
    pub surface: String,
    /// Token offset of the first token.
    pub start: usize,
    /// Number of tokens covered.
    pub len: usize,
}

/// A scored candidate link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCandidate {
    /// Candidate entity id.
    pub entity_id: String,
    /// Combined score in `[0, 1]`-ish range (weighted signal sum).
    pub score: f64,
    /// Lexical component.
    pub lexical: f64,
    /// Embedding component.
    pub embedding: f64,
    /// Popularity component.
    pub popularity: f64,
}

/// Which linking signals are active (experiment E3's ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkerConfig {
    /// Use character-trigram lexical similarity.
    pub use_lexical: bool,
    /// Use hash-embedding context similarity.
    pub use_embedding: bool,
    /// Use the popularity prior.
    pub use_popularity: bool,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        Self { use_lexical: true, use_embedding: true, use_popularity: true }
    }
}

/// Character trigrams of a normalized string.
fn trigrams(s: &str) -> HashSet<[u8; 3]> {
    let norm: String = s.to_lowercase().chars().filter(|c| c.is_alphanumeric()).collect();
    let bytes = norm.as_bytes();
    let mut out = HashSet::new();
    if bytes.len() < 3 {
        if !bytes.is_empty() {
            let mut tri = [0u8; 3];
            for (i, &b) in bytes.iter().enumerate() {
                tri[i] = b;
            }
            out.insert(tri);
        }
        return out;
    }
    for w in bytes.windows(3) {
        out.insert([w[0], w[1], w[2]]);
    }
    out
}

/// Jaccard similarity of trigram sets.
pub fn lexical_similarity(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Feature-hashing text embedding over word unigrams + character trigrams
/// (deterministic; dimension `dim`). Normalized to unit length.
pub fn hash_embed(text: &str, dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim.max(1)];
    let mut add = |feature: &str| {
        let h = fxhash(feature.as_bytes());
        let idx = (h % dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[idx] += sign;
    };
    for token in tokenize(text) {
        add(&token);
        let bytes = token.as_bytes();
        if bytes.len() >= 3 {
            for w in bytes.windows(3) {
                add(std::str::from_utf8(w).unwrap_or(""));
            }
        }
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// FNV-1a 64-bit hash (deterministic across runs/platforms).
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cosine similarity of two equal-length embeddings.
fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    f64::from(dot)
}

/// The entity linker.
#[derive(Debug, Clone, Default)]
pub struct Linker {
    entities: Vec<Entity>,
    /// Normalized surface form → entity indexes (the gazetteer).
    gazetteer: HashMap<String, Vec<usize>>,
    /// Max surface length in tokens.
    max_tokens: usize,
    embed_dim: usize,
}

impl Linker {
    /// Build over an entity catalog with embedding dimension `embed_dim`.
    pub fn new(entities: Vec<Entity>, embed_dim: usize) -> Self {
        let mut gazetteer: HashMap<String, Vec<usize>> = HashMap::new();
        let mut max_tokens = 1;
        for (i, e) in entities.iter().enumerate() {
            for form in e.surface_forms() {
                let key = tokenize(form).join(" ");
                max_tokens = max_tokens.max(key.split(' ').count());
                gazetteer.entry(key).or_default().push(i);
            }
        }
        Self { entities, gazetteer, max_tokens, embed_dim: embed_dim.max(8) }
    }

    /// The catalog.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Extract mentions by greedy maximal matching over token n-grams.
    pub fn extract(&self, text: &str) -> Vec<Mention> {
        let tokens = tokenize(text);
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let mut matched = None;
            let max_n = self.max_tokens.min(tokens.len() - i);
            for n in (1..=max_n).rev() {
                let surface = tokens[i..i + n].join(" ");
                if self.gazetteer.contains_key(&surface) {
                    matched = Some((surface, n));
                    break;
                }
            }
            match matched {
                Some((surface, n)) => {
                    out.push(Mention { surface, start: i, len: n });
                    i += n;
                }
                None => i += 1,
            }
        }
        out
    }

    /// Link a mention given its sentence context; ranked candidates, best
    /// first. Scores each catalog entity whose gazetteer key shares a token
    /// with the mention (cheap candidate generation), then combines signals.
    pub fn link(&self, mention: &str, context: &str, config: LinkerConfig) -> Vec<LinkCandidate> {
        let mention_norm = tokenize(mention).join(" ");
        let mention_tokens: HashSet<&str> = mention_norm.split(' ').collect();
        // candidate generation: any entity with a surface form sharing a token
        let mut candidate_ids: HashSet<usize> = HashSet::new();
        for (key, ids) in &self.gazetteer {
            if key.split(' ').any(|t| mention_tokens.contains(t)) {
                candidate_ids.extend(ids.iter().copied());
            }
        }
        let ctx_embed = hash_embed(context, self.embed_dim);
        let mut out: Vec<LinkCandidate> = candidate_ids
            .into_iter()
            .map(|i| {
                let e = &self.entities[i];
                let lexical = e
                    .surface_forms()
                    .map(|f| lexical_similarity(&mention_norm, f))
                    .fold(0.0f64, f64::max);
                let embedding = if context.is_empty() {
                    0.0
                } else {
                    cosine(&ctx_embed, &hash_embed(&e.description, self.embed_dim)).max(0.0)
                };
                let popularity = (1.0 + e.popularity).ln() / 10.0;
                let mut score = 0.0;
                let mut weight = 0.0;
                if config.use_lexical {
                    score += 0.6 * lexical;
                    weight += 0.6;
                }
                if config.use_embedding {
                    score += 0.3 * embedding;
                    weight += 0.3;
                }
                if config.use_popularity {
                    score += 0.1 * popularity.min(1.0);
                    weight += 0.1;
                }
                if weight > 0.0 {
                    score /= weight;
                }
                LinkCandidate { entity_id: e.id.clone(), score, lexical, embedding, popularity }
            })
            .collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Linker {
        Linker::new(
            vec![
                Entity::new(
                    "swiss_labour_barometer",
                    "Swiss Labour Market Barometer",
                    vec!["labour market barometer", "barometer"],
                    "monthly leading indicator survey of labour market experts employment",
                    50.0,
                ),
                Entity::new(
                    "weather_barometer",
                    "Barometer",
                    vec![],
                    "instrument measuring atmospheric pressure weather meteorology",
                    500.0,
                ),
                Entity::new(
                    "canton_zurich",
                    "Zurich",
                    vec!["canton of zurich", "zh"],
                    "largest swiss canton by population employment hub",
                    300.0,
                ),
            ],
            64,
        )
    }

    #[test]
    fn extraction_prefers_longest_match() {
        let l = catalog();
        let mentions = l.extract("Show the labour market barometer for Zurich");
        let surfaces: Vec<&str> = mentions.iter().map(|m| m.surface.as_str()).collect();
        assert_eq!(surfaces, vec!["labour market barometer", "zurich"]);
        assert_eq!(mentions[0].start, 2);
        assert_eq!(mentions[0].len, 3);
    }

    #[test]
    fn extraction_finds_aliases() {
        let l = catalog();
        let mentions = l.extract("employment in ZH");
        assert_eq!(mentions.len(), 1);
        assert_eq!(mentions[0].surface, "zh");
    }

    #[test]
    fn context_disambiguates_barometer() {
        let l = catalog();
        let with_ctx = l.link(
            "barometer",
            "employment and labour market survey indicator",
            LinkerConfig::default(),
        );
        assert_eq!(with_ctx[0].entity_id, "swiss_labour_barometer");
        let weather = l.link(
            "barometer",
            "atmospheric pressure measurement for tomorrow's weather",
            LinkerConfig::default(),
        );
        assert_eq!(weather[0].entity_id, "weather_barometer");
    }

    #[test]
    fn lexical_only_falls_back_to_popular_reading() {
        let l = catalog();
        let cfg = LinkerConfig { use_lexical: true, use_embedding: false, use_popularity: true };
        let c = l.link("barometer", "employment survey", cfg);
        // without embeddings the lexically-identical, more popular weather
        // sense wins — the ablation E3 quantifies exactly this failure
        assert_eq!(c[0].entity_id, "weather_barometer");
    }

    #[test]
    fn lexical_similarity_properties() {
        assert!((lexical_similarity("zurich", "zurich") - 1.0).abs() < 1e-12);
        assert!(lexical_similarity("zurich", "zuerich") > 0.25);
        assert!(lexical_similarity("zurich", "geneva") < 0.1);
        assert_eq!(lexical_similarity("", ""), 1.0);
    }

    #[test]
    fn hash_embed_is_deterministic_and_normalized() {
        let a = hash_embed("labour market survey", 64);
        let b = hash_embed("labour market survey", 64);
        assert_eq!(a, b);
        let n: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
        // related texts are closer than unrelated ones
        let rel = cosine(&a, &hash_embed("swiss labour market", 64));
        let unrel = cosine(&a, &hash_embed("chocolate cake recipe", 64));
        assert!(rel > unrel);
    }

    #[test]
    fn unknown_mention_yields_no_candidates() {
        let l = catalog();
        assert!(l.link("flux capacitor", "time travel", LinkerConfig::default()).is_empty());
        assert!(l.extract("nothing known here").is_empty());
    }

    #[test]
    fn candidates_are_sorted_by_score() {
        let l = catalog();
        let c = l.link("barometer", "labour market employment", LinkerConfig::default());
        assert!(c.len() >= 2);
        assert!(c[0].score >= c[1].score);
    }
}
