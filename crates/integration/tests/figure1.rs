//! Experiment **F1**: end-to-end replay of the paper's Figure-1 conversation,
//! asserting that every property annotation the figure shows actually fires.

use cda_core::answer::{AnswerStatus, PropertyTag};
use cda_core::demo::{demo_session, FIGURE1_TURNS};

#[test]
fn figure1_full_conversation_replays_with_all_annotations() {
    let mut cda = demo_session(42);

    // Turn 1: discovery with grounding assumption, two options, follow-up.
    let t1 = cda.process(FIGURE1_TURNS[0]);
    assert_eq!(t1.status, AnswerStatus::AskedClarification);
    assert!(t1.text.contains("I am assuming"), "grounding assumption stated");
    assert!(t1.text.to_lowercase().contains("employment type distribution"));
    assert!(t1.text.to_lowercase().contains("barometer"));
    assert!(t1.text.ends_with("Which would you prefer?"));
    for p in [
        PropertyTag::Efficiency,
        PropertyTag::Grounding,
        PropertyTag::Explainability,
        PropertyTag::Soundness,
        PropertyTag::Guidance,
    ] {
        assert!(t1.properties.contains(&p), "turn 1 missing {p}");
    }
    let c1 = t1.confidence.expect("turn 1 carries confidence");
    assert!(c1 > 0.5 && c1 <= 1.0, "confidence {c1}");

    // Turn 2: description with source provenance (P4 soundness by provenance).
    let t2 = cda.process(FIGURE1_TURNS[1]);
    assert!(t2.text.contains("monthly leading indicator"));
    assert!(t2.text.contains("Source: https://www.arbeit.swiss"), "{}", t2.text);
    assert!(t2.properties.contains(&PropertyTag::Soundness));

    // Turn 3: selection focuses the barometer and shows an overview.
    let t3 = cda.process(FIGURE1_TURNS[2]);
    assert_eq!(cda.state().focused.as_deref(), Some("labour_barometer"));
    assert!(t3.text.contains("overview"));
    assert!(!t3.suggestions.is_empty(), "guidance suggests next steps");

    // Turn 4: the seasonality insight — period 6, confidence, caveat, code.
    let t4 = cda.process(FIGURE1_TURNS[3]);
    assert_eq!(t4.status, AnswerStatus::Answered, "{}", t4.text);
    assert!(t4.text.contains("best fitted seasonal period is 6"), "{}", t4.text);
    assert!(t4.text.contains("recent 120 observations"), "sufficiency caveat");
    assert!(t4.text.contains("seasonal_decompose"), "code snippet attached");
    let c4 = t4.confidence.expect("turn 4 carries confidence");
    assert!(c4 >= 0.5, "confidence {c4}");
    assert!(t4.properties.contains(&PropertyTag::Explainability));
    assert!(t4.properties.contains(&PropertyTag::Soundness));
    let explanation = t4.explanation.expect("explanation bundle present");
    assert!(explanation.sources.iter().any(|s| s.contains("arbeit.swiss")));
    assert!(explanation.code.contains("period=6"));

    // Session-level records: the lineage graph spans all layers.
    assert!(cda.lineage().len() >= 10, "lineage nodes: {}", cda.lineage().len());
    let rendered = cda.lineage().to_string();
    assert!(rendered.contains("[utterance]"));
    assert!(rendered.contains("[model-call]"));
    assert!(rendered.contains("[dataset]"));
    assert!(rendered.contains("[computation]"));
    assert!(rendered.contains("[answer]"));
    // The conversation graph captured user/system turns plus alternatives.
    assert!(cda.conversation().len() >= 8);
}

#[test]
fn figure1_is_deterministic_given_a_seed() {
    let run = |seed: u64| -> Vec<String> {
        let mut cda = demo_session(seed);
        FIGURE1_TURNS.iter().map(|t| cda.process(t).text).collect()
    };
    assert_eq!(run(42), run(42));
    // a different seed changes the synthetic data but not the conversation's
    // shape
    let other = run(43);
    assert!(other[3].contains("best fitted seasonal period is 6"));
}

#[test]
fn figure1_confidences_are_in_the_papers_range() {
    // the figure annotates 87–93% confidences; our reproduction must land in
    // a credible high-confidence band for the same turns (>50%)
    let mut cda = demo_session(42);
    for turn in FIGURE1_TURNS {
        let a = cda.process(turn);
        if let Some(c) = a.confidence {
            assert!((0.5..=1.0).contains(&c), "confidence {c} out of band for {turn:?}");
        }
    }
}
