//! Micro-benchmark harness replacing `criterion` for the `cargo bench`
//! targets in `crates/bench/benches/`: warmup, N timed samples, median/p99,
//! and one `BENCH_<group>.json` artifact per benchmark group (written under
//! `target/cda-bench/`) so experiment trajectories can be diffed across
//! commits.
//!
//! The API mirrors the slice of criterion the repo uses — [`Criterion`],
//! `benchmark_group`, `sample_size`, `bench_function`, [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`crate::criterion_group!`]/[`crate::criterion_main!`] macros — so bench
//! files port by swapping the `use` line.

use crate::json::Json;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Batch sizing hint, accepted for criterion-compatibility. The harness
/// always runs setup once per sample, so the variants coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input per iteration.
    SmallInput,
    /// Large input per iteration.
    LargeInput,
    /// One setup per iteration (our behavior for all variants).
    PerIteration,
}

/// Statistics for one bench function, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Bench function name.
    pub name: String,
    /// Number of samples taken.
    pub samples: usize,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 99th-percentile ns/iter.
    pub p99_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// Slowest sample ns/iter.
    pub max_ns: f64,
}

impl BenchStats {
    fn from_samples(name: &str, mut ns: Vec<f64>) -> Self {
        assert!(!ns.is_empty());
        ns.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| ns[((ns.len() - 1) as f64 * q).round() as usize];
        BenchStats {
            name: name.to_owned(),
            samples: ns.len(),
            median_ns: pick(0.5),
            p99_ns: pick(0.99),
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("samples", Json::Num(self.samples as f64)),
            ("median_ns", Json::Num(self.median_ns)),
            ("p99_ns", Json::Num(self.p99_ns)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("max_ns", Json::Num(self.max_ns)),
        ])
    }
}

/// Harness entry point; holds nothing but default configuration.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            results: Vec::new(),
            finished: false,
        }
    }
}

/// A group of related bench functions sharing a sample size; on
/// [`finish`](BenchmarkGroup::finish) the group prints a summary and writes
/// its JSON artifact.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    results: Vec<BenchStats>,
    finished: bool,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per bench function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one bench function and record its statistics.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { sample_size: effective_sample_size(self.sample_size), samples: Vec::new() };
        f(&mut b);
        assert!(
            !b.samples.is_empty(),
            "bench function {name} never called Bencher::iter/iter_batched"
        );
        let stats = BenchStats::from_samples(name, b.samples);
        println!(
            "bench {:<40} median {:>12}  p99 {:>12}  ({} samples)",
            format!("{}/{}", self.name, stats.name),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p99_ns),
            stats.samples,
        );
        self.results.push(stats);
        self
    }

    /// Finish the group: write `target/cda-bench/BENCH_<group>.json`.
    pub fn finish(mut self) {
        self.flush();
    }

    /// Results recorded so far (exposed for harness self-tests).
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Render the group's JSON artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::Str(self.name.clone())),
            ("sample_size", Json::Num(self.sample_size as f64)),
            ("benches", Json::Arr(self.results.iter().map(BenchStats::to_json).collect())),
        ])
    }

    fn flush(&mut self) {
        if self.finished || self.results.is_empty() {
            return;
        }
        self.finished = true;
        let dir = artifact_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cda-bench: cannot create {}: {e}", dir.display());
            return;
        }
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("BENCH_{sanitized}.json"));
        match std::fs::write(&path, format!("{}\n", self.to_json())) {
            Ok(()) => println!("bench group {} -> {}", self.name, path.display()),
            Err(e) => eprintln!("cda-bench: cannot write {}: {e}", path.display()),
        }
    }
}

impl Drop for BenchmarkGroup {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Where `BENCH_*.json` artifacts land: `$CARGO_TARGET_DIR/cda-bench`, or
/// the nearest enclosing `target/` directory, or `./target/cda-bench`.
fn artifact_dir() -> PathBuf {
    if let Ok(t) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(t).join("cda-bench");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate.join("cda-bench");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("target").join("cda-bench")
}

/// `CDA_BENCH_FAST=1` trims every group to a 2-sample smoke run — used by
/// `ci.sh` to verify the harness end-to-end without paying full bench time.
fn effective_sample_size(configured: usize) -> usize {
    match std::env::var("CDA_BENCH_FAST") {
        Ok(v) if v != "0" && !v.is_empty() => 2,
        _ => configured,
    }
}

/// Passed to each bench function; timing happens in
/// [`iter`](Bencher::iter)/[`iter_batched`](Bencher::iter_batched).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time a closure. Cheap closures are auto-batched so each sample spans
    /// at least ~100µs of work, keeping clock granularity noise down.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup + calibration: estimate a single-call cost.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64();
        let per_sample = if once > 0.0 {
            ((100e-6 / once).ceil() as usize).clamp(1, 10_000)
        } else {
            10_000
        };
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / per_sample as f64
            })
            .collect();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // One warmup round.
        black_box(routine(setup()));
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                t0.elapsed().as_secs_f64() * 1e9
            })
            .collect();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Group bench functions into a single runner `fn $name()`, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::bench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`. Ignores harness CLI flags passed by
/// `cargo bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn stats_median_and_p99() {
        let ns: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = BenchStats::from_samples("x", ns);
        assert_eq!(s.samples, 100);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
        assert_eq!(s.median_ns, 51.0); // nearest-rank on 0-indexed 99 * 0.5
        assert_eq!(s.p99_ns, 99.0);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { sample_size: 5, samples: Vec::new() };
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));

        let mut b = Bencher { sample_size: 4, samples: Vec::new() };
        b.iter_batched(|| vec![3u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn group_json_round_trips() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_function("vec_rev", |b| {
            b.iter_batched(
                || (0..256u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });

        let doc = group.to_json();
        let text = doc.to_string();
        let back = json::parse(&text).expect("bench JSON parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("group").unwrap().as_str().unwrap(), "selftest");
        let benches = back.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 2);
        for b in benches {
            assert!(b.get("median_ns").unwrap().as_f64().unwrap() > 0.0);
            assert!(
                b.get("p99_ns").unwrap().as_f64().unwrap()
                    >= b.get("median_ns").unwrap().as_f64().unwrap()
            );
        }
        // keep the test from writing artifacts on drop
        group.results.clear();
    }
}
