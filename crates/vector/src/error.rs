//! Error type for the vector-search substrate.

use std::fmt;

/// Errors from dataset construction and index building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorError {
    /// Rows of differing dimensionality were supplied.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        actual: usize,
    },
    /// An empty dataset or zero dimension was supplied where data is required.
    EmptyInput(&'static str),
    /// Invalid parameter (message explains the constraint).
    InvalidParameter(String),
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Self::EmptyInput(what) => write!(f, "empty input: {what}"),
            Self::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for VectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(VectorError::DimensionMismatch { expected: 3, actual: 2 }
            .to_string()
            .contains("expected 3"));
        assert!(VectorError::EmptyInput("rows").to_string().contains("rows"));
    }
}
