//! The conversation graph data model.
//!
//! Nodes represent the actors and artifacts of a conversation (the user, the
//! system, LLM agents, tools, and produced answers); edges capture what
//! happened (utterances, actions) and — crucially for guidance — what *could
//! have* happened ([`EdgeKind::Alternative`] branches with confidence
//! metadata). The planner walks this structure to "carry enough information
//! to provide users with alternative options as opposed to the traditional
//! single-answer approach".

use crate::{GuidanceError, Result};
use std::fmt;

/// Who/what a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// The human user.
    User,
    /// The orchestrating system.
    System,
    /// An LLM agent.
    LlmAgent,
    /// A tool / computation.
    Tool,
    /// A produced answer artifact.
    Answer,
}

impl NodeRole {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            NodeRole::User => "user",
            NodeRole::System => "system",
            NodeRole::LlmAgent => "llm",
            NodeRole::Tool => "tool",
            NodeRole::Answer => "answer",
        }
    }
}

/// What an edge records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A realized utterance.
    Utterance,
    /// A realized action (query executed, computation run).
    Action,
    /// A speculative alternative that was considered but not taken.
    Alternative,
    /// Explicit user feedback on a node.
    Feedback,
}

/// A node in the conversation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvNode {
    /// Actor/artifact role.
    pub role: NodeRole,
    /// Payload (utterance text, action description, answer summary …).
    pub content: String,
    /// Turn index the node belongs to.
    pub turn: usize,
}

/// An edge in the conversation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvEdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Kind of transition.
    pub kind: EdgeKind,
    /// Confidence / utility annotation in `[0, 1]`.
    pub confidence: f64,
}

/// The conversation graph.
#[derive(Debug, Clone, Default)]
pub struct ConversationGraph {
    nodes: Vec<ConvNode>,
    edges: Vec<ConvEdge>,
}

impl ConversationGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, role: NodeRole, content: impl Into<String>, turn: usize) -> usize {
        self.nodes.push(ConvNode { role, content: content.into(), turn });
        self.nodes.len() - 1
    }

    /// Add an edge; both endpoints must exist.
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind, confidence: f64) -> Result<()> {
        if from >= self.nodes.len() {
            return Err(GuidanceError::UnknownNode(from));
        }
        if to >= self.nodes.len() {
            return Err(GuidanceError::UnknownNode(to));
        }
        self.edges.push(ConvEdge { from, to, kind, confidence: confidence.clamp(0.0, 1.0) });
        Ok(())
    }

    /// Node accessor.
    pub fn node(&self, id: usize) -> Result<&ConvNode> {
        self.nodes.get(id).ok_or(GuidanceError::UnknownNode(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, id: usize) -> Vec<&ConvEdge> {
        self.edges.iter().filter(|e| e.from == id).collect()
    }

    /// The alternative branches recorded at a node, ranked by confidence —
    /// the "where-to" options shown to the user.
    pub fn alternatives(&self, id: usize) -> Vec<(&ConvNode, f64)> {
        let mut alts: Vec<(&ConvNode, f64)> = self
            .edges
            .iter()
            .filter(|e| e.from == id && e.kind == EdgeKind::Alternative)
            .filter_map(|e| self.nodes.get(e.to).map(|n| (n, e.confidence)))
            .collect();
        alts.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        alts
    }

    /// The realized path (Utterance/Action edges only) from node `start`.
    pub fn realized_path(&self, start: usize) -> Vec<usize> {
        let mut path = vec![start];
        let mut cur = start;
        loop {
            let next = self
                .edges
                .iter()
                .find(|e| {
                    e.from == cur && matches!(e.kind, EdgeKind::Utterance | EdgeKind::Action)
                })
                .map(|e| e.to);
            match next {
                Some(n) if !path.contains(&n) => {
                    path.push(n);
                    cur = n;
                }
                _ => return path,
            }
        }
    }

    /// Mean confidence of feedback edges pointing at `id` (None without
    /// feedback) — how the user judged this step.
    pub fn feedback_score(&self, id: usize) -> Option<f64> {
        let scores: Vec<f64> = self
            .edges
            .iter()
            .filter(|e| e.to == id && e.kind == EdgeKind::Feedback)
            .map(|e| e.confidence)
            .collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }
}

impl fmt::Display for ConversationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(f, "{i} [{} t{}] {}", n.role.label(), n.turn, n.content)?;
        }
        for e in &self.edges {
            writeln!(f, "{} -> {} [{:?} {:.2}]", e.from, e.to, e.kind, e.confidence)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ConversationGraph, usize) {
        let mut g = ConversationGraph::new();
        let u = g.add_node(NodeRole::User, "overview of the workforce", 0);
        let s = g.add_node(NodeRole::System, "offer two datasets", 0);
        let a1 = g.add_node(NodeRole::Answer, "employment distribution", 0);
        let a2 = g.add_node(NodeRole::Answer, "labour market barometer", 0);
        g.add_edge(u, s, EdgeKind::Utterance, 1.0).unwrap();
        g.add_edge(s, a1, EdgeKind::Alternative, 0.6).unwrap();
        g.add_edge(s, a2, EdgeKind::Alternative, 0.9).unwrap();
        g.add_edge(u, a2, EdgeKind::Feedback, 1.0).unwrap();
        (g, s)
    }

    #[test]
    fn nodes_and_edges_connect() {
        let (g, s) = sample();
        assert_eq!(g.len(), 4);
        assert_eq!(g.outgoing(s).len(), 2);
        assert_eq!(g.node(0).unwrap().role, NodeRole::User);
        assert!(g.node(99).is_err());
    }

    #[test]
    fn edges_validate_endpoints() {
        let mut g = ConversationGraph::new();
        let n = g.add_node(NodeRole::User, "hi", 0);
        assert!(g.add_edge(n, 5, EdgeKind::Action, 0.5).is_err());
        assert!(g.add_edge(7, n, EdgeKind::Action, 0.5).is_err());
    }

    #[test]
    fn alternatives_ranked_by_confidence() {
        let (g, s) = sample();
        let alts = g.alternatives(s);
        assert_eq!(alts.len(), 2);
        assert_eq!(alts[0].0.content, "labour market barometer");
        assert!(alts[0].1 > alts[1].1);
    }

    #[test]
    fn realized_path_follows_actions_only() {
        let (g, _) = sample();
        // from the user node the only realized edge is the utterance to system
        assert_eq!(g.realized_path(0), vec![0, 1]);
    }

    #[test]
    fn feedback_scores_aggregate() {
        let (g, _) = sample();
        assert_eq!(g.feedback_score(3), Some(1.0));
        assert_eq!(g.feedback_score(2), None);
    }

    #[test]
    fn confidence_clamped() {
        let mut g = ConversationGraph::new();
        let a = g.add_node(NodeRole::User, "a", 0);
        let b = g.add_node(NodeRole::System, "b", 0);
        g.add_edge(a, b, EdgeKind::Action, 7.0).unwrap();
        assert_eq!(g.outgoing(a)[0].confidence, 1.0);
    }

    #[test]
    fn display_renders() {
        let (g, _) = sample();
        let s = g.to_string();
        assert!(s.contains("[user t0]"));
        assert!(s.contains("Alternative"));
    }
}
