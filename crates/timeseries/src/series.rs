//! The time-series container and synthetic generators.

use crate::{Result, TsError};
use cda_testkit::rng::StdRng;

/// An evenly-spaced univariate time series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Timestamps (seconds since epoch or abstract ticks), strictly increasing.
    timestamps: Vec<i64>,
    /// Observed values.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Construct from parallel vectors.
    pub fn new(timestamps: Vec<i64>, values: Vec<f64>) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(TsError::LengthMismatch);
        }
        Ok(Self { timestamps, values })
    }

    /// Construct from values with tick timestamps `0..n`.
    pub fn from_values(values: Vec<f64>) -> Self {
        let timestamps = (0..values.len() as i64).collect();
        Self { timestamps, values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The timestamps.
    pub fn timestamps(&self) -> &[i64] {
        &self.timestamps
    }

    /// Mean of the values (0 for the empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    /// The suffix of the series starting at observation `start`.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let end = end.min(self.len());
        let start = start.min(end);
        Self {
            timestamps: self.timestamps[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Sufficiency check (P4): at least `min_obs` observations. Returns the
    /// error the soundness layer converts into a user-visible caveat.
    pub fn require(&self, min_obs: usize) -> Result<()> {
        if self.len() < min_obs {
            return Err(TsError::InsufficientData { required: min_obs, available: self.len() });
        }
        Ok(())
    }

    /// Generate a synthetic series
    /// `value[t] = base + slope·t + amplitude·sin(2πt/period) + noise·N(0,1)`
    /// — the workload generator of experiment E10.
    pub fn synthetic_seasonal(
        n: usize,
        period: usize,
        amplitude: f64,
        slope: f64,
        noise: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n)
            .map(|t| {
                let seasonal = if period > 0 {
                    amplitude * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
                } else {
                    0.0
                };
                100.0 + slope * t as f64 + seasonal + noise * gaussian(&mut rng)
            })
            .collect();
        Self::from_values(values)
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_lengths() {
        assert!(TimeSeries::new(vec![0, 1], vec![1.0]).is_err());
        let ts = TimeSeries::new(vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn from_values_assigns_ticks() {
        let ts = TimeSeries::from_values(vec![5.0, 6.0, 7.0]);
        assert_eq!(ts.timestamps(), &[0, 1, 2]);
    }

    #[test]
    fn mean_and_std() {
        let ts = TimeSeries::from_values(vec![2.0, 4.0, 6.0]);
        assert_eq!(ts.mean(), 4.0);
        assert!((ts.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(TimeSeries::from_values(vec![]).mean(), 0.0);
        assert_eq!(TimeSeries::from_values(vec![]).std_dev(), 0.0);
    }

    #[test]
    fn slicing_clamps() {
        let ts = TimeSeries::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        let s = ts.slice(1, 3);
        assert_eq!(s.values(), &[2.0, 3.0]);
        assert_eq!(s.timestamps(), &[1, 2]);
        assert_eq!(ts.slice(2, 99).len(), 2);
        assert_eq!(ts.slice(5, 2).len(), 0);
    }

    #[test]
    fn sufficiency_gate() {
        let ts = TimeSeries::from_values(vec![1.0; 10]);
        assert!(ts.require(10).is_ok());
        assert!(matches!(
            ts.require(11),
            Err(TsError::InsufficientData { required: 11, available: 10 })
        ));
    }

    #[test]
    fn synthetic_series_has_expected_shape() {
        let ts = TimeSeries::synthetic_seasonal(120, 12, 10.0, 0.1, 0.0, 1);
        assert_eq!(ts.len(), 120);
        // noise-free: value at t and t+12 differ only by trend 12*0.1
        let diff = ts.values()[20 + 12] - ts.values()[20];
        assert!((diff - 1.2).abs() < 1e-9, "diff {diff}");
    }

    #[test]
    fn synthetic_is_seeded() {
        let a = TimeSeries::synthetic_seasonal(50, 6, 5.0, 0.0, 1.0, 9);
        let b = TimeSeries::synthetic_seasonal(50, 6, 5.0, 0.0, 1.0, 9);
        assert_eq!(a, b);
        let c = TimeSeries::synthetic_seasonal(50, 6, 5.0, 0.0, 1.0, 10);
        assert_ne!(a, c);
    }
}
