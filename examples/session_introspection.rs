//! Session introspection: the system analyzing itself.
//!
//! Run with: `cargo run -p cda-core --example session_introspection`
//!
//! Demonstrates three data-layer mechanisms the paper proposes for layer ⓓ:
//! the **query log** as a first-class, SQL-queryable data source; **bias
//! screening** of conversation logs (CADS + sentiment); and **data rotting**
//! — stale datasets demoted in discovery and flagged with caveats.

use cda_core::catalog::{Dataset, DatasetCatalog};
use cda_core::demo::{demo_session, FIGURE1_TURNS};
use cda_core::rot::Freshness;
use cda_nlmodel::bias::{keyness, sentiment_score, BiasScreen};
use cda_sql::execute;

fn main() {
    // --- 1. run a session, then query its own log with SQL ----------------
    let mut cda = demo_session(42);
    for t in FIGURE1_TURNS {
        cda.process(t);
    }
    cda.process("What is the total employees in employment_by_type per canton?");
    cda.process("and per type instead?");

    println!("=== the session's query log, queried with the session's own engine ===");
    let mut catalog = cda_sql::Catalog::new();
    catalog.register("query_log", cda.query_log().to_table()).expect("fresh catalog");
    let r = execute(
        &catalog,
        "SELECT intent, outcome, COUNT(*) AS n FROM query_log GROUP BY intent, outcome \
         ORDER BY n DESC, intent",
    )
    .expect("log query executes");
    println!("{}", r.table.render(10));
    println!("answer rate: {:.0}%\n", cda.query_log().answer_rate() * 100.0);

    // --- 2. bias screening over a (synthetic) problematic log -------------
    println!("=== bias screen over a problematic conversation log ===");
    let log: Vec<&str> = vec![
        "the foreigners are lazy and unreliable",
        "foreigners are criminal, look at the numbers",
        "those lazy foreigners again in the statistics",
        "the workforce is skilled and productive overall",
        "excellent and reliable employment data this month",
        "the cantons report strong and trustworthy numbers",
    ];
    for entry in &log {
        println!("  {:>5.2}  {entry}", sentiment_score(entry));
    }
    let screen = BiasScreen::new(vec!["foreigners", "students"]);
    for finding in screen.screen(&log).expect("screen runs") {
        println!(
            "\nFLAGGED group {:?}: sentiment {:.2} vs baseline {:.2} over {} mentions",
            finding.group, finding.group_sentiment, finding.baseline_sentiment, finding.mentions
        );
        println!("  over-associated negative terms: {:?}", finding.associated_negative_terms);
    }
    println!("\nkeyness (CADS) of the group-mentioning sub-corpus:");
    let target: Vec<&str> = log[..3].to_vec();
    let reference: Vec<&str> = log[3..].to_vec();
    for k in keyness(&target, &reference, 2).into_iter().take(4) {
        println!("  {:<12} log-odds {:+.2} ({} vs {})", k.term, k.log_odds, k.target_count, k.reference_count);
    }

    // --- 3. data rotting ---------------------------------------------------
    println!("\n=== data rotting: stale datasets are demoted and flagged ===");
    let ds = |name: &str, fresh: Freshness| Dataset {
        name: name.into(),
        description: "swiss labour market employment statistics".into(),
        source_url: String::new(),
        table: None,
        series: None,
        keywords: vec!["labour".into(), "employment".into()],
        freshness: fresh,
    };
    let mut catalog = DatasetCatalog::new();
    catalog.register(ds("fresh_stats", Freshness::periodic(100, 30))).expect("fresh");
    catalog.register(ds("rotten_stats", Freshness::periodic(0, 10))).expect("fresh");
    catalog.set_clock(120);
    for h in catalog.discover("labour employment", 2, true) {
        println!("  discovery: {:<14} score {:.3}", h.name, h.score);
    }
    for d in catalog.rotten(0.5) {
        println!("  rotten: {} — {}", d.name, d.freshness.caveat(120).unwrap_or_default());
    }
}
