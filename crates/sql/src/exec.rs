//! Plan execution with lineage propagation.
//!
//! The executor interprets a [`Plan`] against a [`Catalog`], producing a
//! [`QueryResult`] that carries the result table (with per-row lineage), the
//! executed plan (for `EXPLAIN`-style explanations, P3), and execution
//! statistics (rows scanned / materialized, for the efficiency experiments).
//!
//! Lineage semantics ("why-provenance" witnesses):
//! * scan/filter/sort/limit/project keep each row's existing lineage;
//! * join rows take the **union** of both sides' lineage;
//! * aggregate rows take the union over all rows of the group;
//! * distinct rows take the union over all duplicate witnesses.

use crate::ast::JoinKind;
use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::optimizer::{optimize, OptimizerRules};
use crate::parser::parse;
use crate::plan::{AggExpr, BoundExpr, Plan, SortSpec};
use crate::planner::plan_select;
use crate::Result;
use cda_dataframe::kernels::{sort_indices, AggKind, SortKey, SortOrder};
use cda_dataframe::{Column, DataType, DomainTree, Schema, Table, Value};
use std::collections::HashMap;

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Optimizer rules to apply before execution.
    pub rules: OptimizerRules,
    /// Whether to compute join/aggregate/distinct lineage unions. Disabling
    /// this (experiment E4) measures the cost of provenance tracking.
    pub track_lineage: bool,
    /// When `Some`, run on the vectorized morsel-parallel engine
    /// ([`crate::physical`]) with the given scheduler configuration; `None`
    /// (the default) runs the row-at-a-time reference interpreter. Both paths
    /// produce byte-identical tables (see `crate::physical` docs).
    pub vectorized: Option<crate::morsel::MorselConfig>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self { rules: OptimizerRules::all(), track_lineage: true, vectorized: None }
    }
}

impl ExecOptions {
    /// Default options, but on the vectorized morsel-parallel engine.
    pub fn vectorized() -> Self {
        Self { vectorized: Some(crate::morsel::MorselConfig::default()), ..Self::default() }
    }
}

/// Counters collected during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: usize,
    /// Rows materialized by all operators (including the final result).
    pub rows_materialized: usize,
    /// Row-pairs considered by nested-loop joins.
    pub join_pairs: usize,
}

/// The result of executing one SQL query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result table (with lineage if tracking was enabled).
    pub table: Table,
    /// The optimized plan that was executed.
    pub plan: Plan,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Parse, plan, optimize (default rules), and execute a SELECT.
pub fn execute(catalog: &Catalog, sql: &str) -> Result<QueryResult> {
    execute_with_options(catalog, sql, ExecOptions::default())
}

/// Parse, plan, optimize, and execute with explicit options.
pub fn execute_with_options(catalog: &Catalog, sql: &str, options: ExecOptions) -> Result<QueryResult> {
    let plan = optimized_plan(catalog, sql, options.rules)?;
    let mut stats = ExecStats::default();
    let table = dispatch(catalog, &plan, options, None, &mut stats)?;
    Ok(QueryResult { table, plan, stats })
}

/// Parse, plan, and optimize a SELECT without executing it — the exact plan
/// [`execute_with_options`] would run. Planning is deterministic, so
/// callers that persist a query's *SQL* (the durable semantic cache) can
/// reconstruct the plan a stored result was produced by, instead of
/// serializing plan trees.
pub fn optimized_plan(catalog: &Catalog, sql: &str, rules: OptimizerRules) -> Result<Plan> {
    let select = parse(sql)?;
    let plan = plan_select(catalog, &select)?;
    Ok(optimize(plan, rules))
}

/// Execute an already-built plan.
pub fn execute_plan(catalog: &Catalog, plan: &Plan, options: ExecOptions) -> Result<QueryResult> {
    execute_plan_checked(catalog, plan, options, None)
}

/// Execute an already-built plan under the abstract-interpretation sanitizer.
///
/// When `monitor` is `Some`, it must be the [`DomainTree`] that
/// `cda_analyzer::domain_tree` computed **for this exact plan** (same shape,
/// post-optimizer): every table an operator materializes is checked against
/// its node's static domain, and any value, null, or row-count outside the
/// domain aborts execution with [`SqlError::Eval`] naming the node and the
/// violating bound. A tree whose shape diverges from the plan fails open
/// (unmatched children are simply not checked). `None` is exactly
/// [`execute_plan`].
pub fn execute_plan_checked(
    catalog: &Catalog,
    plan: &Plan,
    options: ExecOptions,
    monitor: Option<&DomainTree>,
) -> Result<QueryResult> {
    let mut stats = ExecStats::default();
    let table = dispatch(catalog, plan, options, monitor, &mut stats)?;
    Ok(QueryResult { table, plan: plan.clone(), stats })
}

fn dispatch(
    catalog: &Catalog,
    plan: &Plan,
    opts: ExecOptions,
    monitor: Option<&DomainTree>,
    stats: &mut ExecStats,
) -> Result<Table> {
    match opts.vectorized {
        Some(cfg) => crate::physical::run_vectorized(catalog, plan, opts, cfg, monitor, stats),
        None => run(catalog, plan, opts, monitor, stats),
    }
}

/// Short operator label for sanitizer violation messages.
pub(crate) fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan {table}"),
        Plan::Filter { .. } => "Filter".into(),
        Plan::Join { kind, .. } => format!("{kind:?} Join"),
        Plan::Project { .. } => "Project".into(),
        Plan::Aggregate { .. } => "Aggregate".into(),
        Plan::Distinct { .. } => "Distinct".into(),
        Plan::Sort { .. } => "Sort".into(),
        Plan::Limit { .. } => "Limit".into(),
    }
}

/// Check one materialized operator output against its static domain.
pub(crate) fn sanitize(plan: &Plan, monitor: Option<&DomainTree>, out: &Table) -> Result<()> {
    if let Some(m) = monitor {
        m.node
            .check_table(&node_label(plan), out)
            .map_err(|v| SqlError::Eval(v.to_string()))?;
    }
    Ok(())
}

fn run(
    catalog: &Catalog,
    plan: &Plan,
    opts: ExecOptions,
    monitor: Option<&DomainTree>,
    stats: &mut ExecStats,
) -> Result<Table> {
    // The monitor tree mirrors the plan tree; child `i` of this node is
    // checked by child `i` of the monitor (missing children check nothing).
    let sub = |i: usize| monitor.and_then(|m| m.children.get(i));
    let out = match plan {
        Plan::Scan { table, projection, .. } => {
            let entry = catalog.get(table)?;
            stats.rows_scanned += entry.table.num_rows();
            match projection {
                Some(p) => entry.table.project(p)?,
                None => entry.table.clone(),
            }
        }
        Plan::Filter { input, predicate } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            let mut mask = Vec::with_capacity(t.num_rows());
            for r in 0..t.num_rows() {
                let row = t.row(r)?;
                mask.push(predicate.eval(&row)?.as_bool() == Some(true));
            }
            t.filter(&mask)?
        }
        Plan::Join { left, right, kind, on } => {
            let l = run(catalog, left, opts, sub(0), stats)?;
            let r = run(catalog, right, opts, sub(1), stats)?;
            join(&l, &r, *kind, on, opts, stats)?
        }
        Plan::Project { input, exprs, schema } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            project(&t, exprs, schema)?
        }
        Plan::Aggregate { input, group_exprs, aggs, schema } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            aggregate(&t, group_exprs, aggs, schema, opts)?
        }
        Plan::Distinct { input } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            distinct(&t, opts)?
        }
        Plan::Sort { input, keys } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            sort(&t, keys)?
        }
        Plan::Limit { input, limit, offset } => {
            let t = run(catalog, input, opts, sub(0), stats)?;
            let start = (*offset).min(t.num_rows());
            let end = match limit {
                Some(l) => (start + l).min(t.num_rows()),
                None => t.num_rows(),
            };
            let indices: Vec<usize> = (start..end).collect();
            t.take(&indices)?
        }
    };
    sanitize(plan, monitor, &out)?;
    stats.rows_materialized += out.num_rows();
    Ok(out)
}

/// Build a column from evaluated values, widening the planner's guess when
/// the actual values require it (e.g. a CASE that mixes INT and FLOAT).
pub(crate) fn column_from_values(planned: DataType, values: Vec<Value>) -> Result<Column> {
    let mut ty = planned;
    let mut has_any = false;
    for v in &values {
        let Some(vt) = v.data_type() else { continue };
        if !has_any {
            ty = vt;
            has_any = true;
            continue;
        }
        ty = match (ty, vt) {
            (a, b) if a == b => a,
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => DataType::Float,
            (DataType::Int, DataType::Timestamp) | (DataType::Timestamp, DataType::Int) => {
                DataType::Timestamp
            }
            _ => DataType::Str,
        };
    }
    let mut col = Column::with_capacity(ty, values.len());
    for v in values {
        let coerced = match (ty, &v) {
            (DataType::Str, Value::Null) => Value::Null,
            (DataType::Str, Value::Str(_)) => v,
            (DataType::Str, other) => Value::Str(other.to_string()),
            (DataType::Float, Value::Int(x)) => Value::Float(*x as f64),
            _ => v,
        };
        col.push(coerced)?;
    }
    Ok(col)
}

fn project(t: &Table, exprs: &[BoundExpr], schema: &Schema) -> Result<Table> {
    let n = t.num_rows();
    let mut per_col: Vec<Vec<Value>> = vec![Vec::with_capacity(n); exprs.len()];
    for r in 0..n {
        let row = t.row(r)?;
        for (c, e) in exprs.iter().enumerate() {
            per_col[c].push(e.eval(&row)?);
        }
    }
    let mut columns = Vec::with_capacity(exprs.len());
    let mut fields = Vec::with_capacity(exprs.len());
    for ((values, field), _) in per_col.into_iter().zip(schema.fields()).zip(exprs) {
        let col = column_from_values(field.data_type(), values)?;
        fields.push(cda_dataframe::Field::new(field.name(), col.data_type()));
        columns.push(col);
    }
    Table::with_lineage(Schema::new(fields), columns, t.lineages().to_vec()).map_err(Into::into)
}

fn join(
    l: &Table,
    r: &Table,
    kind: JoinKind,
    on: &BoundExpr,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Table> {
    let schema = l.schema().join(r.schema());
    let mut columns: Vec<Column> =
        schema.fields().iter().map(|f| Column::with_capacity(f.data_type(), 0)).collect();
    let mut lineage: Vec<Vec<cda_dataframe::RowId>> = Vec::new();
    // Cache right rows to avoid re-extracting values in the inner loop.
    let right_rows: Vec<Vec<Value>> =
        (0..r.num_rows()).map(|i| r.row(i)).collect::<std::result::Result<_, _>>()?;
    for li in 0..l.num_rows() {
        let lrow = l.row(li)?;
        let mut matched = false;
        for (ri, rrow) in right_rows.iter().enumerate() {
            stats.join_pairs += 1;
            let mut full = lrow.clone();
            full.extend(rrow.iter().cloned());
            if on.eval(&full)?.as_bool() == Some(true) {
                matched = true;
                for (c, v) in full.into_iter().enumerate() {
                    columns[c].push(v)?;
                }
                if opts.track_lineage {
                    let mut lin = l.lineage(li)?.to_vec();
                    lin.extend_from_slice(r.lineage(ri)?);
                    lin.sort_unstable();
                    lin.dedup();
                    lineage.push(lin);
                } else {
                    lineage.push(Vec::new());
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            for (c, v) in lrow.into_iter().enumerate() {
                columns[c].push(v)?;
            }
            for col in columns.iter_mut().take(schema.len()).skip(l.num_columns()) {
                col.push(Value::Null)?;
            }
            lineage.push(if opts.track_lineage { l.lineage(li)?.to_vec() } else { Vec::new() });
        }
    }
    Table::with_lineage(schema, columns, lineage).map_err(Into::into)
}

fn aggregate(
    t: &Table,
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    schema: &Schema,
    opts: ExecOptions,
) -> Result<Table> {
    // Group rows by key values.
    let mut key_index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for rix in 0..t.num_rows() {
        let row = t.row(rix)?;
        let key: Vec<Value> =
            group_exprs.iter().map(|e| e.eval(&row)).collect::<Result<_>>()?;
        let g = *key_index.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(rix);
    }
    // A global aggregate over an empty input still yields one row.
    if groups.is_empty() && group_exprs.is_empty() {
        keys.push(Vec::new());
        groups.push(Vec::new());
    }
    let out_cols = group_exprs.len() + aggs.len();
    let mut per_col: Vec<Vec<Value>> = vec![Vec::with_capacity(groups.len()); out_cols];
    let mut lineage = Vec::with_capacity(groups.len());
    for (key, rows) in keys.iter().zip(&groups) {
        for (c, kv) in key.iter().enumerate() {
            per_col[c].push(kv.clone());
        }
        for (j, agg) in aggs.iter().enumerate() {
            let value = eval_aggregate(t, rows, agg)?;
            per_col[group_exprs.len() + j].push(value);
        }
        if opts.track_lineage {
            let mut lin = Vec::new();
            for &rix in rows {
                lin.extend_from_slice(t.lineage(rix)?);
            }
            lin.sort_unstable();
            lin.dedup();
            lineage.push(lin);
        } else {
            lineage.push(Vec::new());
        }
    }
    let mut columns = Vec::with_capacity(out_cols);
    let mut fields = Vec::with_capacity(out_cols);
    for (values, field) in per_col.into_iter().zip(schema.fields()) {
        let col = column_from_values(field.data_type(), values)?;
        fields.push(cda_dataframe::Field::new(field.name(), col.data_type()));
        columns.push(col);
    }
    Table::with_lineage(Schema::new(fields), columns, lineage).map_err(Into::into)
}

fn eval_aggregate(t: &Table, rows: &[usize], agg: &AggExpr) -> Result<Value> {
    let Some(arg) = &agg.arg else {
        return Ok(Value::Int(rows.len() as i64));
    };
    let mut vals = Vec::with_capacity(rows.len());
    for &rix in rows {
        let row = t.row(rix)?;
        vals.push(arg.eval(&row)?);
    }
    agg_over_values(agg.kind, &vals)
}

/// Apply an aggregate over already-evaluated argument values (nulls skipped).
pub fn agg_over_values(kind: AggKind, vals: &[Value]) -> Result<Value> {
    match kind {
        AggKind::Count => Ok(Value::Int(vals.iter().filter(|v| !v.is_null()).count() as i64)),
        AggKind::CountDistinct => {
            let distinct: std::collections::HashSet<&Value> =
                vals.iter().filter(|v| !v.is_null()).collect();
            Ok(Value::Int(distinct.len() as i64))
        }
        AggKind::Min | AggKind::Max => {
            let mut best: Option<&Value> = None;
            for v in vals.iter().filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let newer = match kind {
                            AggKind::Min => v.total_cmp(b) == std::cmp::Ordering::Less,
                            _ => v.total_cmp(b) == std::cmp::Ordering::Greater,
                        };
                        if newer {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        AggKind::Sum | AggKind::Avg | AggKind::StdDev => {
            let mut nums = Vec::with_capacity(vals.len());
            let mut all_int = true;
            for v in vals.iter().filter(|v| !v.is_null()) {
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                match v.as_f64() {
                    Some(x) => nums.push(x),
                    None => {
                        return Err(SqlError::Eval(format!(
                            "{} expects numeric values, got {v:?}",
                            kind.name()
                        )))
                    }
                }
            }
            if nums.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = nums.iter().sum();
            Ok(match kind {
                AggKind::Sum => {
                    if all_int {
                        Value::Int(sum as i64)
                    } else {
                        Value::Float(sum)
                    }
                }
                AggKind::Avg => Value::Float(sum / nums.len() as f64),
                AggKind::StdDev => {
                    let mean = sum / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / nums.len() as f64;
                    Value::Float(var.sqrt())
                }
                other => {
                    return Err(SqlError::Eval(format!(
                        "aggregate {} is not a numeric fold",
                        other.name()
                    )))
                }
            })
        }
    }
}

fn distinct(t: &Table, opts: ExecOptions) -> Result<Table> {
    let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut first_rows: Vec<usize> = Vec::new();
    let mut lineages: Vec<Vec<cda_dataframe::RowId>> = Vec::new();
    for rix in 0..t.num_rows() {
        let row = t.row(rix)?;
        match seen.get(&row) {
            Some(&g) => {
                if opts.track_lineage {
                    lineages[g].extend_from_slice(t.lineage(rix)?);
                }
            }
            None => {
                seen.insert(row, first_rows.len());
                first_rows.push(rix);
                lineages
                    .push(if opts.track_lineage { t.lineage(rix)?.to_vec() } else { Vec::new() });
            }
        }
    }
    let taken = t.take(&first_rows)?;
    for lin in &mut lineages {
        lin.sort_unstable();
        lin.dedup();
    }
    Table::with_lineage(taken.schema().clone(), taken.columns().to_vec(), lineages)
        .map_err(Into::into)
}

pub(crate) fn sort(t: &Table, keys: &[SortSpec]) -> Result<Table> {
    let kernel_keys: Vec<SortKey> = keys
        .iter()
        .map(|k| SortKey {
            column: k.column,
            order: if k.descending { SortOrder::Desc } else { SortOrder::Asc },
        })
        .collect();
    let idx = sort_indices(t, &kernel_keys)?;
    t.take(&idx).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Field, RowId};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let emp = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("sector", DataType::Str),
                Field::new("jobs", DataType::Int),
            ]),
            vec![
                Column::from_strs(&["ZH", "ZH", "GE", "GE", "VD"]),
                Column::from_strs(&["it", "finance", "it", "gov", "it"]),
                Column::from_ints(&[100, 200, 50, 80, 30]),
            ],
        )
        .unwrap();
        c.register("emp", emp).unwrap();
        let regions = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("region", DataType::Str),
            ]),
            vec![Column::from_strs(&["ZH", "GE"]), Column::from_strs(&["east", "west"])],
        )
        .unwrap();
        c.register("regions", regions).unwrap();
        c
    }

    fn rows(result: &QueryResult) -> Vec<Vec<Value>> {
        (0..result.table.num_rows()).map(|r| result.table.row(r).unwrap()).collect()
    }

    #[test]
    fn select_star() {
        let r = execute(&catalog(), "SELECT * FROM emp").unwrap();
        assert_eq!(r.table.num_rows(), 5);
        assert_eq!(r.table.num_columns(), 3);
        assert_eq!(r.stats.rows_scanned, 5);
    }

    #[test]
    fn filter_and_projection() {
        let r = execute(&catalog(), "SELECT canton, jobs FROM emp WHERE jobs > 60").unwrap();
        assert_eq!(
            rows(&r),
            vec![
                vec![Value::from("ZH"), Value::Int(100)],
                vec![Value::from("ZH"), Value::Int(200)],
                vec![Value::from("GE"), Value::Int(80)],
            ]
        );
    }

    #[test]
    fn filter_lineage_points_to_base_rows() {
        let c = catalog();
        let r = execute(&c, "SELECT canton FROM emp WHERE jobs = 80").unwrap();
        assert_eq!(r.table.num_rows(), 1);
        let lin = r.table.lineage(0).unwrap();
        let tag = c.get("emp").unwrap().tag;
        assert_eq!(lin, &[RowId::new(tag, 3)]);
    }

    #[test]
    fn expression_projection() {
        let r = execute(&catalog(), "SELECT jobs * 2 AS d, jobs / 8 FROM emp WHERE canton = 'VD'")
            .unwrap();
        assert_eq!(rows(&r), vec![vec![Value::Int(60), Value::Float(3.75)]]);
        assert_eq!(r.table.schema().field_at(0).unwrap().name(), "d");
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = execute(
            &catalog(),
            "SELECT canton, COUNT(*) AS n, SUM(jobs) AS total, AVG(jobs) AS mean \
             FROM emp GROUP BY canton ORDER BY total DESC",
        )
        .unwrap();
        assert_eq!(
            rows(&r),
            vec![
                vec![Value::from("ZH"), Value::Int(2), Value::Int(300), Value::Float(150.0)],
                vec![Value::from("GE"), Value::Int(2), Value::Int(130), Value::Float(65.0)],
                vec![Value::from("VD"), Value::Int(1), Value::Int(30), Value::Float(30.0)],
            ]
        );
    }

    #[test]
    fn aggregate_lineage_unions_group_rows() {
        let c = catalog();
        let r = execute(&c, "SELECT canton, SUM(jobs) FROM emp GROUP BY canton").unwrap();
        let tag = c.get("emp").unwrap().tag;
        // Find the ZH row
        let zh = (0..r.table.num_rows())
            .find(|&i| r.table.value(i, 0).unwrap() == Value::from("ZH"))
            .unwrap();
        assert_eq!(r.table.lineage(zh).unwrap(), &[RowId::new(tag, 0), RowId::new(tag, 1)]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let r = execute(&catalog(), "SELECT COUNT(*), SUM(jobs), MIN(jobs), MAX(jobs) FROM emp")
            .unwrap();
        assert_eq!(
            rows(&r),
            vec![vec![Value::Int(5), Value::Int(460), Value::Int(30), Value::Int(200)]]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let r = execute(&catalog(), "SELECT COUNT(*), SUM(jobs) FROM emp WHERE jobs > 999").unwrap();
        assert_eq!(rows(&r), vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn having_filters_groups() {
        let r = execute(
            &catalog(),
            "SELECT canton FROM emp GROUP BY canton HAVING SUM(jobs) > 100 ORDER BY canton",
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec![Value::from("GE")], vec![Value::from("ZH")]]);
    }

    #[test]
    fn inner_join() {
        let r = execute(
            &catalog(),
            "SELECT e.canton, r.region, e.jobs FROM emp e JOIN regions r ON e.canton = r.canton \
             WHERE e.sector = 'it' ORDER BY e.jobs DESC",
        )
        .unwrap();
        assert_eq!(
            rows(&r),
            vec![
                vec![Value::from("ZH"), Value::from("east"), Value::Int(100)],
                vec![Value::from("GE"), Value::from("west"), Value::Int(50)],
            ]
        );
    }

    #[test]
    fn join_lineage_unions_both_sides() {
        let c = catalog();
        let r = execute(
            &c,
            "SELECT e.canton FROM emp e JOIN regions r ON e.canton = r.canton WHERE e.jobs = 100",
        )
        .unwrap();
        let emp_tag = c.get("emp").unwrap().tag;
        let reg_tag = c.get("regions").unwrap().tag;
        let mut lin = r.table.lineage(0).unwrap().to_vec();
        lin.sort();
        assert_eq!(lin, vec![RowId::new(emp_tag, 0), RowId::new(reg_tag, 0)]);
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let r = execute(
            &catalog(),
            "SELECT e.canton, r.region FROM emp e LEFT JOIN regions r ON e.canton = r.canton \
             WHERE e.canton = 'VD'",
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec![Value::from("VD"), Value::Null]]);
    }

    #[test]
    fn distinct_dedups_and_merges_lineage() {
        let c = catalog();
        let r = execute(&c, "SELECT DISTINCT canton FROM emp ORDER BY canton").unwrap();
        assert_eq!(
            rows(&r),
            vec![vec![Value::from("GE")], vec![Value::from("VD")], vec![Value::from("ZH")]]
        );
        let tag = c.get("emp").unwrap().tag;
        // GE appears in base rows 2 and 3
        assert_eq!(r.table.lineage(0).unwrap(), &[RowId::new(tag, 2), RowId::new(tag, 3)]);
    }

    #[test]
    fn order_limit_offset() {
        let r = execute(&catalog(), "SELECT jobs FROM emp ORDER BY jobs LIMIT 2 OFFSET 1").unwrap();
        assert_eq!(rows(&r), vec![vec![Value::Int(50)], vec![Value::Int(80)]]);
    }

    #[test]
    fn order_by_hidden_key_dropped() {
        let r = execute(&catalog(), "SELECT canton FROM emp ORDER BY jobs DESC LIMIT 2").unwrap();
        assert_eq!(r.table.num_columns(), 1);
        assert_eq!(rows(&r), vec![vec![Value::from("ZH")], vec![Value::from("ZH")]]);
    }

    #[test]
    fn like_in_between_case_pipeline() {
        let r = execute(
            &catalog(),
            "SELECT canton, CASE WHEN jobs >= 100 THEN 'big' ELSE 'small' END AS size \
             FROM emp WHERE canton LIKE '_H' OR canton IN ('VD') ORDER BY jobs",
        )
        .unwrap();
        assert_eq!(
            rows(&r),
            vec![
                vec![Value::from("VD"), Value::from("small")],
                vec![Value::from("ZH"), Value::from("big")],
                vec![Value::from("ZH"), Value::from("big")],
            ]
        );
    }

    #[test]
    fn count_distinct_aggregate() {
        let r = execute(
            &catalog(),
            "SELECT COUNT(DISTINCT canton) AS c, COUNT(DISTINCT sector) AS s, COUNT(canton) AS n              FROM emp",
        )
        .unwrap();
        assert_eq!(
            rows(&r),
            vec![vec![Value::Int(3), Value::Int(3), Value::Int(5)]]
        );
        // grouped
        let r = execute(
            &catalog(),
            "SELECT canton, COUNT(DISTINCT sector) AS s FROM emp GROUP BY canton ORDER BY canton",
        )
        .unwrap();
        assert_eq!(
            rows(&r),
            vec![
                vec![Value::from("GE"), Value::Int(2)],
                vec![Value::from("VD"), Value::Int(1)],
                vec![Value::from("ZH"), Value::Int(2)],
            ]
        );
        // DISTINCT only valid for COUNT
        assert!(execute(&catalog(), "SELECT SUM(DISTINCT jobs) FROM emp").is_err());
    }

    #[test]
    fn stddev_aggregate() {
        let r = execute(&catalog(), "SELECT STDDEV(jobs) FROM emp WHERE canton = 'ZH'").unwrap();
        let v = r.table.value(0, 0).unwrap().as_f64().unwrap();
        assert!((v - 50.0).abs() < 1e-9);
    }

    #[test]
    fn optimizer_options_do_not_change_results() {
        let c = catalog();
        let sql = "SELECT e.canton, SUM(e.jobs) AS s FROM emp e JOIN regions r \
                   ON e.canton = r.canton WHERE e.jobs > 40 AND r.region = 'east' \
                   GROUP BY e.canton ORDER BY s DESC";
        let full = execute_with_options(&c, sql, ExecOptions::default()).unwrap();
        let naive = execute_with_options(
            &c,
            sql,
            ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None },
        )
        .unwrap();
        assert_eq!(rows(&full), rows(&naive));
        // pushdown must reduce join pairs
        assert!(full.stats.join_pairs < naive.stats.join_pairs);
    }

    #[test]
    fn lineage_tracking_can_be_disabled() {
        let c = catalog();
        let r = execute_with_options(
            &c,
            "SELECT canton, SUM(jobs) FROM emp GROUP BY canton",
            ExecOptions { rules: OptimizerRules::all(), track_lineage: false, vectorized: None },
        )
        .unwrap();
        assert!(r.table.lineage(0).unwrap().is_empty());
    }

    #[test]
    fn division_by_zero_surfaces_as_eval_error() {
        let e = execute(&catalog(), "SELECT jobs / 0 FROM emp");
        assert!(matches!(e, Err(SqlError::Eval(_))));
    }

    #[test]
    fn unknown_table_is_binding_error() {
        assert!(matches!(execute(&catalog(), "SELECT x FROM nope"), Err(SqlError::Binding(_))));
    }

    #[test]
    fn agg_over_values_edge_cases() {
        assert_eq!(agg_over_values(AggKind::Sum, &[]).unwrap(), Value::Null);
        assert_eq!(agg_over_values(AggKind::Count, &[Value::Null]).unwrap(), Value::Int(0));
        assert_eq!(
            agg_over_values(AggKind::Sum, &[Value::Int(1), Value::Float(0.5)]).unwrap(),
            Value::Float(1.5)
        );
        assert!(agg_over_values(AggKind::Avg, &[Value::from("x")]).is_err());
    }

    #[test]
    fn case_mixed_types_widens_column() {
        let r = execute(
            &catalog(),
            "SELECT CASE WHEN jobs > 90 THEN jobs ELSE 0.5 END AS v FROM emp ORDER BY 1",
        )
        .unwrap();
        // Planner guessed INT (first branch), executor widened to FLOAT.
        assert_eq!(r.table.schema().field_at(0).unwrap().data_type(), DataType::Float);
    }

    #[test]
    fn explain_plan_is_attached() {
        let r = execute(&catalog(), "SELECT canton FROM emp WHERE jobs > 60").unwrap();
        assert!(r.plan.explain().contains("Scan emp"));
    }

    /// A hand-built monitor for `SELECT jobs FROM emp WHERE jobs > 60`
    /// (optimized shape: Filter over a pruned Scan), with the given range on
    /// the filter's output column.
    fn monitor_for_filtered_jobs(lo: f64, hi: f64) -> DomainTree {
        use cda_dataframe::{ColDomain, Interval, NodeDomain, Nullness};
        let jobs = ColDomain {
            dtype: Some(DataType::Int),
            nullness: Nullness::NeverNull,
            range: Interval::new(lo, hi),
            strs: cda_dataframe::StrDomain::top(),
            values: None,
        };
        let scan = NodeDomain {
            cols: vec![ColDomain { range: Interval::new(30.0, 200.0), ..jobs.clone() }],
            rows_lo: 0,
            rows_hi: u64::MAX,
        };
        DomainTree {
            node: NodeDomain { cols: vec![jobs], rows_lo: 0, rows_hi: u64::MAX },
            children: vec![DomainTree::leaf(scan)],
        }
    }

    #[test]
    fn sanitizer_accepts_outputs_inside_their_domains() {
        let c = catalog();
        let select = parse("SELECT jobs FROM emp WHERE jobs > 60").unwrap();
        let plan = optimize(plan_select(&c, &select).unwrap(), OptimizerRules::all());
        let monitor = monitor_for_filtered_jobs(61.0, 200.0);
        for opts in [ExecOptions::default(), ExecOptions::vectorized()] {
            let r = execute_plan_checked(&c, &plan, opts, Some(&monitor)).unwrap();
            assert_eq!(r.table.num_rows(), 3);
        }
    }

    #[test]
    fn sanitizer_rejects_a_tampered_domain_on_both_engines() {
        let c = catalog();
        let select = parse("SELECT jobs FROM emp WHERE jobs > 60").unwrap();
        let plan = optimize(plan_select(&c, &select).unwrap(), OptimizerRules::all());
        // Deliberately-broken transfer function: claims the filter output is
        // bounded by 150, but row ZH/200 escapes it.
        let monitor = monitor_for_filtered_jobs(61.0, 150.0);
        for opts in [ExecOptions::default(), ExecOptions::vectorized()] {
            let err = execute_plan_checked(&c, &plan, opts, Some(&monitor)).unwrap_err();
            let msg = err.to_string();
            // The plan's root is the final projection of `jobs`; the escaped
            // value (ZH/200) is caught there.
            assert!(msg.contains("absint domain violation at Project"), "{msg}");
            assert!(msg.contains("outside abstract domain"), "{msg}");
        }
    }

    #[test]
    fn sanitizer_none_is_plain_execute_plan() {
        let c = catalog();
        let select = parse("SELECT jobs FROM emp WHERE jobs > 60").unwrap();
        let plan = optimize(plan_select(&c, &select).unwrap(), OptimizerRules::all());
        let plain = execute_plan(&c, &plan, ExecOptions::default()).unwrap();
        let checked =
            execute_plan_checked(&c, &plan, ExecOptions::default(), None).unwrap();
        assert_eq!(plain.table, checked.table);
        assert_eq!(plain.stats, checked.stats);
    }
}
