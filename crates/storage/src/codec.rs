//! Bounds-checked little-endian byte readers and writers.
//!
//! Every on-disk format in the workspace (page headers, directory entries,
//! and the domain codecs in `cda-core::durable`) is written with
//! [`ByteWriter`] and parsed with [`ByteReader`]. The reader never panics:
//! a truncated or oversized field surfaces as [`StorageError::Codec`], which
//! the recovery path treats the same as a torn page.

use crate::{Result, StorageError};

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` (little-endian two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a length-prefixed byte slice (`u32` length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no length prefix (fixed-layout formats).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append an optional string (presence byte + payload).
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked reader over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::Codec(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Codec(format!(
                "need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let s = self.take(8)?;
        Ok(i64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0/1 is a codec error.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Codec(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StorageError::Codec("invalid utf-8 string".into()))
    }

    /// Read an optional string (presence byte + payload).
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_scalars() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.bool(true);
        w.str("grüezi");
        w.bytes(&[1, 2, 3]);
        w.opt_str(None);
        w.opt_str(Some("x"));
        let buf = w.finish();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "grüezi");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x".into()));
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.u64(9);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(StorageError::Codec(_))));
    }

    #[test]
    fn oversized_length_prefix_is_a_codec_error() {
        let mut w = ByteWriter::new();
        w.u32(1_000_000); // claims a megabyte that is not there
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.bytes(), Err(StorageError::Codec(_))));
    }

    #[test]
    fn invalid_bool_is_a_codec_error() {
        let mut r = ByteReader::new(&[3]);
        assert!(matches!(r.bool(), Err(StorageError::Codec(_))));
    }
}
