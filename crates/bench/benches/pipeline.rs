//! Criterion bench for experiment E9: full conversation turns through the
//! compound system, per turn type, plus the soundness-layer cost knob.

use cda_testkit::bench::{BatchSize, Criterion};
use cda_testkit::{criterion_group, criterion_main};
use cda_core::demo::{demo_system, FIGURE1_TURNS};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_turn");
    group.sample_size(20);

    // fresh system per iteration so the dialogue state is identical
    group.bench_function("discovery_turn", |b| {
        b.iter_batched(
            || demo_system(1),
            |mut cda| cda.process(FIGURE1_TURNS[0]),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("seasonality_turn", |b| {
        b.iter_batched(
            || {
                let mut cda = demo_system(1);
                for t in &FIGURE1_TURNS[..3] {
                    cda.process(t);
                }
                cda
            },
            |mut cda| cda.process(FIGURE1_TURNS[3]),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("nl2sql_turn_k7", |b| {
        b.iter_batched(
            || demo_system(1),
            |mut cda| cda.process("What is the total employees in employment_by_type per canton?"),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("nl2sql_turn_k1", |b| {
        b.iter_batched(
            || {
                let mut cda = demo_system(1);
                cda.config.uq_samples = 1;
                cda
            },
            |mut cda| cda.process("What is the total employees in employment_by_type per canton?"),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("full_figure1_conversation", |b| {
        b.iter_batched(
            || demo_system(1),
            |mut cda| {
                for t in FIGURE1_TURNS {
                    cda.process(t);
                }
                cda.lineage.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
