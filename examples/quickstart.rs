//! Quickstart: replay the paper's Figure-1 conversation end-to-end.
//!
//! Run with: `cargo run -p cda-core --example quickstart`
//!
//! The four scripted user turns exercise all five reliability properties:
//! grounded discovery (P1/P2), provenance-cited description (P3/P4),
//! selection with guidance (P5), and the seasonality insight with
//! confidence, sufficiency caveat, and generated code (P3/P4).

use cda_core::demo::{demo_session, FIGURE1_TURNS};

fn main() {
    let mut cda = demo_session(42);
    println!("=== Reliable Conversational Data Analytics — Figure 1 replay ===\n");
    for (i, user_turn) in FIGURE1_TURNS.iter().enumerate() {
        println!("User ({}): {user_turn}", i + 1);
        let answer = cda.process(user_turn);
        println!("System:\n{}", indent(&answer.render()));
        if let Some(explanation) = &answer.explanation {
            println!("  -- explanation --\n{}", indent(&explanation.render()));
        }
        println!();
    }
    println!("=== Session lineage (where-from, all components) ===");
    println!("{}", cda.lineage());
    println!("=== Conversation graph (with alternatives) ===");
    println!("{}", cda.conversation());
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("  {l}")).collect::<Vec<_>>().join("\n")
}
