//! # cda-soundness
//!
//! Property **P4 Soundness**: "the system should be able to judge whether an
//! answer is, with sufficiently high probability, correct or not, and
//! provide evidence of it", and "refrain from producing answers when unable
//! to produce any answer with sufficient certainty".
//!
//! * [`consistency`] — consistency-based black-box uncertainty
//!   quantification for text-to-SQL (the paper's reference \[7\],
//!   Bhattacharjya et al., NeurIPS 2024): sample k candidate programs,
//!   cluster them by **execution equivalence**, and use the majority
//!   cluster's mass as the confidence of its representative;
//! * [`calibration`] — ECE, Brier score, reliability bins, and AUROC — the
//!   metrics experiment E5 reports when comparing consistency-UQ against
//!   the LM's own (overconfident) token-probability confidence;
//! * [`selective`] — selective answering: confidence-thresholded abstention
//!   with risk–coverage analysis (experiment E6);
//! * [`verify`] — execution-based verification: a candidate SQL is *correct*
//!   iff its result table equals the gold program's result (modulo row
//!   order), the standard "execution accuracy" of NL2SQL benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod consistency;
pub mod selective;
pub mod verify;

pub use calibration::{auroc, brier_score, expected_calibration_error, log_loss, perplexity, ReliabilityBin};
pub use consistency::{
    consistency_confidence, consistency_confidence_with, ConsistencyReport, ConsistencyUq,
};
pub use selective::{risk_coverage_curve, SelectivePolicy};
pub use verify::{execution_accuracy, tables_equal_unordered};

use std::fmt;

/// Errors from soundness machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SoundnessError {
    /// No samples were provided where at least one is required.
    NoSamples,
    /// Calibration input vectors disagreed in length.
    LengthMismatch,
}

impl fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSamples => f.write_str("at least one sample is required"),
            Self::LengthMismatch => f.write_str("confidence and correctness vectors differ in length"),
        }
    }
}

impl std::error::Error for SoundnessError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SoundnessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SoundnessError::NoSamples.to_string().contains("sample"));
    }
}
