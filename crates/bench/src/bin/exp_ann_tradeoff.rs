//! **E1** — P1 efficiency: latency/recall trade-off of the index families.
//!
//! Reproduces the paper's claim that existing retrieval methods are "either
//! fast and do not provide guarantees, or provide quality guarantees and are
//! relatively slow", and that a progressive index with guarantees can beat
//! exact scan. Expected shape: exact = recall 1.0, slowest full-scan cost;
//! IVF/HNSW/LSH = fast, recall < 1 without guarantees; progressive-exact =
//! recall 1.0 with (often far) fewer distance evaluations; progressive-δ =
//! recall ≥ 1−δ, cheaper still.

use cda_bench::{f, header, mean, row, timed};
use cda_vector::eval::{ground_truth, recall_at_k};
use cda_vector::exact::ExactIndex;
use cda_vector::hnsw::{HnswIndex, HnswParams};
use cda_vector::ivf::IvfIndex;
use cda_vector::lsh::{LshIndex, LshParams};
use cda_vector::progressive::{GuaranteeMode, ProgressiveIndex};
use cda_vector::{Neighbor, VectorSet};

const K: usize = 10;
const QUERIES: usize = 50;

fn main() {
    header("E1", "ANN latency/recall trade-off (who has guarantees, who is fast)");
    for (n, dim, clusters) in [(20_000usize, 32usize, 40usize), (50_000, 64, 60)] {
        println!("\ndataset: n={n} d={dim} ({clusters} gaussian clusters), k={K}, {QUERIES} queries");
        row(&[
            "method".into(),
            "recall@10".into(),
            "avg dist evals".into(),
            "avg query time".into(),
            "guarantee".into(),
        ]);
        let (data, _) = VectorSet::gaussian_clusters(n, dim, clusters, 0.15, 7).unwrap();
        let queries = data.queries_near(QUERIES, 0.05, 11);
        let truth = ground_truth(&data, &queries, K);

        // exact
        let exact = ExactIndex::build(&data);
        run(
            "exact",
            "exact",
            &data,
            &queries,
            &truth,
            |q| exact.search_with_stats(&data, q, K),
        );

        // IVF at two probe levels
        let ivf = IvfIndex::build(&data, 64, 3);
        for nprobe in [2usize, 8] {
            let ivf = ivf.clone().with_nprobe(nprobe);
            run(
                &format!("ivf(nprobe={nprobe})"),
                "none",
                &data,
                &queries,
                &truth,
                |q| ivf.search_with_stats(&data, q, K),
            );
        }

        // HNSW at two beam widths
        let hnsw = HnswIndex::build(&data, HnswParams { m: 12, ef_construction: 80, ef_search: 0, seed: 5 });
        for ef in [20usize, 80] {
            run(
                &format!("hnsw(ef={ef})"),
                "none",
                &data,
                &queries,
                &truth,
                |q| hnsw.search_with_stats(&data, q, K, ef),
            );
        }

        // LSH
        let lsh = LshIndex::build(&data, LshParams { bits: 16, tables: 8, seed: 9 });
        run("lsh(16x8)", "distributional", &data, &queries, &truth, |q| {
            lsh.search_with_stats(&data, q, K)
        });

        // progressive: deterministic + probabilistic
        let prog = ProgressiveIndex::build(&data, 64, 60, K, 3);
        run("prog-exact", "per-query exact", &data, &queries, &truth, |q| {
            prog.search_mode(&data, q, K, GuaranteeMode::Deterministic)
        });
        for delta in [0.1f64, 0.25] {
            run(
                &format!("prog(d={delta})"),
                &format!("P(exact)>={}", 1.0 - delta),
                &data,
                &queries,
                &truth,
                |q| prog.search_mode(&data, q, K, GuaranteeMode::Probabilistic { delta }),
            );
        }
        for epsilon in [0.2f64, 0.5] {
            run(
                &format!("prog(e={epsilon})"),
                &format!("kth<={}x true", 1.0 + epsilon),
                &data,
                &queries,
                &truth,
                |q| prog.search_mode(&data, q, K, GuaranteeMode::Approximate { epsilon }),
            );
        }

        // build cost and memory footprint (the Evaluation paragraph's
        // "memory consumption" metric)
        println!("
build time and index memory:");
        row(&["method".into(), "build time".into(), "index bytes".into()]);
        let (ivf2, t_ivf) = cda_bench::timed(|| IvfIndex::build(&data, 64, 3));
        row(&["ivf(64)".into(), cda_bench::us(t_ivf), format!("{}", ivf2.heap_bytes())]);
        let (hnsw2, t_hnsw) = cda_bench::timed(|| {
            HnswIndex::build(&data, HnswParams { m: 12, ef_construction: 80, ef_search: 0, seed: 5 })
        });
        row(&["hnsw(m=12)".into(), cda_bench::us(t_hnsw), format!("{}", hnsw2.heap_bytes())]);
        let (lsh2, t_lsh) =
            cda_bench::timed(|| LshIndex::build(&data, LshParams { bits: 16, tables: 8, seed: 9 }));
        row(&["lsh(16x8)".into(), cda_bench::us(t_lsh), format!("{}", lsh2.heap_bytes())]);
        let (prog2, t_prog) = cda_bench::timed(|| ProgressiveIndex::build(&data, 64, 60, K, 3));
        row(&["progressive(64)".into(), cda_bench::us(t_prog), format!("{}", prog2.heap_bytes())]);
    }
}

fn run(
    name: &str,
    guarantee: &str,
    data: &VectorSet,
    queries: &[Vec<f32>],
    truth: &[Vec<Neighbor>],
    mut search: impl FnMut(&[f32]) -> (Vec<Neighbor>, cda_vector::SearchStats),
) {
    let mut results = Vec::with_capacity(queries.len());
    let mut evals = Vec::with_capacity(queries.len());
    let (_, elapsed) = timed(|| {
        for q in queries {
            let (hits, stats) = search(q);
            evals.push(stats.distance_evals as f64);
            results.push(hits);
        }
    });
    let recall = recall_at_k(truth, &results, K);
    let _ = data;
    row(&[
        name.into(),
        f(recall),
        format!("{:.0}", mean(&evals)),
        cda_bench::us(elapsed / queries.len() as u32),
        guarantee.into(),
    ]);
}
