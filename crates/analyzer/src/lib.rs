//! Static analysis for the CDA stack — layer-crossing soundness checks that
//! run *before* anything executes.
//!
//! Two independent passes live here:
//!
//! * [`sqlcheck`] — a semantic lint/typecheck over parsed SQL ASTs and bound
//!   logical plans (`cda_sql::plan::Plan`). It detects, without touching a
//!   single row, the query shapes that execution-based verification
//!   (`cda-soundness`) would only discover after paying full execution cost:
//!   unknown tables/columns, type misuse, GROUP BY violations, predicates
//!   that constant-fold to FALSE (provably-empty results), tautological
//!   filters, division by a literal zero, accidental cartesian joins,
//!   out-of-range column references, and `LIMIT 0`. Each finding carries a
//!   stable code (`A001`…), a severity, and an NL rendering for the answer
//!   annotation layer. The paper's Soundness property (P4) names parsing and
//!   constrained decoding as inference-time controls; `sqlcheck` is the
//!   static half of that control, wired in as a pre-execution gate for the
//!   rejection sampler and the dialogue loop (experiment E13 measures the
//!   catch rate and the wall-clock saved).
//! * [`repolint`] — a dependency-free source scanner enforcing the repo
//!   conventions of DESIGN.md §6 (no `unsafe`, no `unwrap()`/`panic!` on
//!   non-test paths, module docs, crate-root lint headers, no deprecated-item
//!   escapes on product paths), run by `ci.sh` via the `repolint` binary.
//!
//! A third pass, [`repair`], closes the diagnosis→generation loop: it
//! translates gate findings into structured [`RepairHint`]s (nearest schema
//! name by edit distance, expected type, `LIMIT` injection) that the
//! constrained decoder in `cda-nlmodel` applies before resampling.
//!
//! A fifth pass, [`absint`], is a fixpoint abstract interpreter over bound
//! plans: per node and per column it computes a product lattice of 3VL
//! null-ness, numeric intervals, string length/prefix bounds, finite value
//! sets (seeded from literals and catalog min/max/NDV statistics), and
//! row-count bounds. Its facts feed four consumers: sqlcheck codes
//! A015–A018 (provably-empty result, data-grounded tautology,
//! provably-NULL output column, provable runtime error), interval
//! sharpening of [`cardest`] bounds, a domain-disjointness fast path in
//! [`equiv`], and the **sanitizer** in `cda-sql` that re-checks every
//! materialized node output against its static domain at runtime
//! (experiment E18; DESIGN.md §13).
//!
//! A sixth pass, [`effects`], is a static read/write-set analysis over
//! bound plans and DML statements: per statement it derives
//! `(table, columns)` read and write sets (sharpened by [`absint`] — a
//! provably-empty WHERE makes a write a provable no-op, interval analysis
//! bounds affected-row counts). It powers the DML soundness gate (sqlcheck
//! A019–A023), provably-precise semantic-cache invalidation in `cda-core`,
//! effect-overlap write serialization in `cda-server`, and the runtime
//! effect sanitizer (`cda_sql::WriteGuard`) behind `CdaConfig::effect_check`.
//!
//! A fourth pass, [`equiv`], decides whether two bound plans *mean the same
//! thing*: a canonicalization pipeline hashes every plan into a stable
//! [`PlanFingerprint`], and a bounded refutation search over generated
//! tables settles (or honestly declines to settle) the cases fingerprints
//! cannot. It powers the differential certifier for `sql::optimizer`
//! rewrites ([`certify_optimizer`], surfacing `A014` findings), the
//! semantic answer cache in `cda-core`, and equivalence-aware consistency
//! UQ in `cda-soundness` (experiment E16 measures all three).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cardest;
pub mod effects;
pub mod equiv;
pub mod repair;
pub mod repolint;
pub mod sqlcheck;

pub use absint::{abs_eval, abs_truth, analyze, domain_tree, row_bounds, AbsTruth, Analysis};
pub use effects::{dml_effects, plan_effects, plan_reads, statement_effects, ColumnSet, EffectSet};
pub use cardest::{estimate, q_error, CardEstimate, Statistics, TableStatistics};
pub use equiv::{
    certify_optimizer, Counterexample, EquivEngine, EquivReport, EquivResult, PlanFingerprint,
    RuleCheck,
};
pub use repair::{apply_hints, edit_distance, nearest_name, repair_hints, RepairHint};
pub use sqlcheck::{Analyzer, Code, Finding, RenderOpts, Report, Severity};
