//! The session query log — itself a data source (layer ⓓ).
//!
//! The paper: "the system will access documents and text, which may include
//! past conversations between the user and the system, and query logs." The
//! [`QueryLog`] records every turn (utterance, intent, executed code,
//! outcome, confidence), can be **queried with SQL like any other dataset**
//! (it renders itself as a table registered in a catalog), and feeds the
//! bias screen of [`cda_nlmodel::bias`].

use cda_dataframe::{Column, DataType, Field, Schema, Table};

/// Outcome class of a logged turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedOutcome {
    /// The system answered.
    Answered,
    /// The system asked a clarification question.
    Clarified,
    /// The system abstained.
    Abstained,
}

impl LoggedOutcome {
    /// Stable label used in the log table.
    pub fn label(self) -> &'static str {
        match self {
            LoggedOutcome::Answered => "answered",
            LoggedOutcome::Clarified => "clarified",
            LoggedOutcome::Abstained => "abstained",
        }
    }
}

/// One logged turn.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Turn index.
    pub turn: usize,
    /// The user utterance.
    pub utterance: String,
    /// Classified intent label.
    pub intent: String,
    /// Executed SQL/code, when any ran.
    pub code: Option<String>,
    /// Outcome class.
    pub outcome: LoggedOutcome,
    /// Confidence attached to the answer, when any.
    pub confidence: Option<f64>,
}

/// The append-only session query log.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    entries: Vec<LogEntry>,
}

impl QueryLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one entry.
    pub fn record(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// The entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of logged turns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of answered turns (1.0 for the empty log).
    pub fn answer_rate(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        self.entries.iter().filter(|e| e.outcome == LoggedOutcome::Answered).count() as f64
            / self.entries.len() as f64
    }

    /// The utterance texts (the corpus handed to the bias screen).
    pub fn utterances(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.utterance.as_str()).collect()
    }

    /// Render the log as a queryable table: `(turn, utterance, intent,
    /// outcome, confidence)` — registerable in a catalog like any dataset.
    pub fn to_table(&self) -> Table {
        let turns: Vec<i64> = self.entries.iter().map(|e| e.turn as i64).collect();
        let utterances: Vec<String> =
            self.entries.iter().map(|e| e.utterance.clone()).collect();
        let intents: Vec<String> = self.entries.iter().map(|e| e.intent.clone()).collect();
        let outcomes: Vec<String> =
            self.entries.iter().map(|e| e.outcome.label().to_owned()).collect();
        let confidences: Vec<Option<f64>> =
            self.entries.iter().map(|e| e.confidence).collect();
        Table::from_columns(
            Schema::new(vec![
                Field::new("turn", DataType::Int),
                Field::new("utterance", DataType::Str),
                Field::new("intent", DataType::Str),
                Field::new("outcome", DataType::Str),
                Field::new("confidence", DataType::Float),
            ]),
            vec![
                Column::from_ints(&turns),
                Column::from_strings(utterances),
                Column::from_strings(intents),
                Column::from_strings(outcomes),
                Column::from_opt_floats(&confidences),
            ],
        )
        .expect("schema matches columns") // lint: allow(R002) built together above
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_sql::{execute, Catalog};

    fn sample() -> QueryLog {
        let mut log = QueryLog::new();
        log.record(LogEntry {
            turn: 0,
            utterance: "overview of the workforce".into(),
            intent: "dataset-discovery".into(),
            code: None,
            outcome: LoggedOutcome::Clarified,
            confidence: Some(0.88),
        });
        log.record(LogEntry {
            turn: 1,
            utterance: "total employees per canton".into(),
            intent: "analysis".into(),
            code: Some("SELECT ...".into()),
            outcome: LoggedOutcome::Answered,
            confidence: Some(0.86),
        });
        log.record(LogEntry {
            turn: 2,
            utterance: "something impossible".into(),
            intent: "analysis".into(),
            code: None,
            outcome: LoggedOutcome::Abstained,
            confidence: None,
        });
        log
    }

    #[test]
    fn recording_and_rates() {
        let log = sample();
        assert_eq!(log.len(), 3);
        assert!((log.answer_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(QueryLog::new().answer_rate(), 1.0);
        assert_eq!(log.utterances().len(), 3);
    }

    #[test]
    fn log_is_sql_queryable() {
        let log = sample();
        let mut catalog = Catalog::new();
        catalog.register("query_log", log.to_table()).unwrap();
        let r = execute(
            &catalog,
            "SELECT outcome, COUNT(*) AS n FROM query_log GROUP BY outcome ORDER BY outcome",
        )
        .unwrap();
        assert_eq!(r.table.num_rows(), 3);
        // NULL confidence survives the round trip
        let r = execute(&catalog, "SELECT COUNT(confidence) FROM query_log").unwrap();
        assert_eq!(r.table.value(0, 0).unwrap(), cda_dataframe::Value::Int(2));
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(LoggedOutcome::Answered.label(), "answered");
        assert_eq!(LoggedOutcome::Abstained.label(), "abstained");
    }
}
