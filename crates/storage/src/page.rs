//! Fixed-size checksummed pages.
//!
//! Every page on disk is exactly [`PAGE_SIZE`] bytes: an 8-byte FNV-1a
//! checksum over the payload, then the payload itself. A page is sealed
//! (checksum stamped) immediately before it is handed to the disk manager
//! and verified immediately after it is read back, so a torn or bit-rotted
//! page is always *detected* — the commit protocol in [`crate::file`] turns
//! detection into recovery by never letting the last committed state share
//! pages with in-flight writes.

use crate::{fnv1a, Result, StorageError};

/// Size of every on-disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of each page reserved for the checksum header.
pub const PAGE_HEADER: usize = 8;

/// Payload capacity of one page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// Identifier of a page: its index in the backing file.
pub type PageId = u64;

/// One in-memory page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Vec<u8>,
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl Page {
    /// An all-zero page (valid payload of zeros once sealed).
    #[must_use]
    pub fn zeroed() -> Self {
        Self { bytes: vec![0; PAGE_SIZE] }
    }

    /// Wrap raw bytes read from disk. Length must be exactly [`PAGE_SIZE`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image of {} bytes (want {PAGE_SIZE})",
                bytes.len()
            )));
        }
        Ok(Self { bytes })
    }

    /// Build a page around a payload (at most [`PAGE_PAYLOAD`] bytes) and
    /// seal it.
    pub fn from_payload(payload: &[u8]) -> Result<Self> {
        if payload.len() > PAGE_PAYLOAD {
            return Err(StorageError::Corrupt(format!(
                "payload of {} bytes exceeds page capacity {PAGE_PAYLOAD}",
                payload.len()
            )));
        }
        let mut p = Self::zeroed();
        p.bytes[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
        p.seal();
        Ok(p)
    }

    /// The full page image (header + payload).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The payload region (everything after the checksum header).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.bytes[PAGE_HEADER..]
    }

    /// Mutable payload region. Callers must [`Page::seal`] before the page
    /// is written out.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[PAGE_HEADER..]
    }

    /// Stamp the checksum header from the current payload.
    pub fn seal(&mut self) {
        let sum = fnv1a(&self.bytes[PAGE_HEADER..]);
        self.bytes[..PAGE_HEADER].copy_from_slice(&sum.to_le_bytes());
    }

    /// True if the checksum header matches the payload.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        let mut hdr = [0u8; PAGE_HEADER];
        hdr.copy_from_slice(&self.bytes[..PAGE_HEADER]);
        u64::from_le_bytes(hdr) == fnv1a(&self.bytes[PAGE_HEADER..])
    }

    /// Error with [`StorageError::Corrupt`] unless the checksum matches.
    pub fn verify(&self, pid: PageId) -> Result<()> {
        if self.is_sealed() {
            Ok(())
        } else {
            Err(StorageError::Corrupt(format!("checksum mismatch on page {pid}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_page_verifies_and_round_trips_payload() {
        let p = Page::from_payload(b"hello pages").unwrap();
        p.verify(3).unwrap();
        assert_eq!(&p.payload()[..11], b"hello pages");
        assert_eq!(p.as_bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn single_flipped_bit_is_detected() {
        let p = Page::from_payload(b"stable").unwrap();
        let mut raw = p.as_bytes().to_vec();
        raw[PAGE_HEADER + 2] ^= 0x40;
        let torn = Page::from_bytes(raw).unwrap();
        assert!(matches!(torn.verify(0), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn oversized_payload_rejected() {
        let big = vec![1u8; PAGE_PAYLOAD + 1];
        assert!(Page::from_payload(&big).is_err());
    }

    #[test]
    fn wrong_length_image_rejected() {
        assert!(Page::from_bytes(vec![0; PAGE_SIZE - 1]).is_err());
    }

    #[test]
    fn reseal_after_payload_edit() {
        let mut p = Page::from_payload(b"v1").unwrap();
        p.payload_mut()[0] = b'V';
        assert!(!p.is_sealed());
        p.seal();
        assert!(p.is_sealed());
    }
}
