//! Bias screening of conversation logs (Sec. 3.2, Grounding).
//!
//! The paper: "the system needs to counteract the effect of any bias present
//! in these logs … We propose identifying such cases using approaches such
//! as CADS (Corpus Assisted Discourse Analysis) and sentiment analysis",
//! with "automatic methods for, at least partial, output evaluation".
//!
//! Two transparent instruments, in the corpus-linguistics tradition the
//! paper cites:
//!
//! * [`sentiment_score`] — a lexicon-based polarity score with negation
//!   handling, the classic building block of sentiment analysis \[53\];
//! * [`keyness`] — CADS-style keyness analysis: log-odds ratios (with
//!   Haldane–Anscombe smoothing) of word frequencies between a target
//!   corpus and a reference corpus, surfacing the terms that
//!   over-associate with a group mention — the quantitative half of the
//!   quant/qual workflow the paper describes;
//! * [`BiasScreen`] — combines both: flags group mentions whose co-occurring
//!   sentiment is significantly more negative than the corpus baseline.

use crate::Result;
use cda_kg::vocab::tokenize;
use std::collections::HashMap;

const POSITIVE: &[&str] = &[
    "good", "great", "excellent", "reliable", "skilled", "strong", "successful", "honest",
    "productive", "qualified", "competent", "diligent", "trustworthy", "capable", "innovative",
];
const NEGATIVE: &[&str] = &[
    "bad", "poor", "lazy", "unreliable", "weak", "criminal", "dishonest", "incompetent",
    "unqualified", "dangerous", "inferior", "useless", "corrupt", "violent", "stupid",
];
const NEGATIONS: &[&str] = &["not", "no", "never", "hardly", "without"];

/// Lexicon-based sentiment of a text in `[-1, 1]` (0 = neutral). A negation
/// token flips the polarity of the following sentiment word.
pub fn sentiment_score(text: &str) -> f64 {
    let tokens = tokenize(text);
    let mut score = 0.0f64;
    let mut hits = 0usize;
    let mut negated = false;
    for t in &tokens {
        if NEGATIONS.contains(&t.as_str()) {
            negated = true;
            continue;
        }
        let polarity = if POSITIVE.contains(&t.as_str()) {
            Some(1.0)
        } else if NEGATIVE.contains(&t.as_str()) {
            Some(-1.0)
        } else {
            None
        };
        if let Some(p) = polarity {
            score += if negated { -p } else { p };
            hits += 1;
        }
        negated = false;
    }
    if hits == 0 {
        0.0
    } else {
        (score / hits as f64).clamp(-1.0, 1.0)
    }
}

/// One keyness result: a term over-represented in the target corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyTerm {
    /// The term.
    pub term: String,
    /// Smoothed log-odds ratio (positive = over-represented in target).
    pub log_odds: f64,
    /// Occurrences in the target corpus.
    pub target_count: usize,
    /// Occurrences in the reference corpus.
    pub reference_count: usize,
}

/// CADS-style keyness: terms ranked by smoothed log-odds of appearing in
/// `target` vs `reference`. Only terms with `min_count` target occurrences
/// are reported.
pub fn keyness(target: &[&str], reference: &[&str], min_count: usize) -> Vec<KeyTerm> {
    let count = |texts: &[&str]| -> (HashMap<String, usize>, usize) {
        let mut m: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for t in texts {
            for tok in tokenize(t) {
                *m.entry(tok).or_insert(0) += 1;
                total += 1;
            }
        }
        (m, total)
    };
    let (tc, t_total) = count(target);
    let (rc, r_total) = count(reference);
    let mut out: Vec<KeyTerm> = tc
        .iter()
        .filter(|(_, &c)| c >= min_count.max(1))
        .map(|(term, &c)| {
            let r = rc.get(term).copied().unwrap_or(0);
            // Haldane–Anscombe smoothing (+0.5 everywhere)
            let odds_t = (c as f64 + 0.5) / (t_total as f64 - c as f64 + 0.5);
            let odds_r = (r as f64 + 0.5) / (r_total.max(1) as f64 - r as f64 + 0.5);
            KeyTerm {
                term: term.clone(),
                log_odds: (odds_t / odds_r).ln(),
                target_count: c,
                reference_count: r,
            }
        })
        .collect();
    out.sort_by(|a, b| b.log_odds.partial_cmp(&a.log_odds).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// A flagged group-association finding.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasFinding {
    /// The monitored group term.
    pub group: String,
    /// Mean sentiment of log entries mentioning the group.
    pub group_sentiment: f64,
    /// Mean sentiment of the whole corpus.
    pub baseline_sentiment: f64,
    /// Negative terms that over-associate with the group (keyness > 0).
    pub associated_negative_terms: Vec<String>,
    /// Number of log entries mentioning the group.
    pub mentions: usize,
}

/// Screens conversation logs for biased associations with monitored groups.
#[derive(Debug, Clone, Default)]
pub struct BiasScreen {
    groups: Vec<String>,
    /// Minimum sentiment gap (baseline − group) before flagging.
    pub sentiment_gap: f64,
    /// Minimum mentions before a group is evaluated at all.
    pub min_mentions: usize,
}

impl BiasScreen {
    /// Monitor the given group terms.
    pub fn new(groups: Vec<&str>) -> Self {
        Self {
            groups: groups.into_iter().map(str::to_owned).collect(),
            sentiment_gap: 0.3,
            min_mentions: 3,
        }
    }

    /// Screen a log of utterances; returns findings for groups whose
    /// co-occurring language is significantly more negative than baseline.
    pub fn screen(&self, log: &[&str]) -> Result<Vec<BiasFinding>> {
        let baseline =
            log.iter().map(|t| sentiment_score(t)).sum::<f64>() / log.len().max(1) as f64;
        let mut findings = Vec::new();
        for group in &self.groups {
            let mentioning: Vec<&str> = log
                .iter()
                .copied()
                .filter(|t| tokenize(t).contains(group))
                .collect();
            if mentioning.len() < self.min_mentions {
                continue;
            }
            let group_sentiment = mentioning.iter().map(|t| sentiment_score(t)).sum::<f64>()
                / mentioning.len() as f64;
            if baseline - group_sentiment < self.sentiment_gap {
                continue;
            }
            let rest: Vec<&str> = log
                .iter()
                .copied()
                .filter(|t| !tokenize(t).contains(group))
                .collect();
            let associated_negative_terms: Vec<String> = keyness(&mentioning, &rest, 2)
                .into_iter()
                .filter(|k| k.log_odds > 0.0 && NEGATIVE.contains(&k.term.as_str()))
                .map(|k| k.term)
                .collect();
            findings.push(BiasFinding {
                group: group.clone(),
                group_sentiment,
                baseline_sentiment: baseline,
                associated_negative_terms,
                mentions: mentioning.len(),
            });
        }
        Ok(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_polarity_and_negation() {
        assert!(sentiment_score("the skilled and reliable workforce") > 0.5);
        assert!(sentiment_score("lazy and unreliable") < -0.5);
        assert!(sentiment_score("not reliable at all") < 0.0);
        assert!(sentiment_score("never lazy") > 0.0);
        assert_eq!(sentiment_score("the canton of zurich"), 0.0);
    }

    #[test]
    fn keyness_finds_overrepresented_terms() {
        let target = ["lazy workers again", "lazy and slow service", "so lazy today"];
        let reference = ["great workers", "fine service today", "workers did well"];
        let keys = keyness(&target, &reference, 2);
        assert_eq!(keys.first().map(|k| k.term.as_str()), Some("lazy"));
        assert!(keys[0].log_odds > 1.0);
        assert_eq!(keys[0].target_count, 3);
        assert_eq!(keys[0].reference_count, 0);
    }

    #[test]
    fn keyness_min_count_filters() {
        let keys = keyness(&["one two", "two"], &["three"], 2);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].term, "two");
    }

    #[test]
    fn screen_flags_biased_group_language() {
        let screen = BiasScreen::new(vec!["foreigners"]);
        let log: Vec<&str> = vec![
            "the foreigners are lazy and unreliable",
            "foreigners are criminal",
            "those lazy foreigners again",
            "the workforce is skilled and productive",
            "excellent and reliable employment data",
            "the cantons report strong numbers",
        ];
        let findings = screen.screen(&log).unwrap();
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.group, "foreigners");
        assert!(f.group_sentiment < f.baseline_sentiment);
        assert!(f.associated_negative_terms.contains(&"lazy".to_owned()));
        assert_eq!(f.mentions, 3);
    }

    #[test]
    fn screen_ignores_neutral_groups_and_rare_mentions() {
        let screen = BiasScreen::new(vec!["students", "pilots"]);
        let log: Vec<&str> = vec![
            "students are skilled and diligent",
            "the students did excellent work",
            "students remain productive",
            "pilots are lazy", // only one mention: below min_mentions
            "great weather today",
        ];
        let findings = screen.screen(&log).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }
}
