//! Abstract syntax tree for the supported SQL subset.

use cda_dataframe::kernels::AggKind;
use cda_dataframe::Value;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// SQL rendering of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }

    /// True for comparison operators (result is BOOL).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
        )
    }
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified: `table.column` or `column`.
    Column {
        /// Optional table/alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary negation (`-x`).
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `CASE WHEN cond THEN val [WHEN ...] [ELSE val] END`.
    Case {
        /// (condition, result) arms.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE result.
        else_expr: Option<Box<Expr>>,
    },
    /// Aggregate call. `arg == None` encodes `COUNT(*)`.
    Aggregate {
        /// Aggregate kind.
        kind: AggKind,
        /// Argument expression (None for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: column reference without qualifier.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column { table: None, name: name.into() }
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Literal(v.into())
    }

    /// Convenience: binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Self {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => left.contains_aggregate() || right.contains_aggregate(),
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Case { branches, else_expr } => {
                branches.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }

    /// Collect all column references into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column { table, name } => out.push((table, name)),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "({expr} {}BETWEEN {low} AND {high})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE '{pattern}')", if *negated { "NOT " } else { "" })
            }
            Expr::Case { branches, else_expr } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Aggregate { kind, arg } => match (kind, arg) {
                (AggKind::CountDistinct, Some(a)) => write!(f, "COUNT(DISTINCT {a})"),
                (_, Some(a)) => write!(f, "{}({a})", kind.name()),
                (_, None) => write!(f, "{}(*)", kind.name()),
            },
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of all tables in scope.
    Wildcard,
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A base table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog name of the table.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in scope (alias if present).
    pub fn scope_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN (default).
    Inner,
    /// LEFT OUTER JOIN.
    Left,
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Join type.
    pub kind: JoinKind,
    /// ON condition.
    pub on: Expr,
}

/// Sort direction in ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderDirection {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The key expression (may be an output-column name or a 1-based ordinal).
    pub expr: Expr,
    /// Direction.
    pub direction: OrderDirection,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// DISTINCT flag.
    pub distinct: bool,
    /// SELECT-list items.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub from: TableRef,
    /// JOIN clauses, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: Option<usize>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SELECT ")?;
            if self.distinct {
                f.write_str("DISTINCT ")?;
            }
            let items: Vec<String> = self
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Wildcard => "*".to_owned(),
                    SelectItem::Expr { expr, alias: Some(a) } => format!("{expr} AS {a}"),
                    SelectItem::Expr { expr, alias: None } => expr.to_string(),
                })
                .collect();
            write!(f, "{} FROM {}", items.join(", "), self.from.name)?;
            if let Some(a) = &self.from.alias {
                write!(f, " {a}")?;
            }
            for j in &self.joins {
                let kw = match j.kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT JOIN",
                };
                write!(f, " {kw} {}", j.table.name)?;
                if let Some(a) = &j.table.alias {
                    write!(f, " {a}")?;
                }
                write!(f, " ON {}", j.on)?;
            }
            if let Some(w) = &self.where_clause {
                write!(f, " WHERE {w}")?;
            }
            if !self.group_by.is_empty() {
                let keys: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
                write!(f, " GROUP BY {}", keys.join(", "))?;
            }
            if let Some(h) = &self.having {
                write!(f, " HAVING {h}")?;
            }
            if !self.order_by.is_empty() {
                let keys: Vec<String> = self
                    .order_by
                    .iter()
                    .map(|o| {
                        format!(
                            "{}{}",
                            o.expr,
                            match o.direction {
                                OrderDirection::Asc => "",
                                OrderDirection::Desc => " DESC",
                            }
                        )
                    })
                    .collect();
                write!(f, " ORDER BY {}", keys.join(", "))?;
            }
            if let Some(l) = self.limit {
                write!(f, " LIMIT {l}")?;
            }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

/// A parsed `INSERT INTO t [(c1, …)] VALUES (v1, …), …` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table name as written.
    pub table: String,
    /// Explicit column list; empty means "all columns in schema order".
    pub columns: Vec<String>,
    /// One expression list per inserted row.
    pub rows: Vec<Vec<Expr>>,
}

/// A parsed `UPDATE t SET c = e, … [WHERE p]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table name as written.
    pub table: String,
    /// `SET` assignments in source order.
    pub sets: Vec<(String, Expr)>,
    /// Optional `WHERE` predicate; `None` updates every row.
    pub filter: Option<Expr>,
}

/// A parsed `DELETE FROM t [WHERE p]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table name as written.
    pub table: String,
    /// Optional `WHERE` predicate; `None` deletes every row.
    pub filter: Option<Expr>,
}

/// Any statement of the supported subset: one query form and three DML forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A read-only query.
    Select(Select),
    /// Row insertion.
    Insert(Insert),
    /// In-place row updates.
    Update(Update),
    /// Row deletion.
    Delete(Delete),
}

impl Statement {
    /// True for the DML forms (INSERT/UPDATE/DELETE), false for SELECT.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }

    /// The written table for DML forms, `None` for SELECT.
    pub fn write_target(&self) -> Option<&str> {
        match self {
            Statement::Select(_) => None,
            Statement::Insert(i) => Some(&i.table),
            Statement::Update(u) => Some(&u.table),
            Statement::Delete(d) => Some(&d.table),
        }
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        f.write_str(" VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            let vals: Vec<String> = row.iter().map(|e| e.to_string()).collect();
            write!(f, "({})", vals.join(", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sets: Vec<String> = self.sets.iter().map(|(c, e)| format!("{c} = {e}")).collect();
        write!(f, "UPDATE {} SET {}", self.table, sets.join(", "))?;
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => s.fmt(f),
            Statement::Insert(i) => i.fmt(f),
            Statement::Update(u) => u.fmt(f),
            Statement::Delete(d) => d.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_and_display() {
        let e = Expr::binary(Expr::col("x"), BinaryOp::GtEq, Expr::lit(10i64));
        assert_eq!(e.to_string(), "(x >= 10)");
        let e = Expr::Column { table: Some("t".into()), name: "y".into() };
        assert_eq!(e.to_string(), "t.y");
    }

    #[test]
    fn string_literals_escaped_in_display() {
        let e = Expr::lit("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn contains_aggregate_recurses() {
        let agg = Expr::Aggregate { kind: AggKind::Sum, arg: Some(Box::new(Expr::col("x"))) };
        let e = Expr::binary(agg, BinaryOp::Gt, Expr::lit(5i64));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let case = Expr::Case {
            branches: vec![(
                Expr::lit(true),
                Expr::Aggregate { kind: AggKind::Count, arg: None },
            )],
            else_expr: None,
        };
        assert!(case.contains_aggregate());
    }

    #[test]
    fn collect_columns_finds_all() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::col("b")),
            high: Box::new(Expr::lit(3i64)),
            negated: false,
        };
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        let names: Vec<&str> = cols.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn select_display_round_trip_shape() {
        let s = Select {
            distinct: true,
            items: vec![
                SelectItem::Expr { expr: Expr::col("a"), alias: Some("x".into()) },
                SelectItem::Wildcard,
            ],
            from: TableRef { name: "t".into(), alias: Some("u".into()) },
            joins: vec![Join {
                table: TableRef { name: "s".into(), alias: None },
                kind: JoinKind::Left,
                on: Expr::binary(
                    Expr::Column { table: Some("u".into()), name: "id".into() },
                    BinaryOp::Eq,
                    Expr::Column { table: Some("s".into()), name: "id".into() },
                ),
            }],
            where_clause: Some(Expr::binary(Expr::col("a"), BinaryOp::Lt, Expr::lit(1i64))),
            group_by: vec![Expr::col("a")],
            having: None,
            order_by: vec![OrderByItem { expr: Expr::col("x"), direction: OrderDirection::Desc }],
            limit: Some(10),
            offset: Some(2),
        };
        let text = s.to_string();
        assert!(text.starts_with("SELECT DISTINCT a AS x, *"));
        assert!(text.contains("LEFT JOIN s ON (u.id = s.id)"));
        assert!(text.contains("ORDER BY x DESC LIMIT 10 OFFSET 2"));
    }

    #[test]
    fn table_ref_scope_name() {
        let t = TableRef { name: "employment".into(), alias: Some("e".into()) };
        assert_eq!(t.scope_name(), "e");
        let t = TableRef { name: "employment".into(), alias: None };
        assert_eq!(t.scope_name(), "employment");
    }

    #[test]
    fn binary_op_helpers() {
        assert!(BinaryOp::LtEq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert_eq!(BinaryOp::NotEq.sql(), "<>");
    }
}
