//! Error mitigation: re-calibrating explanations.
//!
//! The paper (Sec. 2.2, Explainability): "Error mitigation is the ability to
//! re-calibrate provided explanations." When an explanation fails its
//! losslessness check — its citations no longer reproduce the answer, e.g.
//! because the annotation was corrupted in transit or produced by a
//! hallucinating generator — the mitigator **re-derives** the explanation
//! from a fresh, trusted execution of the same query and reports what was
//! wrong with the original.

use crate::checks::check_losslessness;
use crate::explain::Explanation;
use crate::{ProvenanceError, Result};
use cda_sql::{execute, Catalog};

/// The outcome of one mitigation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Mitigation {
    /// The re-derived, verified explanation.
    pub explanation: Explanation,
    /// Whether the original explanation was already sound (no repair needed).
    pub original_sound: bool,
    /// Citations present in the original but not supported by the replay.
    pub spurious_citations: usize,
    /// Citations missing from the original that the replay requires.
    pub missing_citations: usize,
}

/// Re-derive the explanation of result row `row` of `sql` and compare it
/// with `original`. The returned explanation is built from the trusted
/// replay: fresh lineage, fresh plan, and a passing losslessness report.
pub fn recalibrate(
    catalog: &Catalog,
    sql: &str,
    row: usize,
    original: &Explanation,
) -> Result<Mitigation> {
    let replay = execute(catalog, sql).map_err(|e| ProvenanceError::Replay(e.to_string()))?;
    if row >= replay.table.num_rows() {
        return Err(ProvenanceError::RowOutOfRange { row, len: replay.table.num_rows() });
    }
    let true_rows: std::collections::BTreeSet<_> = replay
        .table
        .lineage(row)
        .map_err(|e| ProvenanceError::Replay(e.to_string()))?
        .iter()
        .copied()
        .collect();
    let cited: std::collections::BTreeSet<_> = original.cited_rows.iter().copied().collect();
    let spurious_citations = cited.difference(&true_rows).count();
    let missing_citations = true_rows.difference(&cited).count();
    let lossless = check_losslessness(catalog, sql, &replay.table, row)?;
    let original_sound =
        spurious_citations == 0 && missing_citations == 0 && original.code == sql;
    let explanation = Explanation::new(format!(
        "{} (re-derived{})",
        original.summary,
        if original_sound { "" } else { ", original explanation repaired" }
    ))
    .with_sources(original.sources.clone())
    .with_rows(true_rows.into_iter().collect())
    .with_plan(replay.plan.explain())
    .with_code(sql.to_owned())
    .with_verification(Some(lossless), None);
    Ok(Mitigation { explanation, original_sound, spurious_citations, missing_citations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, DataType, Field, RowId, Schema, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("g", DataType::Str),
                Field::new("x", DataType::Int),
            ]),
            vec![Column::from_strs(&["a", "a", "b"]), Column::from_ints(&[1, 2, 3])],
        )
        .unwrap();
        c.register("t", t).unwrap();
        c
    }

    const SQL: &str = "SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g";

    fn honest_explanation(c: &Catalog) -> Explanation {
        let r = execute(c, SQL).unwrap();
        Explanation::new("sum per group")
            .with_sources(vec!["t".into()])
            .with_rows(r.table.lineage(0).unwrap().to_vec())
            .with_code(SQL)
    }

    #[test]
    fn sound_explanation_passes_unchanged() {
        let c = catalog();
        let original = honest_explanation(&c);
        let m = recalibrate(&c, SQL, 0, &original).unwrap();
        assert!(m.original_sound);
        assert_eq!(m.spurious_citations, 0);
        assert_eq!(m.missing_citations, 0);
        assert!(m.explanation.verified());
        assert!(!m.explanation.summary.contains("repaired"));
    }

    #[test]
    fn corrupted_citations_are_repaired() {
        let c = catalog();
        let tag = c.get("t").unwrap().tag;
        // cite a wrong row (row 2 belongs to group b) and miss row 1
        let original = Explanation::new("sum per group")
            .with_rows(vec![RowId::new(tag, 0), RowId::new(tag, 2)])
            .with_code(SQL);
        let m = recalibrate(&c, SQL, 0, &original).unwrap();
        assert!(!m.original_sound);
        assert_eq!(m.spurious_citations, 1); // row 2
        assert_eq!(m.missing_citations, 1); // row 1
        // the repaired explanation cites exactly the group-a rows
        assert_eq!(
            m.explanation.cited_rows,
            vec![RowId::new(tag, 0), RowId::new(tag, 1)]
        );
        assert!(m.explanation.summary.contains("repaired"));
        assert!(m.explanation.verified());
    }

    #[test]
    fn wrong_code_is_detected() {
        let c = catalog();
        let mut original = honest_explanation(&c);
        original.code = "SELECT COUNT(*) FROM t".into();
        let m = recalibrate(&c, SQL, 0, &original).unwrap();
        assert!(!m.original_sound);
        assert_eq!(m.explanation.code, SQL);
    }

    #[test]
    fn bad_row_rejected() {
        let c = catalog();
        let original = honest_explanation(&c);
        assert!(recalibrate(&c, SQL, 99, &original).is_err());
        assert!(recalibrate(&c, "SELECT nope FROM t", 0, &original).is_err());
    }
}
