//! Distance functions.
//!
//! The hot loops are written over `&[f32]` slices with 4-way manual unrolling
//! (perf-book: give LLVM straight-line FP code to vectorize; avoid iterator
//! adapter chains in the innermost loop).

/// Supported distance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distance {
    /// Squared Euclidean distance (monotone in Euclidean; cheaper).
    #[default]
    SquaredEuclidean,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Cosine distance `1 - cos(a, b)` (0 for identical directions).
    Cosine,
    /// Negative dot product (so that smaller = more similar, like the others).
    NegativeDot,
}

impl Distance {
    /// Compute the distance between two equal-length vectors.
    pub fn compute(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::SquaredEuclidean => squared_euclidean(a, b),
            Distance::Euclidean => squared_euclidean(a, b).sqrt(),
            Distance::Cosine => cosine_distance(a, b),
            Distance::NegativeDot => -dot(a, b),
        }
    }

    /// Name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Distance::SquaredEuclidean => "l2sq",
            Distance::Euclidean => "l2",
            Distance::Cosine => "cosine",
            Distance::NegativeDot => "dot",
        }
    }
}

/// Squared Euclidean distance.
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut sum = s0 + s1 + s2 + s3;
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for j in chunks * 4..n {
        sum += a[j] * b[j];
    }
    sum
}

/// Euclidean norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 - cos(a, b)`; zero vectors are treated as maximally far.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Normalize a vector in place to unit length (no-op for the zero vector).
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_basic() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(Distance::Euclidean.compute(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn unrolled_matches_naive_for_all_lengths() {
        for n in 0..20 {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.25).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((squared_euclidean(&a, &b) - naive).abs() < 1e-4, "n={n}");
            let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive_dot).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn cosine_properties() {
        assert!(cosine_distance(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn negative_dot_orders_by_similarity() {
        let q = [1.0f32, 1.0];
        let close = Distance::NegativeDot.compute(&q, &[2.0, 2.0]);
        let far = Distance::NegativeDot.compute(&q, &[0.1, 0.0]);
        assert!(close < far);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0f32, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0f32, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Distance::SquaredEuclidean.name(), "l2sq");
        assert_eq!(Distance::Cosine.name(), "cosine");
    }
}
