//! Vector dataset storage and synthetic workload generators.
//!
//! Vectors live in one contiguous `Vec<f32>` (row-major), so scans stream
//! linearly through memory. Synthetic generators produce the clustered and
//! uniform workloads used by experiments E1/E2 — stand-ins for the paper's
//! billion-scale ANN corpora (see DESIGN.md substitution table).

use crate::error::VectorError;
use crate::Result;
use cda_testkit::rng::StdRng;

/// A dense, row-major set of equal-dimension vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Build from row vectors, checking dimensional consistency.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(VectorError::EmptyInput("rows"));
        };
        let dim = first.len();
        if dim == 0 {
            return Err(VectorError::EmptyInput("dimension"));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(VectorError::DimensionMismatch { expected: dim, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { dim, data })
    }

    /// Build from a flat buffer of `len * dim` floats.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(VectorError::EmptyInput("dimension"));
        }
        if data.is_empty() {
            return Err(VectorError::EmptyInput("data"));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(VectorError::DimensionMismatch { expected: dim, actual: data.len() % dim });
        }
        Ok(Self { dim, data })
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if the set has no vectors (cannot normally happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th vector.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate all vectors.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Append one vector.
    pub fn push(&mut self, v: &[f32]) -> Result<()> {
        if v.len() != self.dim {
            return Err(VectorError::DimensionMismatch { expected: self.dim, actual: v.len() });
        }
        self.data.extend_from_slice(v);
        Ok(())
    }

    /// Generate `n` vectors uniform in `[-1, 1]^dim` (seeded).
    pub fn uniform(n: usize, dim: usize, seed: u64) -> Result<Self> {
        if n == 0 || dim == 0 {
            return Err(VectorError::EmptyInput("n or dim"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        Ok(Self { dim, data })
    }

    /// Generate `n` vectors from `clusters` spherical Gaussian clusters with
    /// the given standard deviation (seeded). Cluster centers are uniform in
    /// `[-1, 1]^dim`. Returns the set and each vector's cluster label.
    pub fn gaussian_clusters(
        n: usize,
        dim: usize,
        clusters: usize,
        std_dev: f32,
        seed: u64,
    ) -> Result<(Self, Vec<usize>)> {
        if n == 0 || dim == 0 || clusters == 0 {
            return Err(VectorError::EmptyInput("n, dim, or clusters"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % clusters;
            labels.push(c);
            for &cd in &centers[c] {
                data.push(cd + gaussian(&mut rng) * std_dev);
            }
        }
        Ok((Self { dim, data }, labels))
    }

    /// Draw `q` query vectors near dataset points (perturbed copies), the
    /// standard ANN-benchmark query distribution.
    pub fn queries_near(&self, q: usize, noise: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..q)
            .map(|_| {
                let i = rng.gen_range(0..self.len());
                self.vector(i)
                    .iter()
                    .map(|&x| x + gaussian(&mut rng) * noise)
                    .collect()
            })
            .collect()
    }
}

/// Standard normal via Box–Muller (avoids a distributions dependency).
pub fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let s = VectorSet::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.vector(1), &[3.0, 4.0]);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn from_rows_validates() {
        assert!(VectorSet::from_rows(vec![]).is_err());
        assert!(VectorSet::from_rows(vec![vec![]]).is_err());
        assert!(VectorSet::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_flat_validates() {
        assert!(VectorSet::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(VectorSet::from_flat(0, vec![1.0]).is_err());
        let s = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn push_checks_dim() {
        let mut s = VectorSet::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        assert!(s.push(&[1.0]).is_err());
        s.push(&[1.0, 1.0]).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = VectorSet::uniform(100, 8, 42).unwrap();
        let b = VectorSet::uniform(100, 8, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().flatten().all(|&x| (-1.0..1.0).contains(&x)));
        let c = VectorSet::uniform(100, 8, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn clusters_have_labels_and_locality() {
        let (s, labels) = VectorSet::gaussian_clusters(300, 4, 3, 0.01, 7).unwrap();
        assert_eq!(s.len(), 300);
        assert_eq!(labels.len(), 300);
        // two points in the same cluster should be much closer than points in
        // different clusters (std 0.01 vs centers in [-1,1]^4), on average
        let same = crate::metrics::squared_euclidean(s.vector(0), s.vector(3)); // both cluster 0
        let diff = crate::metrics::squared_euclidean(s.vector(0), s.vector(1)); // clusters 0 vs 1
        assert!(same < diff);
    }

    #[test]
    fn queries_near_have_right_shape() {
        let s = VectorSet::uniform(50, 6, 1).unwrap();
        let qs = s.queries_near(10, 0.05, 2);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.len() == 6));
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
