//! The analytic-task IR, NL phrasings, and SQL rendering.
//!
//! An [`AnalyticTask`] is the structured meaning of an analytical question
//! over one table: an aggregate over a metric column, optional grouping,
//! filtering, ordering, and limiting. The workload generator produces
//! `(question, task, gold SQL)` triples over a schema; the oracle task is
//! what the simulated LM perturbs, and the gold SQL is what execution-based
//! verification compares against.

use cda_dataframe::kernels::AggKind;
use cda_dataframe::{DataType, Schema, Value};
use cda_testkit::rng::StdRng;
use std::fmt;

/// Comparison operator in a task filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Greater than.
    Gt,
    /// Less than.
    Lt,
}

impl CmpOp {
    /// SQL rendering.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
        }
    }

    /// NL rendering.
    pub fn phrase(self) -> &'static str {
        match self {
            CmpOp::Eq => "is",
            CmpOp::Gt => "is above",
            CmpOp::Lt => "is below",
        }
    }
}

/// One filter predicate: `column op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFilter {
    /// Filtered column.
    pub column: String,
    /// Comparison.
    pub op: CmpOp,
    /// Constant.
    pub value: Value,
}

/// The structured meaning of an analytical question.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticTask {
    /// Target table.
    pub table: String,
    /// Aggregate function.
    pub agg: AggKind,
    /// Aggregated column (`None` = COUNT(*)).
    pub metric: Option<String>,
    /// Group-by column.
    pub group_by: Option<String>,
    /// Conjunctive filters.
    pub filters: Vec<TaskFilter>,
    /// Order the grouped result by the aggregate, descending.
    pub order_desc: bool,
    /// LIMIT.
    pub limit: Option<usize>,
}

impl AnalyticTask {
    /// Render the task as SQL (the gold program).
    pub fn to_sql(&self) -> String {
        let agg_expr = match (&self.agg, &self.metric) {
            (AggKind::CountDistinct, Some(m)) => format!("COUNT(DISTINCT {m})"),
            (_, Some(m)) => format!("{}({m})", self.agg.name()),
            (_, None) => "COUNT(*)".to_owned(),
        };
        let mut sql = String::from("SELECT ");
        if let Some(g) = &self.group_by {
            sql.push_str(g);
            sql.push_str(", ");
        }
        sql.push_str(&agg_expr);
        sql.push_str(" AS result FROM ");
        sql.push_str(&self.table);
        if !self.filters.is_empty() {
            sql.push_str(" WHERE ");
            let parts: Vec<String> = self
                .filters
                .iter()
                .map(|f| {
                    let v = match &f.value {
                        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                        other => other.to_string(),
                    };
                    format!("{} {} {}", f.column, f.op.sql(), v)
                })
                .collect();
            sql.push_str(&parts.join(" AND "));
        }
        if let Some(g) = &self.group_by {
            sql.push_str(" GROUP BY ");
            sql.push_str(g);
        }
        if self.order_desc {
            sql.push_str(" ORDER BY result DESC");
        }
        if let Some(l) = self.limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        sql
    }

    /// Render a natural-language phrasing of the task (deterministic,
    /// phrasing variant selected by `variant`).
    pub fn to_question(&self, variant: usize) -> String {
        let metric_phrase = match (&self.agg, &self.metric) {
            (AggKind::Count, None) => "the number of records".to_owned(),
            (AggKind::Count, Some(m)) => format!("the number of {m} entries"),
            (AggKind::Sum, Some(m)) => format!("the total {m}"),
            (AggKind::Avg, Some(m)) => format!("the average {m}"),
            (AggKind::Min, Some(m)) => format!("the minimum {m}"),
            (AggKind::Max, Some(m)) => format!("the maximum {m}"),
            (AggKind::StdDev, Some(m)) => format!("the variability of {m}"),
            (AggKind::CountDistinct, Some(m)) => format!("the number of distinct {m} values"),
            _ => "the aggregate".to_owned(),
        };
        let mut q = match variant % 3 {
            0 => format!("What is {metric_phrase} in {}", self.table),
            1 => format!("Show {metric_phrase} from {}", self.table),
            _ => format!("Give me {metric_phrase} in the {} data", self.table),
        };
        if let Some(g) = &self.group_by {
            q.push_str(&format!(" per {g}"));
        }
        for f in &self.filters {
            q.push_str(&format!(" where {} {} {}", f.column, f.op.phrase(), f.value));
        }
        if self.order_desc {
            q.push_str(", highest first");
        }
        if let Some(l) = self.limit {
            q.push_str(&format!(", top {l}"));
        }
        q.push('?');
        q
    }
}

impl fmt::Display for AnalyticTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

/// One NL2SQL benchmark item.
#[derive(Debug, Clone, PartialEq)]
pub struct Nl2SqlTask {
    /// The user question.
    pub question: String,
    /// The oracle task.
    pub task: AnalyticTask,
    /// Gold SQL (rendered from the oracle task).
    pub gold_sql: String,
}

/// A schema a workload is generated over.
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    /// Table name.
    pub name: String,
    /// Schema (numeric columns become metrics; string columns become
    /// group-by / filter candidates).
    pub schema: Schema,
    /// Example values per string column, used to build filters.
    pub string_values: Vec<(String, Vec<String>)>,
}

/// A generated NL2SQL workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark items.
    pub tasks: Vec<Nl2SqlTask>,
}

impl Workload {
    /// Generate `n` seeded tasks over the given tables.
    pub fn generate(tables: &[WorkloadTable], n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let wt = &tables[rng.gen_range(0..tables.len())];
            let numeric: Vec<&str> = wt
                .schema
                .fields()
                .iter()
                .filter(|f| f.data_type().is_numeric())
                .map(|f| f.name())
                .collect();
            let strings: Vec<&str> = wt
                .schema
                .fields()
                .iter()
                .filter(|f| f.data_type() == DataType::Str)
                .map(|f| f.name())
                .collect();
            let agg = match rng.gen_range(0..6) {
                0 => AggKind::Count,
                1 => AggKind::Sum,
                2 => AggKind::Avg,
                3 => AggKind::Min,
                4 => AggKind::Max,
                _ => AggKind::StdDev,
            };
            let metric = if (agg == AggKind::Count && rng.gen_bool(0.5)) || numeric.is_empty() {
                None
            } else {
                Some(numeric[rng.gen_range(0..numeric.len())].to_owned())
            };
            let agg = if metric.is_none() { AggKind::Count } else { agg };
            let group_by = if !strings.is_empty() && rng.gen_bool(0.6) {
                Some(strings[rng.gen_range(0..strings.len())].to_owned())
            } else {
                None
            };
            let mut filters = Vec::new();
            if rng.gen_bool(0.5) {
                if let Some((col, values)) = pick_string_filter(wt, &mut rng, group_by.as_deref())
                {
                    filters.push(TaskFilter {
                        column: col,
                        op: CmpOp::Eq,
                        value: Value::Str(values),
                    });
                }
            }
            if rng.gen_bool(0.3) && !numeric.is_empty() {
                let col = numeric[rng.gen_range(0..numeric.len())];
                if Some(col) != metric.as_deref() {
                    filters.push(TaskFilter {
                        column: col.to_owned(),
                        op: if rng.gen_bool(0.5) { CmpOp::Gt } else { CmpOp::Lt },
                        value: Value::Int(rng.gen_range(10..100)),
                    });
                }
            }
            let order_desc = group_by.is_some() && rng.gen_bool(0.5);
            let limit = if order_desc && rng.gen_bool(0.4) {
                Some(rng.gen_range(1..=5))
            } else {
                None
            };
            let task = AnalyticTask {
                table: wt.name.clone(),
                agg,
                metric,
                group_by,
                filters,
                order_desc,
                limit,
            };
            tasks.push(Nl2SqlTask {
                question: task.to_question(i),
                gold_sql: task.to_sql(),
                task,
            });
        }
        Self { tasks }
    }
}

/// Parse a natural-language analytical question back into an
/// [`AnalyticTask`] over the given tables — the transparent, rule-based
/// semantic parser of the NL model layer (the simulated LM then perturbs the
/// parsed oracle task; see [`crate::lm`]). Returns `None` when no table or
/// aggregate can be grounded.
pub fn parse_question(text: &str, tables: &[WorkloadTable]) -> Option<AnalyticTask> {
    let lower = text.to_lowercase();
    let tokens: Vec<String> = cda_kg::vocab::tokenize(&lower);
    // table: the one whose name (or name words) appears in the text
    let wt = tables.iter().find(|t| {
        let name = t.name.to_lowercase();
        lower.contains(&name) || name.split('_').all(|w| tokens.iter().any(|t| t == w))
    })?;
    // aggregate keyword
    let agg = if lower.contains("average") || lower.contains("mean ") || lower.contains("avg") {
        AggKind::Avg
    } else if lower.contains("total") || lower.contains("sum") {
        AggKind::Sum
    } else if lower.contains("maximum") || lower.contains("highest value") || lower.contains("max ")
    {
        AggKind::Max
    } else if lower.contains("minimum") || lower.contains("lowest value") || lower.contains("min ")
    {
        AggKind::Min
    } else if lower.contains("variability") || lower.contains("deviation") {
        AggKind::StdDev
    } else if lower.contains("distinct") || lower.contains("unique") || lower.contains("different")
    {
        AggKind::CountDistinct
    } else if lower.contains("number of") || lower.contains("count") || lower.contains("how many")
    {
        AggKind::Count
    } else {
        return None;
    };
    // metric: the *earliest-mentioned* numeric column (the aggregate phrase
    // precedes filter clauses, so a column that only appears in a filter
    // must not win). Underscore names like `median_wage` tokenize into
    // pieces, so substring-match them too.
    let metric = wt
        .schema
        .fields()
        .iter()
        .filter(|f| f.data_type().is_numeric())
        .filter_map(|f| {
            let name = f.name().to_lowercase();
            lower.find(&name).map(|pos| (pos, f.name().to_owned()))
        })
        .min_by_key(|(pos, _)| *pos)
        .map(|(_, name)| name);
    let agg =
        if metric.is_none() && agg != AggKind::CountDistinct { AggKind::Count } else { agg };
    // COUNT DISTINCT works over any column type; point it at the first
    // column named in the text regardless of numeric-ness
    let (agg, metric) = if agg == AggKind::CountDistinct {
        let any_col = wt
            .schema
            .fields()
            .iter()
            .filter_map(|f| {
                let name = f.name().to_lowercase();
                lower.find(&name).map(|pos| (pos, f.name().to_owned()))
            })
            .min_by_key(|(pos, _)| *pos)
            .map(|(_, name)| name);
        match any_col {
            Some(c) => (AggKind::CountDistinct, Some(c)),
            None => (AggKind::Count, None),
        }
    } else {
        (agg, metric)
    };
    // group by: "per <col>" / "by <col>" / "for each <col>"
    let group_by = wt.schema.fields().iter().find_map(|f| {
        let name = f.name().to_lowercase();
        [format!("per {name}"), format!("by {name}"), format!("for each {name}")]
            .iter()
            .any(|p| lower.contains(p.as_str()))
            .then(|| f.name().to_owned())
    });
    // filters: "<col> is <value>" / "<col> is above <n>" / "<col> is below <n>"
    let mut filters = Vec::new();
    for f in wt.schema.fields() {
        let name = f.name().to_lowercase();
        if let Some(pos) = lower.find(&format!("{name} is above ")) {
            let rest = &lower[pos + name.len() + 10..];
            if let Some(v) = first_number(rest) {
                filters.push(TaskFilter { column: f.name().to_owned(), op: CmpOp::Gt, value: Value::Int(v) });
            }
        } else if let Some(pos) = lower.find(&format!("{name} is below ")) {
            let rest = &lower[pos + name.len() + 10..];
            if let Some(v) = first_number(rest) {
                filters.push(TaskFilter { column: f.name().to_owned(), op: CmpOp::Lt, value: Value::Int(v) });
            }
        } else if let Some(pos) = lower.find(&format!("{name} is ")) {
            let rest = text[pos + name.len() + 4..].trim_start();
            let word: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !word.is_empty() && !["above", "below"].contains(&word.to_lowercase().as_str()) {
                // only string columns take equality filters from bare words
                if f.data_type() == DataType::Str {
                    filters.push(TaskFilter {
                        column: f.name().to_owned(),
                        op: CmpOp::Eq,
                        value: Value::Str(word),
                    });
                }
            }
        }
    }
    let order_desc = lower.contains("highest first") || lower.contains("descending");
    let limit = lower.find("top ").and_then(|p| first_number(&lower[p + 4..])).map(|v| v as usize);
    Some(AnalyticTask {
        table: wt.name.clone(),
        agg,
        metric,
        group_by,
        filters,
        order_desc: order_desc || limit.is_some(),
        limit,
    })
}

/// Refine a previous task with a follow-up utterance — the paper's
/// "iterative refinement of analyses" ("and per sector?", "only where canton
/// is ZH", "make that the average"). Returns `None` when the utterance
/// carries no recognizable refinement.
pub fn refine_task(previous: &AnalyticTask, text: &str, tables: &[WorkloadTable]) -> Option<AnalyticTask> {
    let wt = tables.iter().find(|t| t.name == previous.table)?;
    let lower = text.to_lowercase();
    let mut task = previous.clone();
    let mut changed = false;
    // regroup: "per <col>" / "by <col>"
    for f in wt.schema.fields() {
        let name = f.name().to_lowercase();
        if (lower.contains(&format!("per {name}")) || lower.contains(&format!("by {name}")))
            && task.group_by.as_deref() != Some(f.name()) {
                task.group_by = Some(f.name().to_owned());
                changed = true;
            }
    }
    // drop grouping: "overall" / "in total" / "without grouping"
    if (lower.contains("overall") || lower.contains("in total") || lower.contains("without grouping"))
        && task.group_by.is_some()
    {
        task.group_by = None;
        task.order_desc = false;
        task.limit = None;
        changed = true;
    }
    // change aggregate: "average"/"total"/"maximum"/"minimum" instead
    let new_agg = if lower.contains("average") || lower.contains("mean") {
        Some(AggKind::Avg)
    } else if lower.contains("total") || lower.contains("sum") {
        Some(AggKind::Sum)
    } else if lower.contains("maximum") {
        Some(AggKind::Max)
    } else if lower.contains("minimum") {
        Some(AggKind::Min)
    } else if lower.contains("how many") || lower.contains("count") {
        Some(AggKind::Count)
    } else {
        None
    };
    if let Some(agg) = new_agg {
        if agg != task.agg && (task.metric.is_some() || agg == AggKind::Count) {
            if agg == AggKind::Count {
                task.metric = None;
            }
            task.agg = agg;
            changed = true;
        }
    }
    // added filters: "<col> is <val>" / "only <val>" over known string values
    for f in wt.schema.fields() {
        let name = f.name().to_lowercase();
        if let Some(pos) = lower.find(&format!("{name} is ")) {
            let rest = text[pos + name.len() + 4..].trim_start();
            let word: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !word.is_empty()
                && f.data_type() == DataType::Str
                && !task.filters.iter().any(|fl| fl.column == f.name())
            {
                task.filters.push(TaskFilter {
                    column: f.name().to_owned(),
                    op: CmpOp::Eq,
                    value: Value::Str(word),
                });
                changed = true;
            }
        }
    }
    if !changed {
        // "only <known value>" shorthand
        if let Some(pos) = lower.find("only ") {
            let rest = &text[pos + 5..];
            let word: String =
                rest.trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            for (col, values) in &wt.string_values {
                if values.iter().any(|v| v.eq_ignore_ascii_case(&word))
                    && !task.filters.iter().any(|fl| &fl.column == col)
                {
                    task.filters.push(TaskFilter {
                        column: col.clone(),
                        op: CmpOp::Eq,
                        value: Value::Str(word.clone()),
                    });
                    changed = true;
                    break;
                }
            }
        }
    }
    changed.then_some(task)
}

fn first_number(text: &str) -> Option<i64> {
    let digits: String =
        text.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn pick_string_filter(
    wt: &WorkloadTable,
    rng: &mut StdRng,
    exclude: Option<&str>,
) -> Option<(String, String)> {
    let candidates: Vec<&(String, Vec<String>)> = wt
        .string_values
        .iter()
        .filter(|(c, vs)| Some(c.as_str()) != exclude && !vs.is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let (col, values) = candidates[rng.gen_range(0..candidates.len())];
    Some((col.clone(), values[rng.gen_range(0..values.len())].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::Field;

    fn table() -> WorkloadTable {
        WorkloadTable {
            name: "employment".into(),
            schema: Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("sector", DataType::Str),
                Field::new("jobs", DataType::Int),
                Field::new("rate", DataType::Float),
            ]),
            string_values: vec![
                ("canton".into(), vec!["ZH".into(), "GE".into()]),
                ("sector".into(), vec!["it".into()]),
            ],
        }
    }

    #[test]
    fn sql_rendering_full_task() {
        let t = AnalyticTask {
            table: "employment".into(),
            agg: AggKind::Sum,
            metric: Some("jobs".into()),
            group_by: Some("canton".into()),
            filters: vec![TaskFilter {
                column: "sector".into(),
                op: CmpOp::Eq,
                value: Value::from("it"),
            }],
            order_desc: true,
            limit: Some(3),
        };
        assert_eq!(
            t.to_sql(),
            "SELECT canton, SUM(jobs) AS result FROM employment WHERE sector = 'it' \
             GROUP BY canton ORDER BY result DESC LIMIT 3"
        );
    }

    #[test]
    fn sql_rendering_count_star() {
        let t = AnalyticTask {
            table: "t".into(),
            agg: AggKind::Count,
            metric: None,
            group_by: None,
            filters: vec![],
            order_desc: false,
            limit: None,
        };
        assert_eq!(t.to_sql(), "SELECT COUNT(*) AS result FROM t");
        assert_eq!(t.to_string(), t.to_sql());
    }

    #[test]
    fn string_values_escaped() {
        let t = AnalyticTask {
            table: "t".into(),
            agg: AggKind::Count,
            metric: None,
            group_by: None,
            filters: vec![TaskFilter {
                column: "name".into(),
                op: CmpOp::Eq,
                value: Value::from("O'Hara"),
            }],
            order_desc: false,
            limit: None,
        };
        assert!(t.to_sql().contains("'O''Hara'"));
    }

    #[test]
    fn questions_mention_task_parts() {
        let t = AnalyticTask {
            table: "employment".into(),
            agg: AggKind::Avg,
            metric: Some("rate".into()),
            group_by: Some("canton".into()),
            filters: vec![TaskFilter {
                column: "jobs".into(),
                op: CmpOp::Gt,
                value: Value::Int(50),
            }],
            order_desc: true,
            limit: Some(2),
        };
        let q = t.to_question(0);
        assert!(q.contains("average rate"));
        assert!(q.contains("per canton"));
        assert!(q.contains("jobs is above 50"));
        assert!(q.contains("top 2"));
        // variants differ
        assert_ne!(t.to_question(0), t.to_question(1));
    }

    #[test]
    fn workload_is_seeded_and_valid() {
        let tables = vec![table()];
        let a = Workload::generate(&tables, 50, 7);
        let b = Workload::generate(&tables, 50, 7);
        assert_eq!(a.tasks.len(), 50);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.gold_sql, y.gold_sql);
            assert_eq!(x.question, y.question);
        }
        // gold SQL parses in our engine
        for t in &a.tasks {
            assert!(cda_sql::parser::parse(&t.gold_sql).is_ok(), "bad SQL: {}", t.gold_sql);
        }
        // different seeds differ
        let c = Workload::generate(&tables, 50, 8);
        assert!(a.tasks.iter().zip(&c.tasks).any(|(x, y)| x.gold_sql != y.gold_sql));
    }

    #[test]
    fn parse_question_round_trips_generated_workload() {
        let tables = vec![table()];
        let w = Workload::generate(&tables, 60, 5);
        let mut exact = 0usize;
        for t in &w.tasks {
            let parsed = parse_question(&t.question, &tables);
            if parsed.as_ref() == Some(&t.task) {
                exact += 1;
            } else if let Some(p) = parsed {
                // when not exact, at least the table and aggregate must match
                assert_eq!(p.table, t.task.table, "q: {}", t.question);
            } else {
                panic!("unparseable generated question: {}", t.question);
            }
        }
        // the rule parser should recover the vast majority exactly
        assert!(exact >= 54, "only {exact}/60 exact round-trips");
    }

    #[test]
    fn parse_question_manual_examples() {
        let tables = vec![table()];
        let t = parse_question(
            "What is the total jobs in employment per canton where sector is it, highest first?",
            &tables,
        )
        .unwrap();
        assert_eq!(t.agg, AggKind::Sum);
        assert_eq!(t.metric.as_deref(), Some("jobs"));
        assert_eq!(t.group_by.as_deref(), Some("canton"));
        assert_eq!(t.filters.len(), 1);
        assert!(t.order_desc);
        // unknown table
        assert!(parse_question("total jobs in atlantis", &tables).is_none());
        // no aggregate keyword
        assert!(parse_question("employment please", &tables).is_none());
    }

    #[test]
    fn count_distinct_task_round_trip() {
        let tables = vec![table()];
        let t = parse_question("How many distinct canton values are in employment?", &tables)
            .unwrap();
        assert_eq!(t.agg, AggKind::CountDistinct);
        assert_eq!(t.metric.as_deref(), Some("canton"));
        assert!(t.to_sql().contains("COUNT(DISTINCT canton)"));
        assert!(cda_sql::parser::parse(&t.to_sql()).is_ok());
        assert!(t.to_question(0).contains("distinct canton values"));
    }

    #[test]
    fn refine_task_modifies_previous() {
        let tables = vec![table()];
        let base = parse_question(
            "What is the total jobs in employment per canton?",
            &tables,
        )
        .unwrap();
        // regroup
        let t = refine_task(&base, "and per sector?", &tables).unwrap();
        assert_eq!(t.group_by.as_deref(), Some("sector"));
        assert_eq!(t.agg, base.agg);
        // change aggregate
        let t = refine_task(&base, "make that the average", &tables).unwrap();
        assert_eq!(t.agg, AggKind::Avg);
        // add a filter via "<col> is <val>"
        let t = refine_task(&base, "where sector is it", &tables).unwrap();
        assert_eq!(t.filters.len(), 1);
        // add a filter via "only <known value>"
        let t = refine_task(&base, "only ZH please", &tables).unwrap();
        assert!(t.filters.iter().any(|f| f.column == "canton"));
        // drop grouping
        let t = refine_task(&base, "overall, not split up", &tables).unwrap();
        assert!(t.group_by.is_none());
        // count drops the metric
        let t = refine_task(&base, "how many instead", &tables).unwrap();
        assert_eq!(t.agg, AggKind::Count);
        assert!(t.metric.is_none());
        // no recognizable refinement
        assert!(refine_task(&base, "nice weather today", &tables).is_none());
        // unknown table
        let mut other = base.clone();
        other.table = "missing".into();
        assert!(refine_task(&other, "per sector", &tables).is_none());
    }

    #[test]
    fn workload_tasks_reference_schema_columns() {
        let tables = vec![table()];
        let w = Workload::generate(&tables, 30, 3);
        for t in &w.tasks {
            if let Some(m) = &t.task.metric {
                assert!(tables[0].schema.index_of(m).is_some());
            }
            for f in &t.task.filters {
                assert!(tables[0].schema.index_of(&f.column).is_some());
            }
        }
    }
}
