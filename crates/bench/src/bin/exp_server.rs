//! **E19** — multiplexed session runtime at scale: transcript determinism
//! under concurrency, admission control, and worker-pool throughput.
//!
//! Full mode drives >=100k turns across >=1k sessions through the server;
//! `CDA_BENCH_FAST=1` scales down for CI. Gates:
//!
//! * **0 transcript mismatches**: every hosted session's transcript hash
//!   (FNV-1a over the rendered answers, in turn order) equals a serial
//!   `Session` replay of the same script with the same seed — for both the
//!   single-worker and the multi-worker run.
//! * **throughput** (hardware-conditional): with >=4 cores the multi-worker
//!   drain must be >=2x the single-worker drain; with 2-3 cores >=1.3x; on
//!   a single core thread parallelism cannot win, so only the absence of a
//!   catastrophic regression (>=0.7x, i.e. scheduling overhead under ~30%)
//!   is required and a waiver is printed.
//! * **admission**: a row-budget-capped tenant's wide turns are all
//!   rejected pre-execution (the session's turn counter stays at the
//!   admitted count) and every rejection is visible in `ServerStats`.

use cda_bench::{f, header, row, timed, us};
use cda_core::demo::demo_world;
use cda_core::{CdaConfig, Session};
use cda_server::loadgen::{interleave, session_scripts, LoadSpec};
use cda_server::{Server, ServerConfig, TenantQuota, TurnOutcome};
use std::time::Duration;

/// FNV-1a 64-bit over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Serial reference: replay each script on a bare session (seed = id + 1,
/// the server's derivation) and hash the transcript.
fn serial_hashes(scripts: &[Vec<String>]) -> Vec<u64> {
    scripts
        .iter()
        .enumerate()
        .map(|(i, script)| {
            let mut s = Session::open_seeded(demo_world(42), CdaConfig::default(), i as u64 + 1);
            let mut h = Fnv::new();
            for turn in script {
                h.write(s.process(turn).render().as_bytes());
                h.write(b"\n");
            }
            h.0
        })
        .collect()
}

/// Hosted run: one drain over all turns with `workers` threads. Returns
/// per-session transcript hashes, the drain wall time, and p50/p99.
fn hosted_run(
    scripts: &[Vec<String>],
    workers: usize,
) -> (Vec<u64>, Duration, u64, u64) {
    let mut server =
        Server::new(demo_world(42), ServerConfig { workers, ..ServerConfig::default() });
    let ids = server.open_sessions("load", scripts.len());
    for (i, turn) in interleave(scripts, 0xE19) {
        server.submit(ids[i], &turn).expect("unlimited tenant");
    }
    let report = server.drain();
    let mut hashes: Vec<Fnv> = (0..scripts.len()).map(|_| Fnv::new()).collect();
    for o in &report.outcomes {
        match o {
            TurnOutcome::Completed(r) => {
                let h = &mut hashes[r.session.index()];
                h.write(r.rendered.as_bytes());
                h.write(b"\n");
            }
            TurnOutcome::Rejected { .. } => unreachable!("unlimited tenant"),
        }
    }
    let stats = server.stats();
    (hashes.into_iter().map(|h| h.0).collect(), report.wall, stats.p50_us, stats.p99_us)
}

fn main() {
    let fast = std::env::var("CDA_BENCH_FAST").is_ok();
    let (sessions, turns_per_session) = if fast { (80, 16) } else { (1250, 80) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let multi_workers = cores.max(2);
    header(
        "E19",
        "multiplexed session runtime: determinism under concurrency + admission control",
    );
    println!(
        "sessions {sessions}  turns/session {turns_per_session}  total {}  cores {cores}",
        sessions * turns_per_session
    );

    let world = demo_world(42);
    let spec = LoadSpec { sessions, turns_per_session, seed: 0xE19 };
    let scripts = session_scripts(&world, spec);

    let (reference, t_serial) = timed(|| serial_hashes(&scripts));
    let (single, wall_1, p50_1, p99_1) = hosted_run(&scripts, 1);
    let (multi, wall_n, p50_n, p99_n) = hosted_run(&scripts, multi_workers);

    let total_turns = (sessions * turns_per_session) as f64;
    let tps = |wall: Duration| total_turns / wall.as_secs_f64().max(1e-9);
    let mismatches_1 = reference.iter().zip(&single).filter(|(a, b)| a != b).count();
    let mismatches_n = reference.iter().zip(&multi).filter(|(a, b)| a != b).count();

    row(&["run".into(), "workers".into(), "wall".into(), "turns/s".into(), "p50".into(), "p99".into(), "mismatches".into()]);
    row(&[
        "serial Session".into(),
        "-".into(),
        us(t_serial),
        f(tps(t_serial)),
        "-".into(),
        "-".into(),
        "0 (oracle)".into(),
    ]);
    row(&[
        "server".into(),
        "1".into(),
        us(wall_1),
        f(tps(wall_1)),
        format!("{p50_1}us"),
        format!("{p99_1}us"),
        mismatches_1.to_string(),
    ]);
    row(&[
        "server".into(),
        multi_workers.to_string(),
        us(wall_n),
        f(tps(wall_n)),
        format!("{p50_n}us"),
        format!("{p99_n}us"),
        mismatches_n.to_string(),
    ]);

    // ---- admission control: row-budget governor + tenant quota ----------
    println!("\n-- admission control (capped tenant) --");
    let mut server = Server::new(demo_world(42), ServerConfig::default());
    server.set_quota("capped", TenantQuota { max_turns: Some(6), max_estimated_rows: Some(1) });
    let id = server.open_session("capped");
    let narrow = "How many entries are in employment_by_type where type is part_time?";
    let wide = "What is the total employees in employment_by_type per canton?";
    let mut quota_rejects = 0usize;
    for i in 0..8 {
        let turn = if i % 2 == 0 { narrow } else { wide };
        if server.submit(id, turn).is_err() {
            quota_rejects += 1;
        }
    }
    let report = server.drain();
    let budget_rejects =
        report.outcomes.iter().filter(|o| matches!(o, TurnOutcome::Rejected { .. })).count();
    let executed = server.session_stats(id).map(|s| s.turns).unwrap_or(0);
    let stats = server.stats();
    row(&["submitted".into(), "quota-rejected".into(), "budget-rejected".into(), "executed".into()]);
    row(&[
        "8".into(),
        quota_rejects.to_string(),
        budget_rejects.to_string(),
        executed.to_string(),
    ]);
    let admission_ok = quota_rejects == 2
        && budget_rejects == 3
        && executed == 3
        && stats.rejected_quota == 2
        && stats.rejected_budget == 3;

    // ---- gates ----------------------------------------------------------
    let speedup = wall_1.as_secs_f64() / wall_n.as_secs_f64().max(1e-9);
    let (bound, bound_label) = match cores {
        0 | 1 => (0.7, "no-regression (single core)"),
        2 | 3 => (1.3, ">=1.3x (2-3 cores)"),
        _ => (2.0, ">=2x (>=4 cores)"),
    };
    if cores < 4 {
        println!(
            "\nnote: {cores} core(s) available — the >=2x multi-worker gate is waived; \
             requiring {bound}x ({bound_label}) instead"
        );
    }
    let mismatches = mismatches_1 + mismatches_n;
    let throughput_ok = speedup >= bound;
    println!(
        "\nacceptance: mismatches {} (==0: {})  speedup {:.2}x vs bound {}x [{}] (ok: {})  admission (ok: {})",
        mismatches,
        mismatches == 0,
        speedup,
        bound,
        bound_label,
        throughput_ok,
        admission_ok
    );
    if mismatches != 0 || !throughput_ok || !admission_ok {
        std::process::exit(1);
    }
}
