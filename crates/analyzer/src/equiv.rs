//! `equiv` — a static plan-equivalence engine over bound [`Plan`]s.
//!
//! Two queries that *mean* the same thing should be treated as the same
//! query: the optimizer's rewrites should be certifiable against their
//! inputs, the dialogue loop should reuse answers it has effectively already
//! computed, and consistency UQ should count agreement over meaning rather
//! than surface syntax. All three reduce to one static-analysis question —
//! "are these two plans equivalent?" — answered here in two stages:
//!
//! 1. **Canonicalization** ([`EquivEngine::canonicalize`]): a
//!    semantics-preserving normal form — constant folding, `Filter(TRUE)` /
//!    no-op `Limit` elimination, adjacent-filter merging, conjunction
//!    flattening with deterministically ordered atoms, bounded CNF
//!    distribution, comparison orientation, predicate-pushdown and
//!    projection-pushdown normal forms — hashed into a stable
//!    [`PlanFingerprint`]. Equal fingerprints certify equivalence
//!    *constructively*: both plans normalize to the same tree.
//! 2. **Bounded refutation search** ([`EquivEngine::check`]): when
//!    fingerprints differ, both plans are executed over small generated
//!    tables (typed values drawn from `cda-testkit`'s deterministic PRNG,
//!    including the adversarial ones: zeros, empty strings, NULLs). A
//!    behavioural difference yields [`EquivResult::NotEquivalent`] with an
//!    auditable, re-checkable [`Counterexample`]; exhausting the budget
//!    yields [`EquivResult::Unknown`] — never a false `Equivalent`.
//!
//! The engine is **sequence-semantics** strict: equal fingerprints imply
//! byte-identical result tables including row order (which is what lets the
//! semantic answer cache serve stored `QueryResult`s verbatim). This rules
//! out join-side commutation — the nested-loop executor's row order is
//! left-major — so join *conditions* and conjunctions are canonicalized but
//! join operands are not swapped.
//!
//! Every reordering rule is gated on [`error_free`]: an atom that can raise
//! a runtime error (division/modulo by zero, arithmetic or `NOT`/`LIKE` over
//! a value of the wrong type) is never moved relative to its neighbours,
//! because `AND`/`OR` short-circuit and a reorder could change *whether* the
//! error fires. DESIGN.md §11 carries the per-rule soundness arguments.
//!
//! The module deliberately re-implements folding, pushdown, and pruning
//! instead of calling `cda_sql::optimizer`: the **differential certifier**
//! ([`certify_optimizer`]) checks the optimizer's rewrites against their
//! inputs, and sharing rewrite code would let one bug corrupt both sides of
//! the comparison. The only shared code is [`BoundExpr::eval`] — the
//! semantics being preserved.

use crate::sqlcheck::{Code, Finding};
use cda_dataframe::{Column, DataType, Schema, Table, Value};
use cda_sql::ast::{BinaryOp, JoinKind};
use cda_sql::exec::{execute_plan, ExecOptions};
use cda_sql::optimizer::{optimize, OptimizerRules};
use cda_sql::plan::{AggExpr, BoundExpr, Plan};
use cda_sql::planner::plan_select;
use cda_sql::Catalog;
use cda_testkit::rng::StdRng;
use std::collections::BTreeMap;
use std::fmt;

/// A stable 64-bit fingerprint of a canonicalized plan. Equal fingerprints
/// certify plan equivalence under sequence semantics (equal result tables,
/// row order included, with runtime errors identified with each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(u64);

impl PlanFingerprint {
    /// The raw 64-bit hash (for use as a cache key).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The outcome of an equivalence check. Always auditable: `Equivalent`
/// carries the shared fingerprint, `NotEquivalent` a re-checkable
/// counterexample, `Unknown` the reason the search gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivResult {
    /// Both plans canonicalize to the same tree.
    Equivalent {
        /// The shared fingerprint of the canonical form.
        fingerprint: PlanFingerprint,
    },
    /// A generated database on which the two plans disagree.
    NotEquivalent {
        /// The witnessing database and both observed outcomes.
        counterexample: Counterexample,
    },
    /// Fingerprints differ and the bounded search found no counterexample.
    Unknown {
        /// Why the check could not decide.
        reason: String,
    },
}

impl EquivResult {
    /// True for `Equivalent`.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent { .. })
    }

    /// Short label for reports: `equivalent` / `not-equivalent` / `unknown`.
    pub fn label(&self) -> &'static str {
        match self {
            EquivResult::Equivalent { .. } => "equivalent",
            EquivResult::NotEquivalent { .. } => "not-equivalent",
            EquivResult::Unknown { .. } => "unknown",
        }
    }
}

/// A concrete database on which two plans produced different outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The generated base tables, by catalog name.
    pub tables: Vec<(String, Table)>,
    /// Rendered outcome of the left plan on those tables.
    pub left_outcome: String,
    /// Rendered outcome of the right plan on those tables.
    pub right_outcome: String,
}

impl Counterexample {
    /// Re-execute both plans over the stored tables and confirm the
    /// divergence still reproduces (same pair of outcomes, still unequal).
    pub fn recheck(&self, left: &Plan, right: &Plan) -> bool {
        let Ok(catalog) = self.build_catalog() else { return false };
        let l = run_outcome(&catalog, left);
        let r = run_outcome(&catalog, right);
        l != r && l == self.left_outcome && r == self.right_outcome
    }

    fn build_catalog(&self) -> Result<Catalog, cda_sql::SqlError> {
        let mut c = Catalog::new();
        for (name, t) in &self.tables {
            c.register(name, t.clone())?;
        }
        Ok(c)
    }

    /// Render the witness: every generated table plus both outcomes.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (name, t) in &self.tables {
            out.push_str(&format!("table {name} ({} rows):\n{}", t.num_rows(), t.render(16)));
            out.push('\n');
        }
        out.push_str(&format!("left plan yields:\n{}\n", self.left_outcome));
        out.push_str(&format!("right plan yields:\n{}", self.right_outcome));
        out
    }
}

/// The equivalence engine: canonicalization plus a bounded, seeded
/// refutation search.
///
/// ```
/// # use cda_analyzer::equiv::EquivEngine;
/// # let catalog = cda_sql::Catalog::new();
/// let engine = EquivEngine::new().with_trials(6).with_seed(42);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EquivEngine {
    trials: usize,
    seed: u64,
    max_cnf_atoms: usize,
}

impl Default for EquivEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Row counts cycled through by the refutation trials: empty and tiny
/// tables surface edge behaviour (empty joins, single-group aggregates)
/// faster than big ones.
const TRIAL_SIZES: [usize; 6] = [0, 1, 2, 3, 5, 8];

impl EquivEngine {
    /// An engine with the default budget (6 refutation trials, seed 0,
    /// CNF distribution bounded at 16 atoms).
    pub fn new() -> Self {
        Self { trials: 6, seed: 0, max_cnf_atoms: 16 }
    }

    /// Set the number of generated databases tried before answering
    /// `Unknown`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Seed the deterministic table generator.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bound the atom count up to which OR-over-AND is distributed into CNF.
    pub fn with_max_cnf_atoms(mut self, atoms: usize) -> Self {
        self.max_cnf_atoms = atoms;
        self
    }

    /// Canonicalize a plan: the semantics-preserving normal form whose hash
    /// is the plan's fingerprint.
    pub fn canonicalize(&self, plan: &Plan) -> Plan {
        let p = simplify_plan(plan.clone());
        let p = pushdown_nf(p);
        let p = projection_nf(p);
        normalize_plan_exprs(p, self.max_cnf_atoms)
    }

    /// The fingerprint of a plan's canonical form.
    pub fn fingerprint(&self, plan: &Plan) -> PlanFingerprint {
        let canon = self.canonicalize(plan);
        let mut ser = String::new();
        ser_plan(&canon, &mut ser);
        PlanFingerprint(fnv1a(ser.as_bytes()))
    }

    /// Decide whether two plans are equivalent: fingerprint first, bounded
    /// refutation search second.
    pub fn check(&self, left: &Plan, right: &Plan) -> EquivResult {
        let fl = self.fingerprint(left);
        let fr = self.fingerprint(right);
        if fl == fr {
            return EquivResult::Equivalent { fingerprint: fl };
        }
        // Fingerprints differ: search small generated databases for a
        // behavioural difference.
        let schemas = match scan_schemas(left).and_then(|mut s| {
            merge_scan_schemas(&mut s, right)?;
            Some(s)
        }) {
            Some(s) => s,
            None => {
                return EquivResult::Unknown {
                    reason: "the plans reference the same table with different schemas".into(),
                }
            }
        };
        // Domain fast path: when abstract interpretation proves exactly one
        // side empty on *every* database, a synthesized witness refutes
        // equivalence without entering the bounded search.
        if let Some(counterexample) = self.refute_by_domains(left, right) {
            return EquivResult::NotEquivalent { counterexample };
        }
        let pools = ValuePools::from_plans(&[left, right]);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for trial in 0..self.trials {
            let rows = TRIAL_SIZES[trial % TRIAL_SIZES.len()];
            let mut tables = Vec::new();
            let mut catalog = Catalog::new();
            let mut ok = true;
            for (name, schema) in &schemas {
                let t = gen_table(schema, rows, &mut rng, &pools);
                if catalog.register(name, t.clone()).is_err() {
                    ok = false;
                    break;
                }
                tables.push((name.clone(), t));
            }
            if !ok {
                continue;
            }
            let lo = run_outcome(&catalog, left);
            let ro = run_outcome(&catalog, right);
            if lo != ro {
                return EquivResult::NotEquivalent {
                    counterexample: Counterexample {
                        tables,
                        left_outcome: lo,
                        right_outcome: ro,
                    },
                };
            }
        }
        EquivResult::Unknown {
            reason: format!(
                "fingerprints differ ({fl} vs {fr}) and {} refutation trials found no \
                 counterexample",
                self.trials
            ),
        }
    }

    /// The domain-disjointness fast path of [`check`](Self::check), public
    /// so its guarantee is directly testable: when [`crate::absint`] proves
    /// (statistics-free, i.e. on **every** database) that exactly one of
    /// the two plans returns no rows, the plans can only be equivalent if
    /// the live one also never returns rows — so any database on which the
    /// live plan produces output is a concrete counterexample. The live
    /// plan's own refined filter domains describe such rows, and
    /// [`cda_dataframe::domain::ColDomain::sample`] turns them into a
    /// witness database directly instead of searching for one. Returns the
    /// (re-checkable) counterexample, or `None` when the fast path does not
    /// apply or witness synthesis failed — never a false refutation, since
    /// the counterexample is a genuine behavioural divergence by
    /// construction.
    pub fn refute_by_domains(&self, left: &Plan, right: &Plan) -> Option<Counterexample> {
        let l_empty = crate::absint::row_bounds(left, None).1 == 0;
        let r_empty = crate::absint::row_bounds(right, None).1 == 0;
        if l_empty == r_empty {
            return None;
        }
        let live = if l_empty { right } else { left };
        let schemas = scan_schemas(left).and_then(|mut s| {
            merge_scan_schemas(&mut s, right)?;
            Some(s)
        })?;
        let pools = ValuePools::from_plans(&[left, right]);
        let tree = crate::absint::domain_tree(live, None);
        let mut samples: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        collect_scan_samples(live, &tree, &mut samples);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD0BA_51C5);
        for attempt in 0..4usize {
            let mut tables = Vec::new();
            let mut catalog = Catalog::new();
            let mut ok = true;
            for (name, schema) in &schemas {
                // First attempts use the domain-guided witness row; later
                // ones fall back to pool-generated tables in case a sample
                // was unavailable or the live plan still returned nothing.
                let t = match samples.get(name) {
                    Some(row) if attempt < 2 => table_from_row(schema, row)
                        .unwrap_or_else(|| gen_table(schema, 1 + attempt, &mut rng, &pools)),
                    _ => gen_table(schema, 1 + attempt, &mut rng, &pools),
                };
                if catalog.register(name, t.clone()).is_err() {
                    ok = false;
                    break;
                }
                tables.push((name.clone(), t));
            }
            if !ok {
                continue;
            }
            let lo = run_outcome(&catalog, left);
            let ro = run_outcome(&catalog, right);
            if lo != ro {
                return Some(Counterexample { tables, left_outcome: lo, right_outcome: ro });
            }
        }
        None
    }
}

/// Sample one surviving row per scanned table from the refined domains of
/// filters sitting directly above scans (where the filter's column space is
/// the scan's). The row is full-base-schema width; un-projected columns
/// stay NULL (base-table fields are nullable).
fn collect_scan_samples(
    plan: &Plan,
    tree: &cda_dataframe::DomainTree,
    out: &mut BTreeMap<String, Vec<Value>>,
) {
    if let Plan::Filter { input, .. } = plan {
        if let Plan::Scan { table, schema, projection } = input.as_ref() {
            if !out.contains_key(table) {
                if let Some(row) = row_from_domains(schema, projection, &tree.node.cols) {
                    out.insert(table.clone(), row);
                }
            }
        }
    }
    let children: Vec<&Plan> = match plan {
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => vec![input],
        Plan::Join { left, right, .. } => vec![left, right],
        Plan::Scan { .. } => vec![],
    };
    for (child_plan, child_tree) in children.into_iter().zip(&tree.children) {
        collect_scan_samples(child_plan, child_tree, out);
    }
}

fn row_from_domains(
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    cols: &[cda_dataframe::ColDomain],
) -> Option<Vec<Value>> {
    let positions: Vec<usize> = match projection {
        Some(p) => p.clone(),
        None => (0..schema.len()).collect(),
    };
    let mut row = vec![Value::Null; schema.len()];
    for (k, &pos) in positions.iter().enumerate() {
        if pos >= row.len() {
            return None;
        }
        row[pos] = cols.get(k)?.sample()?;
    }
    Some(row)
}

fn table_from_row(schema: &Schema, row: &[Value]) -> Option<Table> {
    let mut columns = Vec::with_capacity(schema.len());
    for (i, field) in schema.fields().iter().enumerate() {
        // Finite value sets track literals as written; coerce the numeric
        // spellings the executor treats as equal into the column's type.
        let v = match (field.data_type(), row.get(i)?.clone()) {
            (DataType::Float, Value::Int(x)) => Value::Float(x as f64),
            (DataType::Timestamp, Value::Int(x)) => Value::Timestamp(x),
            (_, v) => v,
        };
        columns.push(Column::from_values(field.data_type(), &[v]).ok()?);
    }
    Table::from_columns(schema.clone(), columns).ok()
}

// ------------------------------------------------------------ certification

/// One rewrite checked by the differential certifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleCheck {
    /// The optimizer rule (or rule set) that produced the rewrite.
    pub rule: &'static str,
    /// The SQL whose plan was rewritten.
    pub sql: String,
    /// The equivalence verdict for input plan vs rewritten plan.
    pub result: EquivResult,
}

/// The certifier's verdict over a query corpus × the optimizer rule set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EquivReport {
    /// Every (query, rule) rewrite checked.
    pub checks: Vec<RuleCheck>,
}

impl EquivReport {
    /// True when every rewrite certified `Equivalent`.
    pub fn all_certified(&self) -> bool {
        self.checks.iter().all(|c| c.result.is_equivalent())
    }

    /// Number of rewrites that certified `Equivalent`.
    pub fn certified(&self) -> usize {
        self.checks.iter().filter(|c| c.result.is_equivalent()).count()
    }

    /// The checks that failed to certify, worst first (`NotEquivalent`
    /// before `Unknown`).
    pub fn uncertified(&self) -> Vec<&RuleCheck> {
        let mut out: Vec<&RuleCheck> =
            self.checks.iter().filter(|c| !c.result.is_equivalent()).collect();
        out.sort_by_key(|c| match c.result {
            EquivResult::NotEquivalent { .. } => 0,
            _ => 1,
        });
        out
    }

    /// Surface uncertified rewrites as analyzer findings (A014), one per
    /// failing (query, rule) pair, refuted rewrites first.
    pub fn findings(&self) -> Vec<Finding> {
        self.uncertified()
            .into_iter()
            .map(|c| {
                let detail = match &c.result {
                    EquivResult::NotEquivalent { counterexample } => format!(
                        "is provably not semantics-preserving; counterexample:\n{}",
                        counterexample.describe()
                    ),
                    EquivResult::Unknown { reason } => {
                        format!("could not be certified ({reason})")
                    }
                    EquivResult::Equivalent { .. } => unreachable!(), // lint: allow(R002) uncertified() filters these
                };
                Finding::new(
                    Code::UncertifiedRewrite,
                    format!("optimizer rule `{}` on `{}` {detail}", c.rule, c.sql),
                )
            })
            .collect()
    }
}

/// The individually-certified optimizer rule set: each rule alone, plus the
/// composed default. Kept in sync with [`OptimizerRules`] — the certifier
/// covers 100% of the rules the optimizer can apply.
pub const CERTIFIED_RULES: [(&str, OptimizerRules); 4] = [
    (
        "constant_folding",
        OptimizerRules { constant_folding: true, predicate_pushdown: false, projection_pruning: false },
    ),
    (
        "predicate_pushdown",
        OptimizerRules { constant_folding: false, predicate_pushdown: true, projection_pruning: false },
    ),
    (
        "projection_pruning",
        OptimizerRules { constant_folding: false, predicate_pushdown: false, projection_pruning: true },
    ),
    (
        "all",
        OptimizerRules { constant_folding: true, predicate_pushdown: true, projection_pruning: true },
    ),
];

/// Differentially certify the optimizer over a query corpus: for every
/// query that plans, check each rule's output (and the composed rule set)
/// against the unoptimized plan. Unparsable/unplannable queries are skipped
/// — there is no rewrite to certify.
pub fn certify_optimizer(engine: &EquivEngine, catalog: &Catalog, queries: &[String]) -> EquivReport {
    let mut report = EquivReport::default();
    for sql in queries {
        let Ok(select) = cda_sql::parser::parse(sql) else { continue };
        let Ok(plan) = plan_select(catalog, &select) else { continue };
        for (rule, rules) in CERTIFIED_RULES {
            let rewritten = optimize(plan.clone(), rules);
            let result = engine.check(&plan, &rewritten);
            report.checks.push(RuleCheck { rule, sql: sql.clone(), result });
        }
    }
    report
}

// ------------------------------------------------------------- error-free

/// True when evaluating `e` can never return `Err` on any row of the right
/// arity, for any input values. Conservative and purely syntactic: atoms
/// containing arithmetic (division by zero; `+`/`-`/`*` over non-numeric
/// values), `Neg`, `LIKE` (errors on non-string input), `CASE`, or boolean
/// connectives over operands not provably boolean-valued are treated as
/// fallible. Only error-free atoms may be reordered, deduplicated, or
/// distributed — `AND`/`OR` short-circuit, so moving a fallible atom can
/// change whether its error fires.
pub fn error_free(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Literal(_) | BoundExpr::Column(_) => true,
        BoundExpr::Binary { left, op, right } => {
            if op.is_comparison() {
                // sql_cmp is total: the comparison itself never errors.
                error_free(left) && error_free(right)
            } else if matches!(op, BinaryOp::And | BinaryOp::Or) {
                bool_shaped(left)
                    && bool_shaped(right)
                    && error_free(left)
                    && error_free(right)
            } else {
                false // arithmetic: / and % by zero, type errors on + - *
            }
        }
        BoundExpr::Neg(_) => false, // errors on non-numeric input
        BoundExpr::Not(x) => bool_shaped(x) && error_free(x),
        BoundExpr::IsNull { expr, .. } => error_free(expr),
        BoundExpr::InList { expr, list, .. } => {
            error_free(expr) && list.iter().all(error_free)
        }
        BoundExpr::Between { expr, low, high, .. } => {
            error_free(expr) && error_free(low) && error_free(high)
        }
        BoundExpr::Like { .. } => false, // errors on non-string input
        BoundExpr::Case { .. } => false,
    }
}

/// True when `e` provably evaluates to a boolean or NULL (so `AND`/`OR`/
/// `NOT` over it cannot raise a type error). Column references are *not*
/// boolean-shaped: their type is unknown here.
fn bool_shaped(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Literal(Value::Bool(_)) | BoundExpr::Literal(Value::Null) => true,
        BoundExpr::Binary { op, .. } => {
            op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or)
        }
        BoundExpr::Not(x) => bool_shaped(x),
        BoundExpr::IsNull { .. }
        | BoundExpr::InList { .. }
        | BoundExpr::Between { .. }
        | BoundExpr::Like { .. } => true,
        _ => false,
    }
}

// -------------------------------------------------- pass 1: simplification

/// Bottom-up structural simplification: constant folding, `Filter(TRUE)`
/// elimination, no-op `Limit` elimination, adjacent-filter merging (gated
/// on the outer predicate being error-free), and scan-projection
/// normalization.
fn simplify_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Scan { table, schema, projection } => {
            // `Some` over all columns in order ≡ `None`: one representation.
            let projection = projection.filter(|p| {
                p.len() != schema.len() || p.iter().enumerate().any(|(i, &c)| i != c)
            });
            Plan::Scan { table, schema, projection }
        }
        Plan::Filter { input, predicate } => {
            let input = simplify_plan(*input);
            let predicate = fold_expr(predicate);
            if matches!(predicate, BoundExpr::Literal(Value::Bool(true))) {
                return input;
            }
            // Merge Filter(Filter(in, p1), p2) → Filter(in, p1 AND p2):
            // sound only when p2 is error-free (p1 = NULL short-circuits
            // differently: unmerged never evaluates p2 on that row).
            if error_free(&predicate) {
                if let Plan::Filter { input: inner, predicate: inner_pred } = input {
                    return simplify_plan(Plan::Filter {
                        input: inner,
                        predicate: BoundExpr::Binary {
                            left: Box::new(inner_pred),
                            op: BinaryOp::And,
                            right: Box::new(predicate),
                        },
                    });
                }
            }
            Plan::Filter { input: Box::new(input), predicate }
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(simplify_plan(*left)),
            right: Box::new(simplify_plan(*right)),
            kind,
            on: fold_expr(on),
        },
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(simplify_plan(*input)),
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        Plan::Aggregate { input, group_exprs, aggs, schema } => Plan::Aggregate {
            input: Box::new(simplify_plan(*input)),
            group_exprs: group_exprs.into_iter().map(fold_expr).collect(),
            aggs: aggs
                .into_iter()
                .map(|a| AggExpr { kind: a.kind, arg: a.arg.map(fold_expr) })
                .collect(),
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(simplify_plan(*input)) },
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(simplify_plan(*input)), keys },
        Plan::Limit { input, limit, offset } => {
            let input = simplify_plan(*input);
            if limit.is_none() && offset == 0 {
                return input; // no-op
            }
            Plan::Limit { input: Box::new(input), limit, offset }
        }
    }
}

/// Independent constant folding (mirrors the semantics, not the optimizer's
/// code): any constant subtree whose evaluation succeeds becomes a literal;
/// erroring constants (e.g. `1/0`) are left intact so errors still fire.
fn fold_expr(e: BoundExpr) -> BoundExpr {
    let folded = map_children(e, &fold_expr);
    if !matches!(folded, BoundExpr::Literal(_)) && folded.is_constant() {
        if let Ok(v) = folded.eval(&[]) {
            return BoundExpr::Literal(v);
        }
    }
    folded
}

/// Apply `f` to every direct child expression.
fn map_children(e: BoundExpr, f: &impl Fn(BoundExpr) -> BoundExpr) -> BoundExpr {
    match e {
        BoundExpr::Literal(_) | BoundExpr::Column(_) => e,
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(f(*left)),
            op,
            right: Box::new(f(*right)),
        },
        BoundExpr::Neg(x) => BoundExpr::Neg(Box::new(f(*x))),
        BoundExpr::Not(x) => BoundExpr::Not(Box::new(f(*x))),
        BoundExpr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(f(*expr)), negated }
        }
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(f(*expr)),
            list: list.into_iter().map(f).collect(),
            negated,
        },
        BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(f(*expr)),
            low: Box::new(f(*low)),
            high: Box::new(f(*high)),
            negated,
        },
        BoundExpr::Like { expr, pattern, negated } => {
            BoundExpr::Like { expr: Box::new(f(*expr)), pattern, negated }
        }
        BoundExpr::Case { branches, else_expr } => BoundExpr::Case {
            branches: branches.into_iter().map(|(c, v)| (f(c), f(v))).collect(),
            else_expr: else_expr.map(|x| Box::new(f(*x))),
        },
    }
}

// --------------------------------------- pass 2: predicate-pushdown normal form

/// Push filters below inner joins, mirroring the (fixed) optimizer rule:
/// a conjunction is split and pushed only when **every** conjunct is
/// error-free — otherwise the whole filter stays put, because separating a
/// fallible conjunct from its neighbours changes which rows it evaluates on.
fn pushdown_nf(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = pushdown_nf(*input);
            push_filter_nf(input, predicate)
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(pushdown_nf(*left)),
            right: Box::new(pushdown_nf(*right)),
            kind,
            on,
        },
        Plan::Project { input, exprs, schema } => {
            Plan::Project { input: Box::new(pushdown_nf(*input)), exprs, schema }
        }
        Plan::Aggregate { input, group_exprs, aggs, schema } => {
            Plan::Aggregate { input: Box::new(pushdown_nf(*input)), group_exprs, aggs, schema }
        }
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(pushdown_nf(*input)) },
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(pushdown_nf(*input)), keys },
        Plan::Limit { input, limit, offset } => {
            Plan::Limit { input: Box::new(pushdown_nf(*input)), limit, offset }
        }
        scan @ Plan::Scan { .. } => scan,
    }
}

fn split_and(e: BoundExpr, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            split_and(*left, out);
            split_and(*right, out);
        }
        other => out.push(other),
    }
}

fn and_all(conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| BoundExpr::Binary {
        left: Box::new(acc),
        op: BinaryOp::And,
        right: Box::new(c),
    }))
}

fn push_filter_nf(input: Plan, predicate: BoundExpr) -> Plan {
    match input {
        Plan::Join { left, right, kind: JoinKind::Inner, on } => {
            let mut conjuncts = Vec::new();
            split_and(predicate, &mut conjuncts);
            if !conjuncts.iter().all(error_free) {
                // A fallible conjunct pins the whole predicate above the join.
                let pred = and_all(conjuncts);
                let join = Plan::Join { left, right, kind: JoinKind::Inner, on };
                return match pred {
                    Some(p) => Plan::Filter { input: Box::new(join), predicate: p },
                    None => join,
                };
            }
            let left_arity = left.arity();
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                if cols.iter().all(|&i| i < left_arity) {
                    left_preds.push(c);
                } else if cols.iter().all(|&i| i >= left_arity) {
                    right_preds.push(c.remap_columns(&|i| i - left_arity));
                } else {
                    keep.push(c);
                }
            }
            let mut new_left = *left;
            for p in left_preds {
                new_left = push_filter_nf(new_left, p);
            }
            let mut new_right = *right;
            for p in right_preds {
                new_right = push_filter_nf(new_right, p);
            }
            let join = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind: JoinKind::Inner,
                on,
            };
            match and_all(keep) {
                Some(p) => Plan::Filter { input: Box::new(join), predicate: p },
                None => join,
            }
        }
        Plan::Filter { input: inner, predicate: inner_pred } => {
            if error_free(&predicate) {
                let combined = BoundExpr::Binary {
                    left: Box::new(inner_pred),
                    op: BinaryOp::And,
                    right: Box::new(predicate),
                };
                push_filter_nf(*inner, combined)
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Filter { input: inner, predicate: inner_pred }),
                    predicate,
                }
            }
        }
        other => Plan::Filter { input: Box::new(other), predicate },
    }
}

// -------------------------------------- pass 3: projection-pushdown normal form

/// Narrow base-table scans to the columns actually consumed, mirroring the
/// optimizer's pruning rule (independently implemented). Projections and
/// aggregates trigger narrowing; filters and joins propagate it; every
/// other operator is a barrier.
fn projection_nf(plan: Plan) -> Plan {
    match plan {
        Plan::Project { input, exprs, schema } => {
            let mut need = Vec::new();
            for e in &exprs {
                e.collect_columns(&mut need);
            }
            let (narrowed, remap) = narrow_nf(*input, need);
            let exprs = exprs.into_iter().map(|e| e.remap_columns(&|i| remap(i))).collect();
            Plan::Project { input: Box::new(narrowed), exprs, schema }
        }
        Plan::Aggregate { input, group_exprs, aggs, schema } => {
            let mut need = Vec::new();
            for e in &group_exprs {
                e.collect_columns(&mut need);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.collect_columns(&mut need);
                }
            }
            let (narrowed, remap) = narrow_nf(*input, need);
            let group_exprs =
                group_exprs.into_iter().map(|e| e.remap_columns(&|i| remap(i))).collect();
            let aggs = aggs
                .into_iter()
                .map(|a| AggExpr { kind: a.kind, arg: a.arg.map(|x| x.remap_columns(&|i| remap(i))) })
                .collect();
            Plan::Aggregate { input: Box::new(narrowed), group_exprs, aggs, schema }
        }
        Plan::Filter { input, predicate } => {
            Plan::Filter { input: Box::new(projection_nf(*input)), predicate }
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(projection_nf(*left)),
            right: Box::new(projection_nf(*right)),
            kind,
            on,
        },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(projection_nf(*input)) },
        Plan::Sort { input, keys } => {
            Plan::Sort { input: Box::new(projection_nf(*input)), keys }
        }
        Plan::Limit { input, limit, offset } => {
            Plan::Limit { input: Box::new(projection_nf(*input)), limit, offset }
        }
        scan @ Plan::Scan { .. } => scan,
    }
}

type RemapFn = Box<dyn Fn(usize) -> usize>;

fn narrow_nf(plan: Plan, need: Vec<usize>) -> (Plan, RemapFn) {
    match plan {
        Plan::Scan { table, schema, projection } => {
            // Output positions consumed → base-table columns, sorted/deduped.
            let base_of_out: Vec<usize> = match &projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            let mut base: Vec<usize> = need
                .iter()
                .filter_map(|&i| base_of_out.get(i).copied())
                .collect();
            base.sort_unstable();
            base.dedup();
            let mapping: BTreeMap<usize, usize> = base_of_out
                .iter()
                .enumerate()
                .filter_map(|(out_pos, col)| {
                    base.iter().position(|c| c == col).map(|new| (out_pos, new))
                })
                .collect();
            // Full-width identity projections normalize back to `None`.
            let projection = Some(base).filter(|p| {
                p.len() != schema.len() || p.iter().enumerate().any(|(i, &c)| i != c)
            });
            let scan = Plan::Scan { table, schema, projection };
            (scan, Box::new(move |i| mapping.get(&i).copied().unwrap_or(0)))
        }
        Plan::Filter { input, predicate } => {
            let mut need = need;
            predicate.collect_columns(&mut need);
            let (narrowed, remap) = narrow_nf(*input, need);
            let predicate = predicate.remap_columns(&|i| remap(i));
            (Plan::Filter { input: Box::new(narrowed), predicate }, remap)
        }
        Plan::Join { left, right, kind, on } => {
            let left_arity = left.arity();
            let mut need = need;
            on.collect_columns(&mut need);
            let left_need: Vec<usize> =
                need.iter().copied().filter(|&i| i < left_arity).collect();
            let right_need: Vec<usize> = need
                .iter()
                .copied()
                .filter(|&i| i >= left_arity)
                .map(|i| i - left_arity)
                .collect();
            let (nl, rl) = narrow_nf(*left, left_need);
            let (nr, rr) = narrow_nf(*right, right_need);
            let new_left_arity = nl.arity();
            let remap: RemapFn = Box::new(move |i| {
                if i < left_arity {
                    rl(i)
                } else {
                    new_left_arity + rr(i - left_arity)
                }
            });
            let on = on.remap_columns(&|i| remap(i));
            (Plan::Join { left: Box::new(nl), right: Box::new(nr), kind, on }, remap)
        }
        other => (projection_nf(other), Box::new(|i| i)),
    }
}

// --------------------------------------- pass 4: expression normalization

fn normalize_plan_exprs(plan: Plan, max_cnf: usize) -> Plan {
    match plan {
        scan @ Plan::Scan { .. } => scan,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(normalize_plan_exprs(*input, max_cnf)),
            predicate: norm_expr(predicate, max_cnf),
        },
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(normalize_plan_exprs(*left, max_cnf)),
            right: Box::new(normalize_plan_exprs(*right, max_cnf)),
            kind,
            on: norm_expr(on, max_cnf),
        },
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(normalize_plan_exprs(*input, max_cnf)),
            exprs: exprs.into_iter().map(|e| norm_expr(e, max_cnf)).collect(),
            schema,
        },
        Plan::Aggregate { input, group_exprs, aggs, schema } => Plan::Aggregate {
            input: Box::new(normalize_plan_exprs(*input, max_cnf)),
            group_exprs: group_exprs.into_iter().map(|e| norm_expr(e, max_cnf)).collect(),
            aggs: aggs
                .into_iter()
                .map(|a| AggExpr { kind: a.kind, arg: a.arg.map(|x| norm_expr(x, max_cnf)) })
                .collect(),
            schema,
        },
        Plan::Distinct { input } => {
            Plan::Distinct { input: Box::new(normalize_plan_exprs(*input, max_cnf)) }
        }
        Plan::Sort { input, keys } => {
            Plan::Sort { input: Box::new(normalize_plan_exprs(*input, max_cnf)), keys }
        }
        Plan::Limit { input, limit, offset } => Plan::Limit {
            input: Box::new(normalize_plan_exprs(*input, max_cnf)),
            limit,
            offset,
        },
    }
}

/// Normalize one expression: orient comparisons, eliminate double negation,
/// flatten + order + deduplicate error-free conjunctions/disjunctions, and
/// distribute OR over AND into CNF within the atom budget.
fn norm_expr(e: BoundExpr, max_cnf: usize) -> BoundExpr {
    let e = map_children(e, &|c| norm_expr(c, max_cnf));
    match e {
        // NOT NOT x ≡ x in three-valued logic (¬¬T=T, ¬¬F=F, ¬¬N=N) and
        // both forms evaluate x exactly once: same errors.
        BoundExpr::Not(inner) => match *inner {
            BoundExpr::Not(x) if bool_shaped(&x) => *x,
            other => BoundExpr::Not(Box::new(other)),
        },
        BoundExpr::Binary { left, op, right } => norm_binary(*left, op, *right, max_cnf),
        BoundExpr::InList { expr, mut list, negated } => {
            // Membership is order-insensitive for error-free items (the
            // early return on a match cannot change the result, only which
            // items are *looked at* — and error-free items cannot error).
            if list.iter().all(error_free) {
                list.sort_by_key(ser_key);
                list.dedup();
            }
            BoundExpr::InList { expr, list, negated }
        }
        other => other,
    }
}

fn norm_binary(left: BoundExpr, op: BinaryOp, right: BoundExpr, max_cnf: usize) -> BoundExpr {
    use BinaryOp::*;
    match op {
        // Orient strict/loose comparisons one way. Both operands are always
        // evaluated either way, so this is sound even for fallible operands
        // (runtime errors are identified with each other).
        Gt => BoundExpr::Binary { left: Box::new(right), op: Lt, right: Box::new(left) },
        GtEq => BoundExpr::Binary { left: Box::new(right), op: LtEq, right: Box::new(left) },
        // Symmetric comparisons: order operands canonically.
        Eq | NotEq => {
            let (l, r) = if ser_key(&left) <= ser_key(&right) {
                (left, right)
            } else {
                (right, left)
            };
            BoundExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
        }
        And => norm_connective(left, And, right, max_cnf),
        Or => norm_connective(left, Or, right, max_cnf),
        _ => BoundExpr::Binary { left: Box::new(left), op, right: Box::new(right) },
    }
}

fn flatten(e: BoundExpr, op: BinaryOp, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::Binary { left, op: o, right } if o == op => {
            flatten(*left, op, out);
            flatten(*right, op, out);
        }
        other => out.push(other),
    }
}

fn rebuild(mut parts: Vec<BoundExpr>, op: BinaryOp) -> BoundExpr {
    // Non-empty by construction: flatten() always pushes at least one atom.
    let first = parts.remove(0);
    parts.into_iter().fold(first, |acc, p| BoundExpr::Binary {
        left: Box::new(acc),
        op,
        right: Box::new(p),
    })
}

/// Normalize an `AND`/`OR` spine: flatten; when **all** atoms are
/// error-free, sort + deduplicate them (Kleene AND/OR are commutative,
/// associative, and idempotent, and error-free atoms make evaluation-order
/// changes unobservable), and for `OR` distribute over inner `AND`s into
/// CNF while the atom count stays within budget. Any fallible atom freezes
/// the original order.
fn norm_connective(left: BoundExpr, op: BinaryOp, right: BoundExpr, max_cnf: usize) -> BoundExpr {
    let mut parts = Vec::new();
    flatten(left, op, &mut parts);
    flatten(right, op, &mut parts);
    if !parts.iter().all(error_free) {
        return rebuild(parts, op);
    }
    if op == BinaryOp::Or {
        // CNF: (a AND b) OR c → (a OR c) AND (b OR c). Cross the conjunct
        // sets of every disjunct; bail out when the result would exceed the
        // atom budget.
        let conjunct_sets: Vec<Vec<BoundExpr>> = parts
            .iter()
            .map(|p| {
                let mut cs = Vec::new();
                flatten(p.clone(), BinaryOp::And, &mut cs);
                cs
            })
            .collect();
        let product: usize = conjunct_sets.iter().map(Vec::len).product();
        if product > 1 {
            let total_atoms = product * conjunct_sets.len();
            if total_atoms <= max_cnf {
                let mut clauses: Vec<Vec<BoundExpr>> = vec![Vec::new()];
                for set in &conjunct_sets {
                    let mut next = Vec::new();
                    for clause in &clauses {
                        for c in set {
                            let mut cl = clause.clone();
                            cl.push(c.clone());
                            next.push(cl);
                        }
                    }
                    clauses = next;
                }
                let conjuncts: Vec<BoundExpr> = clauses
                    .into_iter()
                    .map(|disjuncts| sort_dedup_rebuild(disjuncts, BinaryOp::Or))
                    .collect();
                return sort_dedup_rebuild(conjuncts, BinaryOp::And);
            }
        }
    }
    sort_dedup_rebuild(parts, op)
}

fn sort_dedup_rebuild(mut parts: Vec<BoundExpr>, op: BinaryOp) -> BoundExpr {
    parts.sort_by_key(ser_key);
    parts.dedup();
    rebuild(parts, op)
}

// ------------------------------------------------------------ serialization

/// Structural sort key of an expression (its canonical serialization).
fn ser_key(e: &BoundExpr) -> String {
    let mut s = String::new();
    ser_expr(e, &mut s);
    s
}

fn ser_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Int(i) => out.push_str(&format!("i:{i}")),
        // Bit pattern, not decimal rendering: -0.0 vs 0.0 and NaN payloads
        // must not collide or diverge between runs.
        Value::Float(f) => out.push_str(&format!("f:{:016x}", f.to_bits())),
        Value::Str(s) => out.push_str(&format!("s:{}:{s}", s.len())),
        Value::Bool(b) => out.push_str(&format!("b:{b}")),
        Value::Timestamp(t) => out.push_str(&format!("t:{t}")),
    }
}

fn ser_expr(e: &BoundExpr, out: &mut String) {
    match e {
        BoundExpr::Literal(v) => {
            out.push_str("lit(");
            ser_value(v, out);
            out.push(')');
        }
        BoundExpr::Column(i) => out.push_str(&format!("col({i})")),
        BoundExpr::Binary { left, op, right } => {
            out.push_str(&format!("bin({op:?},"));
            ser_expr(left, out);
            out.push(',');
            ser_expr(right, out);
            out.push(')');
        }
        BoundExpr::Neg(x) => {
            out.push_str("neg(");
            ser_expr(x, out);
            out.push(')');
        }
        BoundExpr::Not(x) => {
            out.push_str("not(");
            ser_expr(x, out);
            out.push(')');
        }
        BoundExpr::IsNull { expr, negated } => {
            out.push_str(&format!("isnull({negated},"));
            ser_expr(expr, out);
            out.push(')');
        }
        BoundExpr::InList { expr, list, negated } => {
            out.push_str(&format!("in({negated},"));
            ser_expr(expr, out);
            for item in list {
                out.push(',');
                ser_expr(item, out);
            }
            out.push(')');
        }
        BoundExpr::Between { expr, low, high, negated } => {
            out.push_str(&format!("between({negated},"));
            ser_expr(expr, out);
            out.push(',');
            ser_expr(low, out);
            out.push(',');
            ser_expr(high, out);
            out.push(')');
        }
        BoundExpr::Like { expr, pattern, negated } => {
            out.push_str(&format!("like({negated},{}:{pattern},", pattern.len()));
            ser_expr(expr, out);
            out.push(')');
        }
        BoundExpr::Case { branches, else_expr } => {
            out.push_str("case(");
            for (c, v) in branches {
                ser_expr(c, out);
                out.push(':');
                ser_expr(v, out);
                out.push(';');
            }
            if let Some(x) = else_expr {
                out.push_str("else:");
                ser_expr(x, out);
            }
            out.push(')');
        }
    }
}

fn ser_schema(s: &Schema, out: &mut String) {
    out.push_str(&s.describe());
}

fn ser_plan(p: &Plan, out: &mut String) {
    match p {
        Plan::Scan { table, schema, projection } => {
            out.push_str(&format!("scan({}:{table},", table.len()));
            ser_schema(schema, out);
            out.push_str(&format!(",{projection:?})"));
        }
        Plan::Filter { input, predicate } => {
            out.push_str("filter(");
            ser_expr(predicate, out);
            out.push(',');
            ser_plan(input, out);
            out.push(')');
        }
        Plan::Join { left, right, kind, on } => {
            out.push_str(&format!("join({kind:?},"));
            ser_expr(on, out);
            out.push(',');
            ser_plan(left, out);
            out.push(',');
            ser_plan(right, out);
            out.push(')');
        }
        Plan::Project { input, exprs, schema } => {
            out.push_str("project(");
            for e in exprs {
                ser_expr(e, out);
                out.push(';');
            }
            ser_schema(schema, out);
            out.push(',');
            ser_plan(input, out);
            out.push(')');
        }
        Plan::Aggregate { input, group_exprs, aggs, schema } => {
            out.push_str("agg(");
            for e in group_exprs {
                ser_expr(e, out);
                out.push(';');
            }
            out.push('|');
            for a in aggs {
                out.push_str(&format!("{:?}:", a.kind));
                if let Some(arg) = &a.arg {
                    ser_expr(arg, out);
                }
                out.push(';');
            }
            ser_schema(schema, out);
            out.push(',');
            ser_plan(input, out);
            out.push(')');
        }
        Plan::Distinct { input } => {
            out.push_str("distinct(");
            ser_plan(input, out);
            out.push(')');
        }
        Plan::Sort { input, keys } => {
            out.push_str(&format!("sort({keys:?},"));
            ser_plan(input, out);
            out.push(')');
        }
        Plan::Limit { input, limit, offset } => {
            out.push_str(&format!("limit({limit:?},{offset},"));
            ser_plan(input, out);
            out.push(')');
        }
    }
}

/// FNV-1a over the canonical serialization: dependency-free, stable across
/// runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------- refutation search

/// Collect `table → full base schema` for every scan in the plan; `None`
/// when the same table appears with inconsistent schemas.
fn scan_schemas(plan: &Plan) -> Option<BTreeMap<String, Schema>> {
    let mut out = BTreeMap::new();
    collect_scans(plan, &mut out).then_some(out)
}

fn merge_scan_schemas(into: &mut BTreeMap<String, Schema>, plan: &Plan) -> Option<()> {
    collect_scans(plan, into).then_some(())
}

fn collect_scans(plan: &Plan, out: &mut BTreeMap<String, Schema>) -> bool {
    match plan {
        Plan::Scan { table, schema, .. } => match out.get(table) {
            Some(existing) => existing.describe() == schema.describe(),
            None => {
                out.insert(table.clone(), schema.clone());
                true
            }
        },
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. } => collect_scans(input, out),
        Plan::Join { left, right, .. } => collect_scans(left, out) && collect_scans(right, out),
    }
}

/// Per-type value pools for the table generator, seeded with adversarial
/// defaults (zeros for division, empty strings, duplicates for joins /
/// DISTINCT / GROUP BY) and widened with every literal appearing in the
/// plans under comparison plus its integer neighbours — the boundary values
/// that distinguish `x > 10` from `x > 11` lie next to the constants the
/// plans mention, not in any fixed range.
#[derive(Debug, Clone)]
struct ValuePools {
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<String>,
    timestamps: Vec<i64>,
}

impl ValuePools {
    fn new() -> Self {
        Self {
            ints: vec![-2, -1, 0, 1, 2],
            floats: vec![-1.5, -1.0, 0.0, 0.5, 2.5],
            strs: ["", "a", "b", "ZH", "it"].map(str::to_owned).to_vec(),
            timestamps: vec![0, 1, 2, 3],
        }
    }

    fn from_plans(plans: &[&Plan]) -> Self {
        let mut pools = Self::new();
        for plan in plans {
            visit_plan_exprs(plan, &mut |e| collect_literals(e, &mut pools));
        }
        pools.ints.sort_unstable();
        pools.ints.dedup();
        pools.timestamps.sort_unstable();
        pools.timestamps.dedup();
        pools.strs.sort();
        pools.strs.dedup();
        pools.floats.sort_by(f64::total_cmp);
        pools.floats.dedup_by(|a, b| a.to_bits() == b.to_bits());
        pools
    }

    fn add(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.ints.extend([i.saturating_sub(1), *i, i.saturating_add(1)]);
            }
            Value::Float(f) => self.floats.push(*f),
            Value::Str(s) => self.strs.push(s.clone()),
            Value::Timestamp(t) => {
                self.timestamps.extend([t.saturating_sub(1), *t, t.saturating_add(1)]);
            }
            Value::Null | Value::Bool(_) => {}
        }
    }
}

fn visit_plan_exprs(plan: &Plan, f: &mut impl FnMut(&BoundExpr)) {
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, predicate } => {
            f(predicate);
            visit_plan_exprs(input, f);
        }
        Plan::Join { left, right, on, .. } => {
            f(on);
            visit_plan_exprs(left, f);
            visit_plan_exprs(right, f);
        }
        Plan::Project { input, exprs, .. } => {
            exprs.iter().for_each(&mut *f);
            visit_plan_exprs(input, f);
        }
        Plan::Aggregate { input, group_exprs, aggs, .. } => {
            group_exprs.iter().for_each(&mut *f);
            aggs.iter().filter_map(|a| a.arg.as_ref()).for_each(&mut *f);
            visit_plan_exprs(input, f);
        }
        Plan::Distinct { input } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            visit_plan_exprs(input, f)
        }
    }
}

fn collect_literals(e: &BoundExpr, pools: &mut ValuePools) {
    match e {
        BoundExpr::Literal(v) => pools.add(v),
        BoundExpr::Column(_) => {}
        BoundExpr::Binary { left, right, .. } => {
            collect_literals(left, pools);
            collect_literals(right, pools);
        }
        BoundExpr::Neg(x) | BoundExpr::Not(x) => collect_literals(x, pools),
        BoundExpr::IsNull { expr, .. } => collect_literals(expr, pools),
        BoundExpr::InList { expr, list, .. } => {
            collect_literals(expr, pools);
            list.iter().for_each(|i| collect_literals(i, pools));
        }
        BoundExpr::Between { expr, low, high, .. } => {
            collect_literals(expr, pools);
            collect_literals(low, pools);
            collect_literals(high, pools);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            // LIKE patterns compare against strings: seed the literal text
            // and its wildcard-stripped stem so matches are reachable.
            pools.strs.push(pattern.clone());
            pools.strs.push(pattern.replace(['%', '_'], ""));
            collect_literals(expr, pools);
        }
        BoundExpr::Case { branches, else_expr } => {
            for (c, v) in branches {
                collect_literals(c, pools);
                collect_literals(v, pools);
            }
            if let Some(x) = else_expr {
                collect_literals(x, pools);
            }
        }
    }
}

/// Draw one value of type `dt` from the pools, ~20% NULL.
fn gen_value(dt: DataType, rng: &mut StdRng, pools: &ValuePools) -> Value {
    if rng.gen_bool(0.2) {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::Int(pools.ints[rng.gen_range(0usize..pools.ints.len())]),
        DataType::Float => Value::Float(pools.floats[rng.gen_range(0usize..pools.floats.len())]),
        DataType::Str => Value::Str(pools.strs[rng.gen_range(0usize..pools.strs.len())].clone()),
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Timestamp => {
            Value::Timestamp(pools.timestamps[rng.gen_range(0usize..pools.timestamps.len())])
        }
    }
}

fn gen_table(schema: &Schema, rows: usize, rng: &mut StdRng, pools: &ValuePools) -> Table {
    let mut columns = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let dt = field.data_type();
        let values: Vec<Value> = (0..rows).map(|_| gen_value(dt, rng, pools)).collect();
        // from_values only rejects type mismatches; generated values match.
        match Column::from_values(dt, &values) {
            Ok(c) => columns.push(c),
            Err(_) => columns.push(Column::from_values(dt, &vec![Value::Null; rows]).unwrap_or_else(|_| Column::from_ints(&[]))), // lint: allow(R002) unreachable fallback
        }
    }
    Table::from_columns(schema.clone(), columns).unwrap_or_else(|_| {
        // Unreachable: columns were built from this exact schema.
        Table::from_columns(Schema::new(vec![]), vec![]).unwrap() // lint: allow(R002) empty table always valid
    })
}

/// Execute a plan (no optimizer — the engine judges plans as given) and
/// render the outcome. All `Err` outcomes are identified with each other:
/// canonicalization may change *which* error fires first, never whether one
/// fires.
fn run_outcome(catalog: &Catalog, plan: &Plan) -> String {
    match execute_plan(catalog, plan, ExecOptions { rules: OptimizerRules::none(), track_lineage: false, vectorized: None }) {
        Ok(result) => format!(
            "schema: {}\n{}",
            result.table.schema().describe(),
            result.table.render(usize::MAX)
        ),
        Err(_) => "runtime error".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::Field;
    use cda_sql::parser::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("c", DataType::Str),
            ]),
            vec![
                Column::from_ints(&[1, 2, 3, 0]),
                Column::from_ints(&[4, 0, 6, 2]),
                Column::from_strs(&["x", "y", "z", "x"]),
            ],
        )
        .unwrap();
        c.register("t", t.clone()).unwrap();
        c.register("u", t).unwrap();
        c
    }

    fn plan(sql: &str) -> Plan {
        plan_select(&catalog(), &parse(sql).unwrap()).unwrap()
    }

    fn engine() -> EquivEngine {
        EquivEngine::new().with_seed(7)
    }

    #[test]
    fn domain_fast_path_refutes_with_genuine_counterexample() {
        // Left is provably empty on every database (contradictory
        // equalities); right scans freely. The fast path must refute with
        // a witness that actually reproduces.
        let p = plan("SELECT a FROM t WHERE a = 5 AND a = 6");
        let q = plan("SELECT a FROM t WHERE a = 5");
        let ce = engine().refute_by_domains(&p, &q).expect("fast path applies");
        assert!(ce.recheck(&p, &q), "counterexample must reproduce");
        // The witness is domain-guided: the live side's refined domain
        // (a = 5) produced a row the dead side provably rejects.
        assert!(ce.left_outcome != ce.right_outcome);
        let r = engine().check(&p, &q);
        assert!(!r.is_equivalent(), "{r:?}");
        // Symmetric orientation works too.
        assert!(engine().refute_by_domains(&q, &p).is_some());
        // Both-live (or both-empty) pairs are out of scope for the fast
        // path — it must decline rather than guess.
        let a = plan("SELECT a FROM t WHERE a = 5");
        let b = plan("SELECT b FROM t WHERE b = 5");
        assert!(engine().refute_by_domains(&a, &b).is_none());
        let e1 = plan("SELECT a FROM t WHERE a = 5 AND a = 6");
        let e2 = plan("SELECT b FROM t WHERE b = 1 AND b = 2");
        assert!(engine().refute_by_domains(&e1, &e2).is_none());
    }

    #[test]
    fn identical_plans_share_a_fingerprint() {
        let p = plan("SELECT a FROM t WHERE b > 1");
        assert_eq!(engine().fingerprint(&p), engine().fingerprint(&p.clone()));
        assert!(engine().check(&p, &p.clone()).is_equivalent());
    }

    #[test]
    fn commuted_conjunction_certifies_equivalent() {
        let p = plan("SELECT a FROM t WHERE b > 1 AND c = 'x'");
        let q = plan("SELECT a FROM t WHERE c = 'x' AND b > 1");
        let r = engine().check(&p, &q);
        assert!(r.is_equivalent(), "{r:?}");
    }

    #[test]
    fn reversed_comparison_certifies_equivalent() {
        let p = plan("SELECT a FROM t WHERE b > 1");
        let q = plan("SELECT a FROM t WHERE 1 < b");
        assert!(engine().check(&p, &q).is_equivalent());
    }

    #[test]
    fn tautological_filter_folds_away() {
        let p = plan("SELECT a FROM t WHERE 1 = 1");
        let q = plan("SELECT a FROM t");
        assert!(engine().check(&p, &q).is_equivalent());
    }

    #[test]
    fn duplicate_conjunct_dedupes() {
        let p = plan("SELECT a FROM t WHERE b > 1 AND b > 1");
        let q = plan("SELECT a FROM t WHERE b > 1");
        assert!(engine().check(&p, &q).is_equivalent());
    }

    #[test]
    fn cnf_distribution_normalizes_or_over_and() {
        let p = plan("SELECT a FROM t WHERE (b > 1 AND c = 'x') OR b = 0");
        let q = plan("SELECT a FROM t WHERE (b > 1 OR b = 0) AND (c = 'x' OR b = 0)");
        assert!(engine().check(&p, &q).is_equivalent());
    }

    #[test]
    fn fallible_conjunction_is_not_reordered() {
        // 10 / b errors when b = 0: the two orders short-circuit differently,
        // so their fingerprints must differ and refutation must find the
        // divergence (a row with b = 0 that the pure conjunct would mask).
        let p = plan("SELECT a FROM t WHERE b > 0 AND 10 / b > 1");
        let q = plan("SELECT a FROM t WHERE 10 / b > 1 AND b > 0");
        let e = engine();
        assert_ne!(e.fingerprint(&p), e.fingerprint(&q));
        match e.check(&p, &q) {
            EquivResult::NotEquivalent { counterexample } => {
                assert!(counterexample.recheck(&p, &q), "counterexample must re-check");
            }
            // The orders only diverge on rows with b = 0/NULL patterns the
            // small trials usually generate; Unknown is an acceptable
            // (sound) outcome, NotEquivalent must never be wrong.
            EquivResult::Unknown { .. } => {}
            EquivResult::Equivalent { .. } => panic!("must not certify a reorder of 10/b"),
        }
    }

    #[test]
    fn different_filters_are_refuted_with_recheckable_counterexample() {
        let p = plan("SELECT a FROM t WHERE b > 1");
        let q = plan("SELECT a FROM t WHERE b > 2");
        match engine().check(&p, &q) {
            EquivResult::NotEquivalent { counterexample } => {
                assert!(counterexample.recheck(&p, &q));
                assert!(!counterexample.describe().is_empty());
                // and the witness must NOT re-check against equivalent plans
                assert!(!counterexample.recheck(&p, &p.clone()));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn limit_vs_no_limit_is_refuted() {
        let p = plan("SELECT a FROM t");
        let q = plan("SELECT a FROM t LIMIT 1");
        match engine().check(&p, &q) {
            EquivResult::NotEquivalent { counterexample } => {
                assert!(counterexample.recheck(&p, &q));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn canonicalization_preserves_results_on_the_corpus() {
        let c = catalog();
        let e = engine();
        for sql in [
            "SELECT a FROM t",
            "SELECT a, b FROM t WHERE b > 1 AND c = 'x'",
            "SELECT c, SUM(a) FROM t GROUP BY c",
            "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 1 AND u.b < 5",
            "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.b IS NULL",
            "SELECT DISTINCT c FROM t ORDER BY c LIMIT 2",
            "SELECT a FROM t WHERE b BETWEEN 0 AND 5 ORDER BY a DESC",
            "SELECT a FROM t WHERE c IN ('y', 'x')",
        ] {
            let p = plan_select(&c, &parse(sql).unwrap()).unwrap();
            let canon = e.canonicalize(&p);
            let opts = ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None };
            let before = execute_plan(&c, &p, opts).unwrap();
            let after = execute_plan(&c, &canon, opts).unwrap();
            assert_eq!(
                before.table.render(usize::MAX),
                after.table.render(usize::MAX),
                "{sql}"
            );
            assert_eq!(
                before.table.schema().describe(),
                after.table.schema().describe(),
                "{sql}"
            );
        }
    }

    #[test]
    fn fingerprint_is_stable_across_engine_instances() {
        let p = plan("SELECT c, SUM(a) FROM t WHERE b > 1 GROUP BY c");
        let f1 = EquivEngine::new().fingerprint(&p);
        let f2 = EquivEngine::new().with_seed(99).fingerprint(&p);
        assert_eq!(f1, f2, "the fingerprint must not depend on the search seed");
        assert_eq!(f1.to_string().len(), 16);
    }

    #[test]
    fn certifier_covers_every_optimizer_rule() {
        let c = catalog();
        let queries: Vec<String> = [
            "SELECT a FROM t WHERE 1 = 1",
            "SELECT a FROM t WHERE b > 1 AND 2 > 1",
            "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 1 AND u.b < 5",
            "SELECT t.a FROM t JOIN u ON 1 = 1 WHERE t.a = u.b",
            "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.b IS NULL",
            "SELECT c, SUM(a) FROM t GROUP BY c",
            "SELECT a FROM t WHERE b > 1 ORDER BY a LIMIT 2",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let report = certify_optimizer(&engine(), &c, &queries);
        // every query × every rule variant was checked
        assert_eq!(report.checks.len(), queries.len() * CERTIFIED_RULES.len());
        for (rule, _) in CERTIFIED_RULES {
            assert!(report.checks.iter().any(|ch| ch.rule == rule), "{rule} uncovered");
        }
        assert!(
            report.all_certified(),
            "uncertified rewrites:\n{:#?}",
            report.uncertified()
        );
        assert!(report.findings().is_empty());
        assert_eq!(report.certified(), report.checks.len());
    }

    #[test]
    fn uncertified_rewrites_become_a014_findings() {
        // Force a failure by "certifying" two genuinely different plans.
        let p = plan("SELECT a FROM t WHERE b > 1");
        let q = plan("SELECT a FROM t WHERE b > 2");
        let result = engine().check(&p, &q);
        let report = EquivReport {
            checks: vec![RuleCheck { rule: "all", sql: "SELECT ...".into(), result }],
        };
        assert!(!report.all_certified());
        let findings = report.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, Code::UncertifiedRewrite);
        assert_eq!(findings[0].code.as_str(), "A014");
        assert!(findings[0].message.contains("optimizer rule `all`"));
    }

    #[test]
    fn error_free_classification() {
        let col = BoundExpr::Column(0);
        let lit = BoundExpr::Literal(Value::Int(1));
        let cmp = BoundExpr::Binary {
            left: Box::new(col.clone()),
            op: BinaryOp::Lt,
            right: Box::new(lit.clone()),
        };
        assert!(error_free(&cmp));
        let div = BoundExpr::Binary {
            left: Box::new(lit.clone()),
            op: BinaryOp::Div,
            right: Box::new(col.clone()),
        };
        assert!(!error_free(&div));
        let div_cmp = BoundExpr::Binary {
            left: Box::new(div),
            op: BinaryOp::Lt,
            right: Box::new(lit.clone()),
        };
        assert!(!error_free(&div_cmp), "fallible operand taints the comparison");
        let conj = BoundExpr::Binary {
            left: Box::new(cmp.clone()),
            op: BinaryOp::And,
            right: Box::new(cmp.clone()),
        };
        assert!(error_free(&conj));
        // AND over a bare column could be a type error: not error-free.
        let odd = BoundExpr::Binary {
            left: Box::new(col),
            op: BinaryOp::And,
            right: Box::new(cmp),
        };
        assert!(!error_free(&odd));
    }

    #[test]
    fn unknown_when_no_counterexample_found() {
        // Two semantically equal plans the canonicalizer cannot identify:
        // b + 0 > 1 vs b > 1 (arithmetic is fallible, so not normalized).
        let p = plan("SELECT a FROM t WHERE b + 0 > 1");
        let q = plan("SELECT a FROM t WHERE b > 1");
        match engine().check(&p, &q) {
            EquivResult::Unknown { reason } => {
                assert!(reason.contains("refutation"), "{reason}");
            }
            EquivResult::Equivalent { .. } => {
                panic!("b + 0 is fallible in general; must not certify")
            }
            // NULL inputs make `b + 0 > 1` NULL where `b > 1` is NULL too —
            // but an Int overflow aside they agree; a found counterexample
            // would indicate a generator/semantics mismatch.
            EquivResult::NotEquivalent { counterexample } => {
                panic!("spurious counterexample: {}", counterexample.describe())
            }
        }
    }

    #[test]
    fn scan_projection_identity_normalizes() {
        let full = Plan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
            projection: Some(vec![0, 1]),
        };
        let none = Plan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
            projection: None,
        };
        let e = engine();
        assert_eq!(e.fingerprint(&full), e.fingerprint(&none));
    }
}
