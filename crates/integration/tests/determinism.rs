//! P4 Soundness determinism guard: the Figure-1 demo conversation must
//! replay **byte-identically** under a fixed seed — across fresh system
//! instances within one process and, because every random draw flows
//! through `cda-testkit`'s pinned xoshiro256++/SplitMix64 streams, across
//! processes and machines too.

use cda_core::demo::{demo_session, FIGURE1_TURNS};

/// Serialize one full conversation into a golden transcript: rendered
/// turns (text, confidence, property tags, suggestions), machine metadata
/// (status, executed SQL, explanation bundle), and the session lineage
/// graph. Everything except wall-clock timings.
fn golden_transcript(seed: u64) -> String {
    let mut cda = demo_session(seed);
    let mut out = String::new();
    for (i, turn) in FIGURE1_TURNS.iter().enumerate() {
        let a = cda.process(turn);
        out.push_str(&format!("=== turn {i}: {turn}\n"));
        out.push_str(&a.render());
        out.push_str(&format!("status: {:?}\n", a.status));
        out.push_str(&format!("confidence: {:?}\n", a.confidence));
        out.push_str(&format!("executed_sql: {:?}\n", a.executed_sql));
        if let Some(e) = &a.explanation {
            out.push_str(&format!("explanation.sources: {:?}\n", e.sources));
            out.push_str(&format!("explanation.code: {:?}\n", e.code));
        }
    }
    out.push_str("=== lineage\n");
    out.push_str(&cda.lineage().to_string());
    out
}

#[test]
fn figure1_transcript_replays_byte_identically() {
    let first = golden_transcript(42);
    let second = golden_transcript(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must produce the identical transcript");
}

#[test]
fn figure1_transcript_is_seed_sensitive_in_data_but_stable_in_shape() {
    // A different seed regenerates the synthetic tables, so numbers may
    // move — but the conversation structure (turn count, clarification
    // then answers) must be preserved, and the run must stay
    // self-consistent under replay.
    let a1 = golden_transcript(7);
    let a2 = golden_transcript(7);
    assert_eq!(a1, a2);
    for t in 0..FIGURE1_TURNS.len() {
        assert!(a1.contains(&format!("=== turn {t}:")), "turn {t} present");
    }
}

/// The vectorized scheduler must be invisible in results: identical tables
/// at thread counts {1, 2, 8} and morsel sizes {1, 64, 4096}, and identical
/// to the row-at-a-time reference. Tables are seed-stable because they come
/// from the cda-testkit PRNG.
#[test]
fn vectorized_results_are_identical_at_any_thread_count_and_morsel_size() {
    use cda_dataframe::{Column, DataType, Field, Schema, Table};
    use cda_sql::{execute_with_options, Catalog, ExecOptions, MorselConfig};
    use cda_testkit::prelude::*;

    let mut rng = StdRng::seed_from_u64(0xE17);
    let n = 3_000;
    let groups: Vec<String> = (0..n).map(|_| format!("g{}", rng.gen_range(0..12))).collect();
    let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
    let ys: Vec<Option<f64>> = (0..n)
        .map(|_| if rng.gen_bool(0.2) { None } else { Some(rng.gen_range(-10.0..10.0)) })
        .collect();
    let gs: Vec<&str> = groups.iter().map(String::as_str).collect();
    let t = Table::from_columns(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ]),
        vec![Column::from_strs(&gs), Column::from_ints(&xs), Column::from_opt_floats(&ys)],
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("t", t).unwrap();

    let queries = [
        "SELECT g, COUNT(*) AS n, SUM(x) AS s, AVG(y) AS a FROM t GROUP BY g ORDER BY s DESC",
        "SELECT a.g, SUM(b.x) FROM t a JOIN t b ON a.g = b.g WHERE a.x > 900 GROUP BY a.g",
        "SELECT g, x + 1 FROM t WHERE y IS NOT NULL AND x % 7 = 0 ORDER BY x LIMIT 50",
        "SELECT DISTINCT g FROM t ORDER BY g",
    ];
    for sql in queries {
        let reference = execute_with_options(&catalog, sql, ExecOptions::default()).unwrap();
        for threads in [1, 2, 8] {
            for morsel_rows in [1, 64, 4096] {
                let cfg = MorselConfig::default()
                    .with_morsel_rows(morsel_rows)
                    .with_threads(threads);
                let v = execute_with_options(
                    &catalog,
                    sql,
                    ExecOptions { vectorized: Some(cfg), ..ExecOptions::default() },
                )
                .unwrap();
                assert_eq!(
                    reference.table, v.table,
                    "`{sql}` diverged at threads={threads} morsel_rows={morsel_rows}"
                );
            }
        }
    }
}

/// `CdaConfig::vectorized_exec = false` must restore the row-at-a-time
/// path bit-for-bit at the conversation level: the full Figure-1 golden
/// transcript (rendered turns, executed SQL, lineage graph) is identical
/// with the vectorized engine on and off.
#[test]
fn figure1_transcript_is_identical_with_vectorized_exec_on_and_off() {
    use cda_core::reliability::CdaConfig;

    let transcript_with = |vectorized_exec: bool| -> String {
        let mut cda = demo_session(42);
        cda.config = CdaConfig { vectorized_exec, ..CdaConfig::default() };
        let mut out = String::new();
        for (i, turn) in FIGURE1_TURNS.iter().enumerate() {
            let a = cda.process(turn);
            out.push_str(&format!("=== turn {i}: {turn}\n"));
            out.push_str(&a.render());
            out.push_str(&format!("status: {:?}\n", a.status));
            out.push_str(&format!("executed_sql: {:?}\n", a.executed_sql));
        }
        out.push_str(&cda.lineage().to_string());
        out
    };
    let on = transcript_with(true);
    let off = transcript_with(false);
    assert!(!on.is_empty());
    assert_eq!(on, off, "vectorized_exec must not change any conversation byte");
}

#[test]
fn demo_tables_regenerate_identically() {
    use cda_core::demo::{barometer_series, employment_table, wage_table};
    let (e1, e2) = (employment_table(42), employment_table(42));
    assert_eq!(e1.num_rows(), e2.num_rows());
    for r in 0..e1.num_rows() {
        assert_eq!(e1.row(r).unwrap(), e2.row(r).unwrap());
    }
    let (w1, w2) = (wage_table(42), wage_table(42));
    for r in 0..w1.num_rows() {
        assert_eq!(w1.row(r).unwrap(), w2.row(r).unwrap());
    }
    let (b1, b2) = (barometer_series(42), barometer_series(42));
    assert_eq!(b1.values(), b2.values());
}
