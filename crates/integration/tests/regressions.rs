//! Pinned regressions for inputs that previously panicked.
//!
//! Each test exercises a user-input-reachable path that used to hit an
//! `unwrap`/`expect`/`unreachable!` and now returns a structured error (or a
//! graceful empty result). If one of these starts panicking again, the
//! hardening from the static-analysis PR has regressed.

use cda_core::catalog::DatasetCatalog;
use cda_sql::execute;

/// An unterminated string literal whose opening quote is followed by a
/// multi-byte character. The lexer used to `expect` an in-bounds char while
/// scanning and could panic; it must now surface a lex error via `execute`.
#[test]
fn unterminated_multibyte_literal_errors_gracefully() {
    let cat = cda_core::demo::demo_catalog(7);
    let sql = "SELECT canton FROM wage_stats WHERE canton = 'Zürich";
    let err = execute(cat.sql(), sql);
    assert!(err.is_err(), "unterminated literal must be an error, got {err:?}");
}

/// Same shape, but the quote is the final byte of the input.
#[test]
fn quote_at_end_of_input_errors_gracefully() {
    let cat = cda_core::demo::demo_catalog(7);
    assert!(execute(cat.sql(), "SELECT canton FROM wage_stats WHERE canton = '").is_err());
}

/// A numeric fold over a text column reaches the execution engine (the
/// planner does not type-check aggregates); the aggregate kernel used to hit
/// an `unreachable!` for non-numeric folds and now reports an eval error.
#[test]
fn sum_over_text_column_is_an_error_not_a_panic() {
    let cat = cda_core::demo::demo_catalog(7);
    let err = execute(cat.sql(), "SELECT SUM(canton) FROM wage_stats");
    assert!(err.is_err(), "SUM over Str must be an error, got {err:?}");
    // And the static analyzer flags it *before* execution (code A004).
    assert!(cda_analyzer::Analyzer::new(cat.sql())
        .execution_doomed("SELECT SUM(canton) FROM wage_stats"));
}

/// Discovery over an empty catalog used to panic building the brute-force
/// vector set; it must now simply find nothing.
#[test]
fn discover_on_empty_catalog_returns_empty() {
    let cat = DatasetCatalog::new();
    assert!(cat.discover("employment trends", 3, false).is_empty());
    assert!(cat.discover("employment trends", 3, true).is_empty());
}

/// The full dialogue loop over malformed analytical input must abstain or
/// clarify, never panic — this drives the lexer/planner/exec error paths
/// end-to-end through the orchestrator.
#[test]
fn dialogue_survives_malformed_analytical_phrasing() {
    let mut sys = cda_core::demo::demo_session(7);
    for utterance in [
        "sum the 'unfinished",
        "average of nothing by nothing",
        "ORDER BY ORDER BY",
        "",
    ] {
        let turn = sys.process(utterance);
        assert!(!turn.text.is_empty(), "turn must carry a message for {utterance:?}");
    }
}
