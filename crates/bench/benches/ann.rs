//! Criterion bench for experiment E1/E2: per-query latency of each vector
//! index family at fixed data scale.

use cda_testkit::bench::{BatchSize, Criterion};
use cda_testkit::{criterion_group, criterion_main};
use cda_vector::exact::ExactIndex;
use cda_vector::hnsw::{HnswIndex, HnswParams};
use cda_vector::ivf::IvfIndex;
use cda_vector::lsh::{LshIndex, LshParams};
use cda_vector::progressive::{GuaranteeMode, ProgressiveIndex};
use cda_vector::{VectorIndex, VectorSet};

const K: usize = 10;

fn bench_ann(c: &mut Criterion) {
    let (data, _) = VectorSet::gaussian_clusters(20_000, 32, 40, 0.15, 7).unwrap();
    let queries = data.queries_near(64, 0.05, 11);
    let mut qi = 0usize;
    let mut next_query = move || {
        qi = (qi + 1) % 64;
        qi
    };

    let mut group = c.benchmark_group("ann_20k_d32_k10");
    group.sample_size(30);

    let exact = ExactIndex::build(&data);
    group.bench_function("exact", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| exact.search(&data, &queries[qi], K),
            BatchSize::SmallInput,
        )
    });

    let ivf = IvfIndex::build(&data, 64, 3).with_nprobe(4);
    group.bench_function("ivf_nprobe4", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| ivf.search(&data, &queries[qi], K),
            BatchSize::SmallInput,
        )
    });

    let hnsw = HnswIndex::build(&data, HnswParams { m: 12, ef_construction: 80, ef_search: 40, seed: 5 });
    group.bench_function("hnsw_ef40", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| hnsw.search(&data, &queries[qi], K),
            BatchSize::SmallInput,
        )
    });

    let lsh = LshIndex::build(&data, LshParams { bits: 16, tables: 8, seed: 9 });
    group.bench_function("lsh_16x8", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| lsh.search(&data, &queries[qi], K),
            BatchSize::SmallInput,
        )
    });

    let prog = ProgressiveIndex::build(&data, 64, 60, K, 3);
    group.bench_function("progressive_exact", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| prog.search_mode(&data, &queries[qi], K, GuaranteeMode::Deterministic),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("progressive_d10", |b| {
        b.iter_batched(
            &mut next_query,
            |qi| {
                prog.search_mode(&data, &queries[qi], K, GuaranteeMode::Probabilistic { delta: 0.1 })
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_ann);
criterion_main!(benches);
