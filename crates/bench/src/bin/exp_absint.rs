//! **E18** — abstract-interpretation plan analysis: catch-rate delta over
//! the shallow gate, zero false rejects, cardinality sharpening, and the
//! runtime sanitizer's overhead.
//!
//! Four measurements:
//!
//! 1. **Catch-rate delta** — a pinned corpus of defective-but-parseable
//!    queries (contradictory predicates, statistics-refuted ranges,
//!    NULL-literal comparisons, data-grounded tautologies, provably-NULL
//!    outputs, a column-divisor division by zero) analyzed with the absint
//!    pass off (the A001–A014 gate) and on (adds A015–A018). Each of the
//!    four new codes must fire at least once, and the pass must flag
//!    strictly more of the corpus than the shallow gate alone.
//! 2. **False rejects** — every A015 the analyzer reports must execute to
//!    an empty result and every A018 must genuinely fail at runtime;
//!    additionally a gold list of sound queries must gain no A015/A018.
//!    Both counts must be 0.
//! 3. **Cardinality sharpening** — width of the cost pass's row-count
//!    interval with absint on vs off: bounds may only narrow (soundness)
//!    and must strictly narrow somewhere on the pinned corpus.
//! 4. **Sanitizer overhead** — `execute_plan_checked` (every materialized
//!    node output re-checked against its static domain) vs plain
//!    `execute_plan` on an 8k-row catalog, both engines; the mean overhead
//!    must stay under 5%.
//!
//! `CDA_BENCH_FAST=1` reduces timing repetitions (CI smoke mode).

use cda_analyzer::{domain_tree, Analyzer, Code, Statistics};
use cda_bench::{f, header, mean, row, timed_avg, us};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::exec::{execute_plan, execute_plan_checked};
use cda_sql::{execute, optimizer, parser, planner, Catalog, ExecOptions, OptimizerRules};
use cda_testkit::rng::StdRng;

/// Small statistics-bearing catalog: `emp` with a nullable int column, plus
/// `zt` whose `z` column's domain is exactly `{0}` (the A018 shape A008's
/// literal check cannot see).
fn analysis_catalog() -> Catalog {
    let mut c = Catalog::new();
    let emp = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("jobs", DataType::Int),
            Field::new("rate", DataType::Float),
        ]),
        vec![
            Column::from_strs(&["ZH", "BE", "ZH", "GE", "BE", "ZH"]),
            Column::from_strs(&["it", "it", "finance", "health", "health", "it"]),
            Column::from_opt_ints(&[Some(120), Some(0), Some(340), None, Some(75), Some(18)]),
            Column::from_floats(&[1.5, 0.0, 2.25, 3.5, 0.5, 1.0]),
        ],
    )
    .unwrap();
    let zt = Table::from_columns(
        Schema::new(vec![Field::new("n", DataType::Int), Field::new("z", DataType::Int)]),
        vec![Column::from_ints(&[1, 2]), Column::from_ints(&[0, 0])],
    )
    .unwrap();
    c.register("emp", emp).unwrap();
    c.register("zt", zt).unwrap();
    c
}

/// Defective-but-parseable queries the shallow A001–A014 gate mostly waves
/// through; abstract interpretation should flag every one.
fn defective() -> Vec<&'static str> {
    vec![
        "SELECT canton FROM emp WHERE jobs = 5 AND jobs = 6",
        "SELECT canton FROM emp WHERE jobs < 10 AND jobs > 20",
        "SELECT canton FROM emp WHERE jobs > 100000",
        "SELECT canton FROM emp WHERE jobs = NULL",
        "SELECT canton FROM emp WHERE canton LIKE 'Z%' AND canton LIKE 'ab%'",
        "SELECT canton FROM emp WHERE canton IS NOT NULL",
        "SELECT canton FROM emp WHERE rate BETWEEN 0.0 AND 100.0",
        "SELECT jobs + NULL FROM emp",
        "SELECT canton, NULL AS gap FROM emp",
        "SELECT n / z FROM zt",
    ]
}

/// Sound queries the deep pass must not reject (the gold list of the
/// zero-false-reject gate).
fn gold() -> Vec<&'static str> {
    vec![
        "SELECT canton FROM emp WHERE jobs > 50",
        "SELECT sector, SUM(jobs) FROM emp GROUP BY sector ORDER BY sector",
        "SELECT canton FROM emp WHERE jobs IS NULL",
        "SELECT canton FROM emp WHERE rate < 1.0 OR sector = 'it'",
        "SELECT COUNT(*), AVG(rate) FROM emp",
        "SELECT DISTINCT sector FROM emp ORDER BY sector LIMIT 2",
        "SELECT CASE WHEN jobs > 100 THEN 'big' ELSE 'small' END FROM emp",
        "SELECT n FROM zt WHERE n > 1",
    ]
}

fn codes(r: &cda_analyzer::Report) -> String {
    let mut cs: Vec<&str> = r.findings.iter().map(|f| f.code.as_str()).collect();
    cs.sort_unstable();
    cs.dedup();
    if cs.is_empty() {
        "clean".into()
    } else {
        cs.join("+")
    }
}

fn width(r: &cda_analyzer::Report) -> Option<u64> {
    r.estimate.as_ref().map(|e| e.hi.saturating_sub(e.lo))
}

/// 8k-row catalog for the sanitizer-overhead measurement (the E17 shape).
fn exec_catalog(rows: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(7);
    let groups = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let gs: Vec<&str> = (0..rows).map(|_| groups[rng.gen_range(0..groups.len())]).collect();
    let xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..1000)).collect();
    let ys: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..1.0)).collect();
    let t = Table::from_columns(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ]),
        vec![Column::from_strs(&gs), Column::from_ints(&xs), Column::from_floats(&ys)],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("t", t).unwrap();
    c
}

fn main() {
    let fast = std::env::var("CDA_BENCH_FAST").is_ok();
    let reps = if fast { 40 } else { 150 };
    header("E18", "abstract interpretation: catch-rate delta, 0 false rejects, sanitizer cost");

    let c = analysis_catalog();
    let stats = Statistics::from_catalog(&c);
    let deep = Analyzer::new(&c).with_stats(&stats);
    let shallow = Analyzer::new(&c).with_stats(&stats).with_absint(false);

    // ---- 1. catch-rate delta on the defective corpus ---------------------
    println!("\n-- defective corpus: shallow gate (A001-A014) vs absint on --");
    row(&["query".into(), "shallow".into(), "absint".into()]);
    let mut shallow_flagged = 0usize;
    let mut deep_flagged = 0usize;
    let mut fired = std::collections::BTreeSet::new();
    let mut false_rejects = 0usize;
    for sql in defective() {
        let r0 = shallow.analyze(sql);
        let r1 = deep.analyze(sql);
        if !r0.is_clean() {
            shallow_flagged += 1;
        }
        if !r1.is_clean() {
            deep_flagged += 1;
        }
        for f in &r1.findings {
            fired.insert(f.code.as_str().to_string());
            // The zero-false-reject obligation: A015 must mean "actually
            // empty", A018 must mean "actually fails".
            match f.code {
                Code::ProvablyEmpty if execute(&c, sql).map(|r| r.table.num_rows()) != Ok(0) => {
                    false_rejects += 1;
                    println!("FALSE A015: {sql}");
                }
                Code::ProvableRuntimeError if execute(&c, sql).is_ok() => {
                    false_rejects += 1;
                    println!("FALSE A018: {sql}");
                }
                _ => {}
            }
        }
        row(&[sql.chars().take(48).collect(), codes(&r0), codes(&r1)]);
    }
    let new_codes = ["A015", "A016", "A017", "A018"];
    let all_fire = new_codes.iter().all(|code| fired.contains(*code));

    // ---- 2. the gold list gains no rejections ----------------------------
    let mut gold_rejects = 0usize;
    for sql in gold() {
        let r = deep.analyze(sql);
        if r.findings.iter().any(|f| {
            matches!(f.code, Code::ProvablyEmpty | Code::ProvableRuntimeError)
        }) {
            gold_rejects += 1;
            println!("GOLD REJECTED ({}): {sql}", codes(&r));
        }
    }
    println!(
        "\nflagged: shallow {}/{q}, absint {}/{q}; new codes fired: {:?}; \
         false rejects {false_rejects}, gold rejects {gold_rejects}",
        shallow_flagged,
        deep_flagged,
        fired,
        q = defective().len(),
    );

    // ---- 3. cardinality bound sharpening ---------------------------------
    println!("\n-- cost-pass row-count interval width: absint off vs on --");
    row(&["query".into(), "off".into(), "on".into()]);
    let mut widened = 0usize;
    let mut strictly_narrowed = 0usize;
    for sql in defective().into_iter().chain(gold()) {
        let off = shallow.analyze(sql);
        let on = deep.analyze(sql);
        if let (Some(w0), Some(w1)) = (width(&off), width(&on)) {
            if w1 > w0 {
                widened += 1;
                println!("WIDENED: {sql}");
            }
            if w1 < w0 {
                strictly_narrowed += 1;
            }
            row(&[sql.chars().take(48).collect(), w0.to_string(), w1.to_string()]);
        }
    }

    // ---- 4. sanitizer overhead on both engines ---------------------------
    println!("\n-- sanitizer overhead ({reps} reps per cell, 8k rows) --");
    let ec = exec_catalog(8_000);
    let estats = Statistics::from_catalog(&ec);
    let exec_corpus = [
        "SELECT g, COUNT(*) AS n, SUM(x) AS s, AVG(y) AS a FROM t GROUP BY g ORDER BY s DESC",
        "SELECT g, x + 1, y * 2.0 FROM t WHERE x % 7 = 0 AND y < 0.5 ORDER BY x, g LIMIT 200",
        "SELECT DISTINCT g FROM t WHERE y BETWEEN 0.25 AND 0.75 ORDER BY g",
    ];
    row(&["query".into(), "engine".into(), "plain".into(), "checked".into(), "overhead".into()]);
    let mut overheads = Vec::new();
    for sql in exec_corpus {
        let select = parser::parse(sql).unwrap();
        let plan =
            optimizer::optimize(planner::plan_select(&ec, &select).unwrap(), OptimizerRules::all());
        let tree = domain_tree(&plan, Some(&estats));
        for (engine, opts) in [("row", ExecOptions::default()), ("vec", ExecOptions::vectorized())]
        {
            let (_, plain) = timed_avg(reps, || execute_plan(&ec, &plan, opts).unwrap());
            let (_, checked) =
                timed_avg(reps, || execute_plan_checked(&ec, &plan, opts, Some(&tree)).unwrap());
            let overhead = checked.as_secs_f64() / plain.as_secs_f64() - 1.0;
            overheads.push(overhead);
            row(&[
                sql.chars().take(32).collect(),
                engine.into(),
                us(plain),
                us(checked),
                format!("{:+.1}%", overhead * 100.0),
            ]);
        }
    }
    let mean_overhead = mean(&overheads);

    println!(
        "\nacceptance: catch delta +{} (>0: {}), A015-A018 all fire ({}), false rejects {} \
         (==0: {}), gold rejects {} (==0: {}), widened bounds {} (==0: {}), strictly narrowed {} \
         (>0: {}), mean sanitizer overhead {}% (<5%: {})",
        deep_flagged - shallow_flagged,
        deep_flagged > shallow_flagged,
        all_fire,
        false_rejects,
        false_rejects == 0,
        gold_rejects,
        gold_rejects == 0,
        widened,
        widened == 0,
        strictly_narrowed,
        strictly_narrowed > 0,
        f(mean_overhead * 100.0),
        mean_overhead < 0.05,
    );
    if !(deep_flagged > shallow_flagged
        && all_fire
        && false_rejects == 0
        && gold_rejects == 0
        && widened == 0
        && strictly_narrowed > 0
        && mean_overhead < 0.05)
    {
        std::process::exit(1);
    }
}
