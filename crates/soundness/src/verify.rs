//! Execution-based verification.
//!
//! The paper: soundness is achieved when "the system should be able to
//! verify how answers are generated". For NL2SQL, the executable check is
//! *execution accuracy*: run candidate and gold against the same catalog and
//! compare result tables as multisets of rows (order-insensitive, since two
//! equivalent programs may order output differently).

use cda_dataframe::{Table, Value};
use cda_sql::{execute, Catalog};
use std::collections::HashMap;

/// Compare two tables as multisets of rows (schema arity must match; column
/// names are ignored, as aliases differ between equivalent programs).
pub fn tables_equal_unordered(a: &Table, b: &Table) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    let mut counts: HashMap<Vec<Value>, i64> = HashMap::new();
    for i in 0..a.num_rows() {
        let Ok(row) = a.row(i) else { return false };
        *counts.entry(row).or_insert(0) += 1;
    }
    for i in 0..b.num_rows() {
        let Ok(row) = b.row(i) else { return false };
        match counts.get_mut(&row) {
            Some(c) => *c -= 1,
            None => return false,
        }
    }
    counts.values().all(|&c| c == 0)
}

/// Whether `candidate_sql` is execution-accurate against `gold_sql`: both
/// execute, and their results agree as unordered multisets. A candidate that
/// fails to execute is *incorrect* (not an error — that is the signal).
pub fn execution_accuracy(catalog: &Catalog, candidate_sql: &str, gold_sql: &str) -> bool {
    let Ok(gold) = execute(catalog, gold_sql) else {
        return false;
    };
    let Ok(cand) = execute(catalog, candidate_sql) else {
        return false;
    };
    tables_equal_unordered(&cand.table, &gold.table)
}

/// The canonical "result signature" of executing a SQL string: `None` when
/// execution fails, otherwise a deterministic fingerprint of the result
/// multiset. Two programs with the same signature are execution-equivalent —
/// the clustering key of consistency-based UQ.
pub fn execution_signature(catalog: &Catalog, sql: &str) -> Option<String> {
    execution_signature_with(catalog, sql, cda_sql::ExecOptions::default())
}

/// [`execution_signature`] with explicit execution options, so UQ sampling
/// can ride the vectorized engine (`ExecOptions::vectorized()`). Both engine
/// paths produce byte-identical tables, so the signature is independent of
/// the options — the differential suite pins this.
pub fn execution_signature_with(
    catalog: &Catalog,
    sql: &str,
    options: cda_sql::ExecOptions,
) -> Option<String> {
    let result = cda_sql::execute_with_options(catalog, sql, options).ok()?;
    let t = &result.table;
    let mut rows: Vec<String> = (0..t.num_rows())
        .map(|i| {
            let cells: Vec<String> =
                t.row(i).unwrap_or_default().iter().map(Value::to_string).collect();
            cells.join("\u{1}")
        })
        .collect();
    rows.sort_unstable();
    Some(format!("{}cols\u{2}{}", t.num_columns(), rows.join("\u{2}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, DataType, Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("jobs", DataType::Int),
            ]),
            vec![Column::from_strs(&["ZH", "GE", "VD"]), Column::from_ints(&[100, 50, 30])],
        )
        .unwrap();
        c.register("emp", t).unwrap();
        c
    }

    #[test]
    fn order_insensitive_equality() {
        let c = catalog();
        let asc = execute(&c, "SELECT canton FROM emp ORDER BY jobs").unwrap();
        let desc = execute(&c, "SELECT canton FROM emp ORDER BY jobs DESC").unwrap();
        assert!(tables_equal_unordered(&asc.table, &desc.table));
    }

    #[test]
    fn multiset_semantics_detect_duplicates() {
        let c = catalog();
        let all = execute(&c, "SELECT 1 FROM emp").unwrap(); // three 1s
        let one = execute(&c, "SELECT 1 FROM emp LIMIT 1").unwrap();
        assert!(!tables_equal_unordered(&all.table, &one.table));
    }

    #[test]
    fn execution_accuracy_against_gold() {
        let c = catalog();
        assert!(execution_accuracy(
            &c,
            "SELECT SUM(jobs) AS s FROM emp",
            "SELECT SUM(jobs) AS result FROM emp"
        ));
        assert!(!execution_accuracy(&c, "SELECT MAX(jobs) FROM emp", "SELECT SUM(jobs) FROM emp"));
        // non-executing candidate is incorrect
        assert!(!execution_accuracy(&c, "SELECT nope FROM emp", "SELECT SUM(jobs) FROM emp"));
        // non-executing gold makes everything incorrect
        assert!(!execution_accuracy(&c, "SELECT SUM(jobs) FROM emp", "SELECT x FROM missing"));
    }

    #[test]
    fn signatures_cluster_equivalent_programs() {
        let c = catalog();
        let a = execution_signature(&c, "SELECT canton, jobs FROM emp ORDER BY jobs");
        let b = execution_signature(&c, "SELECT canton, jobs FROM emp ORDER BY canton DESC");
        assert_eq!(a, b);
        let d = execution_signature(&c, "SELECT canton, jobs FROM emp WHERE jobs > 40");
        assert_ne!(a, d);
        assert_eq!(execution_signature(&c, "SELECT broken FROM"), None);
    }

    #[test]
    fn arity_mismatch_is_unequal() {
        let c = catalog();
        let two = execute(&c, "SELECT canton, jobs FROM emp").unwrap();
        let one = execute(&c, "SELECT canton FROM emp").unwrap();
        assert!(!tables_equal_unordered(&two.table, &one.table));
    }
}
