//! Minimal CSV reader with header handling, quoting, and type inference.
//!
//! The demo catalog ships its Swiss-labour-market-style datasets as embedded
//! CSV; this module turns such text into typed [`Table`]s. It supports RFC
//! 4180-style double-quote escaping, a configurable delimiter, and infers the
//! narrowest type per column in the order BOOL → INT → FLOAT → STR. Empty
//! cells become NULL.

use crate::column::Column;
use crate::error::DataFrameError;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header (default true).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self { delimiter: ',', has_header: true }
    }
}

/// Parse CSV text into a table with inferred column types.
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<Table> {
    let records = split_records(text, options.delimiter)?;
    let mut iter = records.into_iter();
    let header: Vec<String> = match (options.has_header, iter.next()) {
        (true, Some((_, cells))) => cells,
        (true, None) => return Ok(Table::empty(Schema::empty())),
        (false, first) => {
            // Synthesize c0..cN names; put the first record back by chaining.
            let Some((line, cells)) = first else {
                return Ok(Table::empty(Schema::empty()));
            };
            let names = (0..cells.len()).map(|i| format!("c{i}")).collect();
            let rest: Vec<(usize, Vec<String>)> =
                std::iter::once((line, cells)).chain(iter).collect();
            return build_table(names, rest);
        }
    };
    let rows: Vec<(usize, Vec<String>)> = iter.collect();
    build_table(header, rows)
}

fn build_table(names: Vec<String>, rows: Vec<(usize, Vec<String>)>) -> Result<Table> {
    let ncols = names.len();
    for (line, cells) in &rows {
        if cells.len() != ncols {
            return Err(DataFrameError::CsvParse {
                line: *line,
                message: format!("expected {ncols} fields, found {}", cells.len()),
            });
        }
    }
    let mut types = vec![None::<DataType>; ncols];
    for (_, cells) in &rows {
        for (c, cell) in cells.iter().enumerate() {
            if cell.is_empty() {
                continue;
            }
            let t = infer_type(cell);
            types[c] = Some(match types[c] {
                None => t,
                Some(prev) => widen(prev, t),
            });
        }
    }
    let fields: Vec<Field> = names
        .iter()
        .zip(&types)
        .map(|(n, t)| Field::new(n.clone(), t.unwrap_or(DataType::Str)))
        .collect();
    let schema = Schema::new(fields);
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.data_type(), rows.len()))
        .collect();
    for (line, cells) in &rows {
        for (c, cell) in cells.iter().enumerate() {
            let ty = types[c].unwrap_or(DataType::Str);
            let v = parse_cell(cell, ty).map_err(|m| DataFrameError::CsvParse {
                line: *line,
                message: m,
            })?;
            columns[c].push(v)?;
        }
    }
    Table::from_columns(schema, columns)
}

fn infer_type(cell: &str) -> DataType {
    let lower = cell.to_ascii_lowercase();
    if lower == "true" || lower == "false" {
        return DataType::Bool;
    }
    if cell.parse::<i64>().is_ok() {
        return DataType::Int;
    }
    if cell.parse::<f64>().is_ok() {
        return DataType::Float;
    }
    DataType::Str
}

fn widen(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

fn parse_cell(cell: &str, ty: DataType) -> std::result::Result<Value, String> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(cell.parse::<i64>().map_err(|e| e.to_string())?),
        DataType::Float => Value::Float(cell.parse::<f64>().map_err(|e| e.to_string())?),
        DataType::Bool => Value::Bool(cell.eq_ignore_ascii_case("true")),
        DataType::Timestamp => Value::Timestamp(cell.parse::<i64>().map_err(|e| e.to_string())?),
        DataType::Str => Value::Str(cell.to_owned()),
    })
}

/// Split text into records of unquoted cells, tracking 1-based line numbers.
fn split_records(text: &str, delim: char) -> Result<Vec<(usize, Vec<String>)>> {
    let mut records = Vec::new();
    let mut cells: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    cell.push('\n');
                }
                c => cell.push(c),
            }
        } else {
            match ch {
                '"' => {
                    if !cell.is_empty() {
                        return Err(DataFrameError::CsvParse {
                            line,
                            message: "quote in the middle of an unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                c if c == delim => {
                    cells.push(std::mem::take(&mut cell));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    cells.push(std::mem::take(&mut cell));
                    if !(cells.len() == 1 && cells[0].is_empty()) {
                        records.push((record_line, std::mem::take(&mut cells)));
                    } else {
                        cells.clear();
                    }
                    record_line = line;
                }
                c => cell.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataFrameError::CsvParse { line, message: "unterminated quoted field".into() });
    }
    if any && (!cell.is_empty() || !cells.is_empty()) {
        cells.push(cell);
        records.push((record_line, cells));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_inference() {
        let t = parse_csv("name,age,score\nalice,30,1.5\nbob,25,2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        let s = t.schema();
        assert_eq!(s.field("name").unwrap().data_type(), DataType::Str);
        assert_eq!(s.field("age").unwrap().data_type(), DataType::Int);
        // score column has 1.5 and 2 → widened to FLOAT
        assert_eq!(s.field("score").unwrap().data_type(), DataType::Float);
        assert_eq!(t.value(1, 2).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn empty_cells_become_null() {
        let t = parse_csv("a,b\n1,\n,2\n", &CsvOptions::default()).unwrap();
        assert!(t.value(0, 1).unwrap().is_null());
        assert!(t.value(1, 0).unwrap().is_null());
        assert_eq!(t.value(1, 1).unwrap(), Value::Int(2));
    }

    #[test]
    fn quoted_fields_with_delimiters_and_newlines() {
        let t = parse_csv("a,b\n\"x,y\",\"line1\nline2\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 0).unwrap(), Value::from("x,y"));
        assert_eq!(t.value(0, 1).unwrap(), Value::from("line1\nline2"));
    }

    #[test]
    fn escaped_quotes() {
        let t = parse_csv("a\n\"say \"\"hi\"\"\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 0).unwrap(), Value::from("say \"hi\""));
    }

    #[test]
    fn bool_inference() {
        let t = parse_csv("flag\ntrue\nFALSE\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field("flag").unwrap().data_type(), DataType::Bool);
        assert_eq!(t.value(1, 0).unwrap(), Value::Bool(false));
    }

    #[test]
    fn mixed_types_widen_to_str() {
        let t = parse_csv("x\n1\nhello\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type(), DataType::Str);
        assert_eq!(t.value(0, 0).unwrap(), Value::from("1"));
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = parse_csv("a,b\n1,2\n3\n", &CsvOptions::default()).unwrap_err();
        match err {
            DataFrameError::CsvParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(parse_csv("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn custom_delimiter_and_no_header() {
        let opts = CsvOptions { delimiter: ';', has_header: false };
        let t = parse_csv("1;2\n3;4\n", &opts).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field("c0").unwrap().data_type(), DataType::Int);
        assert_eq!(t.value(1, 1).unwrap(), Value::Int(4));
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let t = parse_csv("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, 1).unwrap(), Value::Int(2));
    }

    #[test]
    fn missing_final_newline_ok() {
        let t = parse_csv("a\n5", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn empty_input() {
        let t = parse_csv("", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }

    #[test]
    fn blank_lines_skipped() {
        let t = parse_csv("a\n1\n\n2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
