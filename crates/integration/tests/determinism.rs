//! P4 Soundness determinism guard: the Figure-1 demo conversation must
//! replay **byte-identically** under a fixed seed — across fresh system
//! instances within one process and, because every random draw flows
//! through `cda-testkit`'s pinned xoshiro256++/SplitMix64 streams, across
//! processes and machines too.

use cda_core::demo::{demo_system, FIGURE1_TURNS};

/// Serialize one full conversation into a golden transcript: rendered
/// turns (text, confidence, property tags, suggestions), machine metadata
/// (status, executed SQL, explanation bundle), and the session lineage
/// graph. Everything except wall-clock timings.
fn golden_transcript(seed: u64) -> String {
    let mut cda = demo_system(seed);
    let mut out = String::new();
    for (i, turn) in FIGURE1_TURNS.iter().enumerate() {
        let a = cda.process(turn);
        out.push_str(&format!("=== turn {i}: {turn}\n"));
        out.push_str(&a.render());
        out.push_str(&format!("status: {:?}\n", a.status));
        out.push_str(&format!("confidence: {:?}\n", a.confidence));
        out.push_str(&format!("executed_sql: {:?}\n", a.executed_sql));
        if let Some(e) = &a.explanation {
            out.push_str(&format!("explanation.sources: {:?}\n", e.sources));
            out.push_str(&format!("explanation.code: {:?}\n", e.code));
        }
    }
    out.push_str("=== lineage\n");
    out.push_str(&cda.lineage.to_string());
    out
}

#[test]
fn figure1_transcript_replays_byte_identically() {
    let first = golden_transcript(42);
    let second = golden_transcript(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must produce the identical transcript");
}

#[test]
fn figure1_transcript_is_seed_sensitive_in_data_but_stable_in_shape() {
    // A different seed regenerates the synthetic tables, so numbers may
    // move — but the conversation structure (turn count, clarification
    // then answers) must be preserved, and the run must stay
    // self-consistent under replay.
    let a1 = golden_transcript(7);
    let a2 = golden_transcript(7);
    assert_eq!(a1, a2);
    for t in 0..FIGURE1_TURNS.len() {
        assert!(a1.contains(&format!("=== turn {t}:")), "turn {t} present");
    }
}

#[test]
fn demo_tables_regenerate_identically() {
    use cda_core::demo::{barometer_series, employment_table, wage_table};
    let (e1, e2) = (employment_table(42), employment_table(42));
    assert_eq!(e1.num_rows(), e2.num_rows());
    for r in 0..e1.num_rows() {
        assert_eq!(e1.row(r).unwrap(), e2.row(r).unwrap());
    }
    let (w1, w2) = (wage_table(42), wage_table(42));
    for r in 0..w1.num_rows() {
        assert_eq!(w1.row(r).unwrap(), w2.row(r).unwrap());
    }
    let (b1, b2) = (barometer_series(42), barometer_series(42));
    assert_eq!(b1.values(), b2.values());
}
