//! # cda-nlmodel
//!
//! The **NL Model layer** (ⓒ in Figure 1-right): intent understanding,
//! NL→SQL translation, natural-language answer generation, and the
//! inference-time *output-control* machinery the paper's Soundness section
//! prescribes (rejection sampling, grammar-constrained decoding, reward-
//! guided reranking).
//!
//! ## The simulated language model (documented substitution)
//!
//! The paper assumes hosted LLMs. This reproduction replaces them with
//! [`lm::SimLm`], a deterministic, seedable generator with a **controllable
//! error process**: given the oracle analytic task (known, because our
//! workloads are synthetic), it emits the correct SQL with probability
//! `1 − h` and a realistic *hallucination* — wrong column, wrong table,
//! dropped filter, wrong aggregate, inverted comparison, or malformed
//! syntax — with probability `h`. Its token log-probabilities are
//! deliberately **miscalibrated** (overconfident), reproducing the paper's
//! observation that "confidence scores may not accurately reflect the true
//! probability of correctness". Because ground truth is known, the soundness
//! experiments (E5–E7) can measure calibration exactly — something
//! impossible against a black-box LLM.
//!
//! Modules:
//! * [`lm`] — the simulated LM: sampling, token log-probs, hallucination
//!   operators;
//! * [`intent`] — rule-scored intent classification with confidence;
//! * [`nl2sql`] — the analytic-task IR, NL phrasing generator, oracle
//!   parser, and SQL rendering (the workload generator of E5/E7);
//! * [`constrained`] — the builder-style [`Decoder`]: grammar-constrained
//!   decoding, rejection sampling, reward-model reranking, and
//!   analyzer-guided repair of gate-rejected candidates;
//! * [`generation`] — template-based NL answer/summary generation with
//!   provenance citations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bias;
pub mod constrained;
pub mod generation;
pub mod intent;
pub mod lm;
pub mod nl2sql;

pub use constrained::{
    DecodeResult, Decoder, DecodingStrategy, RepairAttempt, RepairVerdict,
};
pub use intent::{classify_intent, Intent};
pub use lm::{Generation, HallucinationKind, SimLm, SimLmConfig};
pub use nl2sql::{AnalyticTask, Nl2SqlTask, Workload};

use std::fmt;

/// Errors from the NL model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NlError {
    /// The request could not be mapped to a known task shape.
    Unparseable(String),
    /// Generation exhausted its sampling budget without an accepted output.
    BudgetExhausted {
        /// Samples drawn.
        attempts: usize,
    },
    /// A referenced schema element does not exist.
    UnknownSchemaElement(String),
}

impl fmt::Display for NlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unparseable(q) => write!(f, "could not parse request: {q:?}"),
            Self::BudgetExhausted { attempts } => {
                write!(f, "no acceptable output after {attempts} samples")
            }
            Self::UnknownSchemaElement(e) => write!(f, "unknown schema element {e:?}"),
        }
    }
}

impl std::error::Error for NlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(NlError::BudgetExhausted { attempts: 5 }.to_string().contains('5'));
        assert!(NlError::Unparseable("hm".into()).to_string().contains("hm"));
    }
}
