//! Minimal property-testing harness replacing `proptest`, built around a
//! recorded **choice stream** (the Hypothesis/minithesis design):
//!
//! * Every generator draws from a [`TestCase`], which either samples fresh
//!   choices from a seeded [`StdRng`] (generation) or replays a recorded
//!   prefix (shrinking / regression replay). A generated value is a pure
//!   function of its choice sequence, so `map`/`flat_map` compose without
//!   any per-type shrinker.
//! * On failure the harness shrinks the *choice sequence* — deleting
//!   chunks, zeroing blocks, and binary-searching individual choices toward
//!   zero — and re-runs the property until a fixpoint. Generators are
//!   written so that smaller choices mean simpler values (shorter vectors,
//!   values nearer the range start), which is what makes this produce
//!   minimal counterexamples.
//! * Seeds are **fixed**: each property derives its case seeds from a hash
//!   of the property name (overridable with `CDA_PROP_SEED`), so every run
//!   — locally and in CI, offline — executes the identical case list. A
//!   failure report prints the case seed for direct replay.
//!
//! The porting surface mirrors `proptest`: the [`crate::proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, [`crate::prop_oneof!`],
//! [`Just`], [`any`], [`collection::vec`], [`option::of`], string classes
//! like `"[a-c]"` / `"[a-z]{0,6}"`, and `.prop_map` / `.prop_flat_map` on
//! anything that converts into a [`Gen`] (ranges, patterns, tuples).

use crate::rng::{mix64, StdRng};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ------------------------------------------------------------------ errors

/// A test case was rejected (choice-stream overrun during replay, filter
/// miss, or runaway draw count). Not a failure — the runner just moves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invalid;

/// Outcome of running a property body on one test case.
#[derive(Debug, Clone)]
pub enum TestError {
    /// Case rejected; try another.
    Invalid,
    /// Property falsified with this message.
    Fail(String),
}

impl TestError {
    /// Construct a failure with a message (what `prop_assert!` expands to).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestError::Fail(msg.into())
    }
}

impl From<Invalid> for TestError {
    fn from(_: Invalid) -> Self {
        TestError::Invalid
    }
}

// --------------------------------------------------------------- TestCase

const MAX_CHOICES: usize = 65_536;

/// One run of a property: the source of generator choices, recording
/// everything drawn so failures can be replayed and shrunk.
pub struct TestCase {
    prefix: Vec<u64>,
    rng: Option<StdRng>,
    choices: Vec<u64>,
}

impl TestCase {
    /// A fresh random case from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestCase { prefix: Vec::new(), rng: Some(StdRng::seed_from_u64(seed)), choices: Vec::new() }
    }

    /// A replay of a recorded choice sequence (used while shrinking).
    /// Drawing past the end rejects the case.
    pub fn for_choices(prefix: Vec<u64>) -> Self {
        TestCase { prefix, rng: None, choices: Vec::new() }
    }

    /// Draw a choice uniformly from `[0, max]`. During replay the recorded
    /// value is used, capped at `max` so perturbed sequences stay valid.
    pub fn choice(&mut self, max: u64) -> Result<u64, Invalid> {
        if self.choices.len() >= MAX_CHOICES {
            return Err(Invalid);
        }
        let v = if self.choices.len() < self.prefix.len() {
            self.prefix[self.choices.len()].min(max)
        } else {
            match &mut self.rng {
                Some(rng) => rng.bounded_inclusive(max),
                None => return Err(Invalid),
            }
        };
        self.choices.push(v);
        Ok(v)
    }

    /// The choices drawn so far.
    pub fn choices(&self) -> &[u64] {
        &self.choices
    }
}

// -------------------------------------------------------------- generator

/// The boxed generator function: a pure map from choice stream to value.
type GenFn<T> = Rc<dyn Fn(&mut TestCase) -> Result<T, Invalid>>;

/// A composable value generator: a pure function of the choice stream.
pub struct Gen<T> {
    f: GenFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Build a generator from a draw function.
    pub fn from_fn(f: impl Fn(&mut TestCase) -> Result<T, Invalid> + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Draw one value.
    pub fn generate(&self, tc: &mut TestCase) -> Result<T, Invalid> {
        (self.f)(tc)
    }

    /// Transform generated values.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |tc| self.generate(tc).map(&f))
    }

    /// Generate a value, then generate from a value-dependent generator.
    pub fn flat_map<U: 'static, G: IntoGen<Value = U>>(
        self,
        f: impl Fn(T) -> G + 'static,
    ) -> Gen<U> {
        Gen::from_fn(move |tc| f(self.generate(tc)?).into_gen().generate(tc))
    }

    /// Keep only values satisfying the predicate (rejects otherwise).
    pub fn filter(self, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        Gen::from_fn(move |tc| {
            let v = self.generate(tc)?;
            if pred(&v) {
                Ok(v)
            } else {
                Err(Invalid)
            }
        })
    }
}

/// Conversion into a [`Gen`] — lets ranges, string patterns, tuples, and
/// generators themselves all appear where a strategy is expected, exactly
/// like `proptest`'s `Strategy` inputs.
pub trait IntoGen {
    /// The generated value type.
    type Value;
    /// Convert into a generator.
    fn into_gen(self) -> Gen<Self::Value>;
}

impl<T> IntoGen for Gen<T> {
    type Value = T;
    fn into_gen(self) -> Gen<T> {
        self
    }
}

/// Numeric types drawable from ranges through the choice stream (smaller
/// choice ⇒ closer to the range start, which drives shrinking).
pub trait ChoiceUniform: Copy + 'static {
    /// Draw from `[lo, hi)`.
    fn draw_half_open(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid>;
    /// Draw from `[lo, hi]`.
    fn draw_inclusive(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid>;
}

macro_rules! impl_choice_uniform_int {
    ($($t:ty),*) => {$(
        impl ChoiceUniform for $t {
            fn draw_half_open(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid> {
                assert!(lo < hi, "empty generator range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                let c = tc.choice(span - 1)?;
                Ok((lo as i128 + c as i128) as $t)
            }
            fn draw_inclusive(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid> {
                assert!(lo <= hi, "empty generator range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                let c = tc.choice(span)?;
                Ok((lo as i128 + c as i128) as $t)
            }
        }
    )*};
}

impl_choice_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

const FLOAT_GRAIN: u64 = 1 << 53;

macro_rules! impl_choice_uniform_float {
    ($($t:ty),*) => {$(
        impl ChoiceUniform for $t {
            fn draw_half_open(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid> {
                assert!(lo < hi, "empty generator range {lo}..{hi}");
                let c = tc.choice(FLOAT_GRAIN - 1)?;
                let u = c as f64 / FLOAT_GRAIN as f64;
                let v = lo + (hi - lo) * (u as $t);
                Ok(if v < hi { v } else { lo })
            }
            fn draw_inclusive(tc: &mut TestCase, lo: Self, hi: Self) -> Result<Self, Invalid> {
                assert!(lo <= hi, "empty generator range {lo}..={hi}");
                let c = tc.choice(FLOAT_GRAIN)?;
                let u = c as f64 / FLOAT_GRAIN as f64;
                Ok(lo + (hi - lo) * (u as $t))
            }
        }
    )*};
}

impl_choice_uniform_float!(f32, f64);

impl<T: ChoiceUniform> IntoGen for std::ops::Range<T> {
    type Value = T;
    fn into_gen(self) -> Gen<T> {
        Gen::from_fn(move |tc| T::draw_half_open(tc, self.start, self.end))
    }
}

impl<T: ChoiceUniform> IntoGen for std::ops::RangeInclusive<T> {
    type Value = T;
    fn into_gen(self) -> Gen<T> {
        let (lo, hi) = self.into_inner();
        Gen::from_fn(move |tc| T::draw_inclusive(tc, lo, hi))
    }
}

/// String patterns (`"[a-c]"`, `"[a-z]{0,6}"`) act directly as generators.
impl IntoGen for &'static str {
    type Value = String;
    fn into_gen(self) -> Gen<String> {
        string_class(self)
    }
}

macro_rules! impl_into_gen_tuple {
    ($($g:ident / $v:ident / $idx:tt),+) => {
        impl<$($g: IntoGen + Clone + 'static),+> IntoGen for ($($g,)+)
        where
            $(<$g as IntoGen>::Value: 'static),+
        {
            type Value = ($(<$g as IntoGen>::Value,)+);
            fn into_gen(self) -> Gen<Self::Value> {
                $(let $v = self.$idx.into_gen();)+
                Gen::from_fn(move |tc| Ok(($($v.generate(tc)?,)+)))
            }
        }
    };
}

impl_into_gen_tuple!(G0 / g0 / 0, G1 / g1 / 1);
impl_into_gen_tuple!(G0 / g0 / 0, G1 / g1 / 1, G2 / g2 / 2);
impl_into_gen_tuple!(G0 / g0 / 0, G1 / g1 / 1, G2 / g2 / 2, G3 / g3 / 3);
impl_into_gen_tuple!(G0 / g0 / 0, G1 / g1 / 1, G2 / g2 / 2, G3 / g3 / 3, G4 / g4 / 4);

/// Proptest-style combinator methods available on every strategy-like value
/// (generators, ranges, string patterns, tuples).
pub trait GenExt: IntoGen + Sized
where
    Self::Value: 'static,
{
    /// Transform generated values.
    fn prop_map<U: 'static>(self, f: impl Fn(Self::Value) -> U + 'static) -> Gen<U> {
        self.into_gen().map(f)
    }

    /// Generate, then generate from a value-dependent strategy.
    fn prop_flat_map<U: 'static, G: IntoGen<Value = U>>(
        self,
        f: impl Fn(Self::Value) -> G + 'static,
    ) -> Gen<U> {
        self.into_gen().flat_map(f)
    }

    /// Keep only values satisfying the predicate.
    fn prop_filter(self, pred: impl Fn(&Self::Value) -> bool + 'static) -> Gen<Self::Value> {
        self.into_gen().filter(pred)
    }
}

impl<G: IntoGen> GenExt for G where G::Value: 'static {}

// ---------------------------------------------------------- leaf builders

/// Always the same value (shrinks to itself).
#[allow(non_snake_case)] // mirrors proptest's `Just` strategy
pub fn Just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::from_fn(move |_| Ok(v.clone()))
}

/// Types with a canonical full-domain generator (for [`any`]).
pub trait Arbitrary: Sized + 'static {
    /// The canonical generator for this type.
    fn arbitrary() -> Gen<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> Gen<bool> {
        Gen::from_fn(|tc| Ok(tc.choice(1)? == 1))
    }
}

impl Arbitrary for u8 {
    fn arbitrary() -> Gen<u8> {
        Gen::from_fn(|tc| Ok(tc.choice(u8::MAX as u64)? as u8))
    }
}

impl Arbitrary for u64 {
    fn arbitrary() -> Gen<u64> {
        Gen::from_fn(|tc| tc.choice(u64::MAX))
    }
}

impl Arbitrary for i64 {
    fn arbitrary() -> Gen<i64> {
        Gen::from_fn(|tc| Ok(tc.choice(u64::MAX)? as i64))
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> Gen<f64> {
        (0.0f64..1.0).into_gen()
    }
}

/// The canonical generator for `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Gen<T> {
    T::arbitrary()
}

/// Length specification for [`collection::vec`]: accepts `a..b`, `a..=b`,
/// or an exact `usize`.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    min: usize,
    max: usize,
}

impl From<std::ops::Range<usize>> for LenRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        LenRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for LenRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        LenRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for LenRange {
    fn from(n: usize) -> Self {
        LenRange { min: n, max: n }
    }
}

/// Collection generators (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// A vector whose elements come from `g` and whose length lies in
    /// `len`. Encoded with a continue-bit per optional element so the
    /// shrinker can drop elements by zeroing a single choice.
    pub fn vec<G: IntoGen>(g: G, len: impl Into<LenRange>) -> Gen<Vec<G::Value>>
    where
        G::Value: 'static,
    {
        let LenRange { min, max } = len.into();
        let g = g.into_gen();
        Gen::from_fn(move |tc| {
            let mut out = Vec::with_capacity(min);
            while out.len() < min {
                out.push(g.generate(tc)?);
            }
            while out.len() < max {
                if tc.choice(1)? == 0 {
                    break;
                }
                out.push(g.generate(tc)?);
            }
            Ok(out)
        })
    }
}

/// Option generators (mirrors `proptest::option`).
pub mod option {
    use super::*;

    /// `None` a quarter of the time, `Some` from `g` otherwise (shrinks
    /// toward `None`).
    pub fn of<G: IntoGen>(g: G) -> Gen<Option<G::Value>>
    where
        G::Value: 'static,
    {
        let g = g.into_gen();
        Gen::from_fn(move |tc| {
            if tc.choice(3)? == 0 {
                Ok(None)
            } else {
                Ok(Some(g.generate(tc)?))
            }
        })
    }
}

/// Pick one of several weighted generators; used by [`crate::prop_oneof!`].
pub fn weighted_union<T: 'static>(variants: Vec<(u32, Gen<T>)>) -> Gen<T> {
    assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
    let total: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    Gen::from_fn(move |tc| {
        let mut c = tc.choice(total - 1)?;
        for (w, g) in &variants {
            let w = u64::from(*w);
            if c < w {
                return g.generate(tc);
            }
            c -= w;
        }
        unreachable!("choice below total weight")
    })
}

// ------------------------------------------------------ regex-lite strings

/// A generator for a regex-lite string pattern: one character class with an
/// optional repetition — `"[a-c]"`, `"[a-z]{0,6}"`, `"[ab%_]{3}"`. Ranges
/// (`a-z`) and literal characters (including `%`, `_`) may be mixed inside
/// the class. Without a repetition suffix exactly one character is
/// generated, matching `proptest`'s treatment of `"[a-c]"`.
pub fn string_class(pattern: &str) -> Gen<String> {
    let (chars, min, max) = parse_class(pattern)
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}"));
    collection::vec(
        Gen::from_fn(move |tc| {
            let i = tc.choice(chars.len() as u64 - 1)? as usize;
            Ok(chars[i])
        }),
        min..=max,
    )
    .map(|cs| cs.into_iter().collect())
}

fn parse_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    if class.is_empty() {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            chars.extend(a..=b);
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let suffix = &rest[close + 1..];
    if suffix.is_empty() {
        return Some((chars, 1, 1));
    }
    let body = suffix.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let k = body.trim().parse().ok()?;
            (k, k)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

// ----------------------------------------------------------------- runner

/// Property-run configuration. `ProptestConfig` is an alias kept for
/// mechanical porting of `#![proptest_config(...)]` headers.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property (≥ 64 repo-wide, per the
    /// determinism/soundness acceptance bar).
    pub cases: u32,
    /// Cap on shrink attempts after a failure.
    pub max_shrink_iters: u32,
    /// Explicit base seed; defaults to a hash of the property name
    /// (override globally with `CDA_PROP_SEED`).
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_shrink_iters: 4096, seed: None }
    }
}

impl Config {
    /// A config with the given number of cases (clamped up to the repo
    /// floor of 64).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases: cases.max(64), ..Config::default() }
    }
}

/// Alias so ported `#![proptest_config(ProptestConfig::with_cases(n))]`
/// headers keep reading naturally.
pub type ProptestConfig = Config;

fn base_seed(name: &str, cfg: &Config) -> u64 {
    if let Some(s) = cfg.seed {
        return s;
    }
    if let Ok(s) = std::env::var("CDA_PROP_SEED") {
        if let Ok(v) = s.trim().parse::<u64>() {
            return v;
        }
    }
    // FNV-1a over the property name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn run_one(
    f: &dyn Fn(&mut TestCase) -> Result<(), TestError>,
    tc: &mut TestCase,
) -> Result<(), TestError> {
    match catch_unwind(AssertUnwindSafe(|| f(tc))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_owned()
            };
            Err(TestError::Fail(format!("panicked: {msg}")))
        }
    }
}

/// Run a property: generate `cfg.cases` cases from fixed seeds, shrink the
/// first failure to a minimal choice sequence, and panic with a replayable
/// report. This is what the [`crate::proptest!`] macro expands to.
pub fn run_property(
    name: &str,
    cfg: &Config,
    f: impl Fn(&mut TestCase) -> Result<(), TestError>,
) {
    let base = base_seed(name, cfg);
    let mut executed = 0u32;
    let mut attempts = 0u64;
    let budget = u64::from(cfg.cases) * 16;
    while executed < cfg.cases {
        if attempts >= budget {
            panic!(
                "property {name}: gave up after {attempts} attempts \
                 ({executed}/{} cases ran; too many rejected cases)",
                cfg.cases
            );
        }
        let seed = mix64(base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempts += 1;
        let mut tc = TestCase::from_seed(seed);
        match run_one(&f, &mut tc) {
            Ok(()) => executed += 1,
            Err(TestError::Invalid) => {}
            Err(TestError::Fail(msg)) => {
                let (choices, final_msg) =
                    shrink(tc.choices().to_vec(), msg, cfg.max_shrink_iters, &f);
                let mut report = String::new();
                let _ = writeln!(report, "property {name} falsified: {final_msg}");
                let _ = writeln!(
                    report,
                    "  case {executed} of {}, case seed {seed} (base seed {base}; \
                     set CDA_PROP_SEED={base} to replay the full run)",
                    cfg.cases
                );
                let _ = writeln!(report, "  minimal choices ({}): {choices:?}", choices.len());
                panic!("{report}");
            }
        }
    }
}

/// Replay a property body against an explicit choice sequence — used to pin
/// shrunk counterexamples as named regression tests.
pub fn replay(
    choices: &[u64],
    f: impl Fn(&mut TestCase) -> Result<(), TestError>,
) -> Result<(), String> {
    let mut tc = TestCase::for_choices(choices.to_vec());
    match run_one(&f, &mut tc) {
        Ok(()) => Ok(()),
        Err(TestError::Invalid) => Err("replay rejected (choice stream overrun)".to_owned()),
        Err(TestError::Fail(msg)) => Err(msg),
    }
}

/// Shrink a failing choice sequence: chunk deletion, block zeroing, and
/// per-choice binary search, looped to a fixpoint (or the iteration cap).
fn shrink(
    mut best: Vec<u64>,
    mut msg: String,
    max_iters: u32,
    f: &dyn Fn(&mut TestCase) -> Result<(), TestError>,
) -> (Vec<u64>, String) {
    let mut iters = 0u32;
    // Re-run a candidate; on failure return what was actually *drawn*
    // (replay caps choices at each draw's max and may stop early, so the
    // recorded sequence is the canonical — and never larger — form).
    let check = |candidate: &[u64], iters: &mut u32| -> Option<(Vec<u64>, String)> {
        if *iters >= max_iters {
            return None;
        }
        *iters += 1;
        let mut tc = TestCase::for_choices(candidate.to_vec());
        match run_one(f, &mut tc) {
            Err(TestError::Fail(m)) => Some((tc.choices().to_vec(), m)),
            _ => None,
        }
    };

    loop {
        let before = best.clone();

        // Pass 1: delete chunks (largest first, scanning from the tail).
        for size in [8usize, 4, 2, 1] {
            let mut start = best.len().saturating_sub(size);
            loop {
                if start + size <= best.len() {
                    let mut candidate = best.clone();
                    candidate.drain(start..start + size);
                    if let Some((rec, m)) = check(&candidate, &mut iters) {
                        best = rec;
                        msg = m;
                        // retry the same start: more may be deletable here
                        start = start.min(best.len().saturating_sub(size));
                        continue;
                    }
                }
                if start == 0 {
                    break;
                }
                start -= 1;
            }
        }

        // Pass 2: zero blocks.
        for size in [8usize, 4, 2, 1] {
            let mut start = 0usize;
            while start + size <= best.len() {
                if best[start..start + size].iter().any(|&c| c != 0) {
                    let mut candidate = best.clone();
                    for c in &mut candidate[start..start + size] {
                        *c = 0;
                    }
                    if let Some((rec, m)) = check(&candidate, &mut iters) {
                        best = rec;
                        msg = m;
                    }
                }
                start += 1;
            }
        }

        // Pass 3: minimize each choice toward zero by binary search.
        let mut i = 0usize;
        while i < best.len() {
            let (mut lo, mut hi) = (0u64, best[i]);
            while lo < hi && i < best.len() {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if let Some((rec, m)) = check(&candidate, &mut iters) {
                    best = rec;
                    msg = m;
                    if i >= best.len() {
                        break;
                    }
                    hi = best[i].min(mid);
                } else {
                    lo = mid + 1;
                }
            }
            i += 1;
        }

        if best == before || iters >= max_iters {
            return (best, msg);
        }
    }
}

// ----------------------------------------------------------------- macros

/// Fail the surrounding property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "left: {:?}\n right: {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "left: {:?}\n right: {:?}\n {}", __a, __b, format!($($fmt)+)
        );
    }};
}

/// Fail the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "both: {:?}", __a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "both: {:?}\n {}", __a, format!($($fmt)+));
    }};
}

/// Weighted choice between strategies: `prop_oneof![3 => g1, 1 => g2]` or
/// unweighted `prop_oneof![g1, g2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $gen:expr),+ $(,)?) => {
        $crate::prop::weighted_union(vec![
            $(($weight as u32, $crate::prop::IntoGen::into_gen($gen))),+
        ])
    };
    ($($gen:expr),+ $(,)?) => {
        $crate::prop::weighted_union(vec![
            $((1u32, $crate::prop::IntoGen::into_gen($gen))),+
        ])
    };
}

/// Define property tests, proptest-style. Each `fn name(arg in strategy,
/// ...) { body }` becomes a `#[test]` that generates fixed-seed cases and
/// shrinks failures. An optional `#![proptest_config(...)]` header sets the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::prop::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::prop::Config = $cfg;
            $crate::prop::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &__cfg,
                |__tc| {
                    $(let $arg = $crate::prop::IntoGen::into_gen($gen).generate(__tc)?;)+
                    let __body: ::std::result::Result<(), $crate::prop::TestError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __body
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_class_parses_ranges_and_repeats() {
        let (chars, min, max) = parse_class("[a-c]").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 1));

        let (chars, min, max) = parse_class("[a-z]{0,6}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((min, max), (0, 6));

        let (chars, min, max) = parse_class("[ab%_]{3}").unwrap();
        assert_eq!(chars, vec!['a', 'b', '%', '_']);
        assert_eq!((min, max), (3, 3));

        assert!(parse_class("abc").is_none());
        assert!(parse_class("[]").is_none());
    }

    #[test]
    fn generators_respect_domains() {
        let mut tc = TestCase::from_seed(1);
        for _ in 0..2000 {
            let v = (-50i64..50).into_gen().generate(&mut tc).unwrap();
            assert!((-50..50).contains(&v));
            let f = (-10.0f64..10.0).into_gen().generate(&mut tc).unwrap();
            assert!((-10.0..10.0).contains(&f));
            let s = string_class("[a-c]").generate(&mut tc).unwrap();
            assert_eq!(s.len(), 1);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let xs = collection::vec(0i64..10, 2..=5).generate(&mut tc).unwrap();
            assert!((2..=5).contains(&xs.len()));
        }
    }

    #[test]
    fn vec_lengths_cover_range() {
        let mut tc = TestCase::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let xs = collection::vec(0i64..10, 0..7).generate(&mut tc).unwrap();
            seen[xs.len()] = true;
        }
        assert!(seen.iter().all(|&b| b), "lengths 0..=6 all seen: {seen:?}");
    }

    #[test]
    fn replay_reproduces_generation() {
        let gen = collection::vec((0i64..100, string_class("[a-z]{0,4}")), 0..6);
        let mut tc = TestCase::from_seed(17);
        let first = gen.generate(&mut tc).unwrap();
        let choices = tc.choices().to_vec();
        let mut replayed = TestCase::for_choices(choices);
        let second = gen.generate(&mut replayed).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn shrinking_finds_minimal_vec_counterexample() {
        // Planted failure: "no vector sums to >= 100". The minimal
        // counterexample is a single element of exactly 100.
        let gen = collection::vec(0i64..1000, 0..20);
        let failing = |tc: &mut TestCase| -> Result<(), TestError> {
            let xs = gen.generate(tc)?;
            if xs.iter().sum::<i64>() >= 100 {
                Err(TestError::fail(format!("sum {} >= 100 for {xs:?}", xs.iter().sum::<i64>())))
            } else {
                Ok(())
            }
        };
        // find a failing case
        let mut found = None;
        for attempt in 0..1000u64 {
            let mut tc = TestCase::from_seed(mix64(attempt));
            if failing(&mut tc).is_err() {
                found = Some(tc.choices().to_vec());
                break;
            }
        }
        let choices = found.expect("planted failure found");
        let (min_choices, _) = shrink(choices, String::new(), 4096, &failing);
        let mut tc = TestCase::for_choices(min_choices);
        let xs = gen.generate(&mut tc).unwrap();
        assert_eq!(xs, vec![100], "shrinker must find the minimal counterexample");
    }

    #[test]
    fn shrinking_minimizes_scalar() {
        let failing = |tc: &mut TestCase| -> Result<(), TestError> {
            let v = (0i64..100_000).into_gen().generate(tc)?;
            if v >= 4321 {
                Err(TestError::fail(format!("{v} >= 4321")))
            } else {
                Ok(())
            }
        };
        let mut found = None;
        for attempt in 0..1000u64 {
            let mut tc = TestCase::from_seed(mix64(attempt));
            if failing(&mut tc).is_err() {
                found = Some(tc.choices().to_vec());
                break;
            }
        }
        let (min_choices, _) = shrink(found.unwrap(), String::new(), 4096, &failing);
        let mut tc = TestCase::for_choices(min_choices);
        let v = (0i64..100_000).into_gen().generate(&mut tc).unwrap();
        assert_eq!(v, 4321);
    }

    #[test]
    fn run_property_passes_sound_properties() {
        run_property("testkit::sound", &Config::with_cases(64), |tc| {
            let xs = collection::vec(-50i64..50, 0..30).generate(tc)?;
            let doubled: Vec<i64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (d, x) in doubled.iter().zip(&xs) {
                prop_assert_eq!(*d, x * 2);
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn run_property_reports_planted_failure() {
        run_property("testkit::planted", &Config::with_cases(64), |tc| {
            let v = (0i64..1000).into_gen().generate(tc)?;
            prop_assert!(v < 900, "planted: {v}");
            Ok(())
        });
    }

    #[test]
    fn oneof_hits_all_variants() {
        let gen = crate::prop_oneof![
            3 => (0i64..10).prop_map(|_| 0usize),
            1 => Just(1usize),
            1 => Just(2usize),
        ];
        let mut tc = TestCase::from_seed(5);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[gen.generate(&mut tc).unwrap()] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn fixed_seeds_make_runs_identical() {
        let collect = || {
            let gen = collection::vec((0i64..50, string_class("[a-d]")), 1..8);
            let mut out = Vec::new();
            for case in 0..32u64 {
                let mut tc = TestCase::from_seed(mix64(0xABC ^ case));
                out.push(gen.generate(&mut tc).unwrap());
            }
            out
        };
        assert_eq!(collect(), collect());
    }
}
