//! Property suite for static effect analysis (`cda_analyzer::effects`) and
//! the runtime effect sanitizer (DESIGN.md §16, experiment E21).
//!
//! The laws certified here:
//!
//! 1. **Write-set soundness** — for every corpus DML statement and for
//!    property-generated DML over random NULL-dense tables, the columns the
//!    executor *actually* writes (`DmlResult::touched`) are a subset of the
//!    static write set, on both engines. Consequently the statically
//!    derived [`WriteGuard`] accepts every honest execution: the effect
//!    sanitizer has zero false positives.
//! 2. **Affected-row bracketing** — the abstract interpreter's
//!    `affected_rows` bounds bracket the runtime `affected` count, and a
//!    `provable_noop` verdict really means zero rows were touched.
//! 3. **Invalidation completeness** — the no-stale-serve law behind precise
//!    cache invalidation: for every (write, read) pair in the corpus, if
//!    committing the write changes the read's answer, then the write's
//!    effect set invalidates the read's plan read set. (Precision — reads
//!    that *survive* invalidation — is covered table-by-table in the unit
//!    suite and end-to-end in `cda-integration/tests/storage.rs`.)
//! 4. **Zero false rejects** — the DML soundness gate (`A019`–`A023`)
//!    passes every valid statement of the gold workload: nothing the
//!    executor would run correctly is doomed by the analyzer.
//! 5. **Mutation test** — deliberately-broken guards (wrong table, missing
//!    column) are caught by the sanitizer on both engines, so the
//!    cross-check is live, not vacuously green.

use cda_analyzer::{plan_reads, statement_effects, Analyzer, EffectSet, Statistics};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::exec::optimized_plan;
use cda_sql::parser::parse_statement;
use cda_sql::{
    execute, execute_dml, execute_dml_checked, plan_dml, Catalog, ExecOptions, OptimizerRules,
    WriteGuard,
};
use cda_testkit::prelude::*;
use cda_testkit::prop as proptest;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let emp = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("jobs", DataType::Int),
            Field::new("rate", DataType::Float),
        ]),
        vec![
            Column::from_strs(&["ZH", "BE", "ZH", "GE", "BE", "ZH"]),
            Column::from_strs(&["it", "it", "finance", "health", "health", "it"]),
            Column::from_opt_ints(&[Some(120), Some(0), Some(340), None, Some(75), Some(18)]),
            Column::from_floats(&[1.5, 0.0, 2.25, 3.5, 0.5, 1.0]),
        ],
    )
    .expect("emp table");
    let regions = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("population", DataType::Int),
        ]),
        vec![
            Column::from_strs(&["ZH", "BE", "GE", "VD"]),
            Column::from_opt_ints(&[Some(1_500_000), Some(1_000_000), None, Some(800_000)]),
        ],
    )
    .expect("regions table");
    c.register("emp", emp).expect("register emp");
    c.register("regions", regions).expect("register regions");
    c
}

/// The DML gold workload: every INSERT/UPDATE/DELETE shape the planner
/// supports, including NULL-matching predicates, multi-column SETs,
/// WHERE-less statements, and provably-empty filters.
fn dml_corpus() -> Vec<&'static str> {
    vec![
        "INSERT INTO emp (canton, sector, jobs, rate) VALUES ('TI', 'it', 40, 1.25)",
        "INSERT INTO emp (canton, jobs) VALUES ('SG', 7)",
        "UPDATE emp SET jobs = jobs + 10 WHERE canton = 'ZH'",
        "UPDATE emp SET rate = rate * 2.0, jobs = 0 WHERE sector = 'health'",
        "UPDATE emp SET jobs = 99",
        "UPDATE emp SET rate = 1.0 WHERE 1 = 2",
        "UPDATE emp SET jobs = 5 WHERE jobs IS NULL",
        "UPDATE emp SET jobs = jobs % 7 WHERE jobs > 20 AND rate < 3.0",
        "DELETE FROM emp WHERE jobs < 20",
        "DELETE FROM emp WHERE canton = 'GE' AND sector = 'health'",
        "DELETE FROM emp WHERE 1 = 2",
        "UPDATE regions SET population = population + 1 WHERE canton = 'ZH'",
        "DELETE FROM regions WHERE population IS NULL",
    ]
}

/// Reads whose cached answers the invalidation layer must protect.
fn read_corpus() -> Vec<&'static str> {
    vec![
        "SELECT canton FROM emp",
        "SELECT SUM(jobs) FROM emp",
        "SELECT sector, AVG(rate) FROM emp GROUP BY sector ORDER BY sector",
        "SELECT canton FROM emp WHERE jobs > 50",
        "SELECT population FROM regions",
        "SELECT COUNT(*) FROM regions WHERE population > 900000",
        "SELECT e.canton FROM emp e JOIN regions r ON e.canton = r.canton",
    ]
}

fn effects_of(c: &Catalog, stats: Option<&Statistics>, sql: &str) -> EffectSet {
    statement_effects(c, &parse_statement(sql).expect(sql), stats).expect(sql)
}

/// Laws 1 + 2 for one statement on one engine; returns the affected count
/// so callers can cross-check engines against each other.
fn assert_write_sound(c: &Catalog, stats: Option<&Statistics>, sql: &str, opts: ExecOptions) -> u64 {
    let effects = effects_of(c, stats, sql);
    let plan = plan_dml(c, &parse_statement(sql).expect(sql)).expect(sql);
    let free = execute_dml(c, &plan, opts).expect(sql);

    // Law 1: the runtime touched set is inside the static write set, on the
    // one table the analysis says is written.
    assert_eq!(effects.writes.len(), 1, "{sql}: DML writes exactly one table");
    let written = effects
        .writes
        .get(&free.table)
        .unwrap_or_else(|| panic!("{sql}: runtime table {} not in static write set", free.table));
    for col in &free.touched {
        assert!(written.contains(col), "{sql}: touched column {col} escapes the write set");
    }

    // …so the statically derived guard accepts the honest execution.
    let guard = effects.write_guard().expect("single-table write has a guard");
    let guarded = execute_dml_checked(c, &plan, opts, Some(&guard)).expect(sql);
    assert_eq!(guarded.affected, free.affected, "{sql}: guard changed the outcome");
    assert_eq!(guarded.touched, free.touched, "{sql}: guard changed the touched set");

    // Law 2: the static row bounds bracket the runtime count.
    if let Some((lo, hi)) = effects.affected_rows {
        assert!(
            lo <= free.affected && free.affected <= hi,
            "{sql}: affected {} outside static bounds [{lo}, {hi}]",
            free.affected
        );
    }
    if effects.provable_noop {
        assert_eq!(free.affected, 0, "{sql}: provable noop wrote rows");
    }
    free.affected
}

#[test]
fn corpus_writes_stay_inside_static_write_sets_on_both_engines() {
    let c = catalog();
    let stats = Statistics::from_catalog(&c);
    // Row reference, default vectorized, and off-default morsel shapes.
    let engines = [
        ExecOptions::default(),
        ExecOptions::vectorized(),
        ExecOptions {
            vectorized: Some(cda_sql::MorselConfig { morsel_rows: 1, threads: 2 }),
            ..ExecOptions::default()
        },
        ExecOptions {
            vectorized: Some(cda_sql::MorselConfig { morsel_rows: 4096, threads: 8 }),
            ..ExecOptions::default()
        },
    ];
    for sql in dml_corpus() {
        let affected: Vec<u64> = engines
            .iter()
            .map(|opts| assert_write_sound(&c, Some(&stats), sql, *opts))
            .collect();
        assert!(
            affected.iter().all(|a| *a == affected[0]),
            "{sql}: engine configs disagree on affected rows: {affected:?}"
        );
        // Stats only sharpen the analysis; soundness must hold without them.
        assert_write_sound(&c, None, sql, ExecOptions::default());
    }
}

#[test]
fn changed_answers_are_always_invalidated() {
    let c = catalog();
    let stats = Statistics::from_catalog(&c);
    let reads: Vec<(String, EffectSet)> = read_corpus()
        .into_iter()
        .map(|q| {
            let plan = optimized_plan(&c, q, OptimizerRules::all()).expect(q);
            (q.to_owned(), EffectSet::read_only(plan_reads(&plan)))
        })
        .collect();
    let mut changed_pairs = 0usize;
    for sql in dml_corpus() {
        let effects = effects_of(&c, Some(&stats), sql);
        let plan = plan_dml(&c, &parse_statement(sql).expect(sql)).expect(sql);
        let result = execute_dml(&c, &plan, ExecOptions::default()).expect(sql);
        // Commit into a throwaway catalog copy.
        let mut after = c.clone();
        after.replace_table(&result.table, result.new_table.clone()).expect(sql);
        for (q, read_effects) in &reads {
            let before = format!("{:?}", execute(&c, q).expect(q).table);
            let post = format!("{:?}", execute(&after, q).expect(q).table);
            if before != post {
                changed_pairs += 1;
                assert!(
                    effects.invalidates(&read_effects.reads),
                    "stale serve: `{sql}` changed the answer to `{q}` \
                     but does not invalidate its read set {}",
                    read_effects
                );
            }
        }
    }
    // The law must not hold vacuously: the corpus has to produce real
    // cross-pair answer changes.
    assert!(changed_pairs >= 20, "only {changed_pairs} changed (write, read) pairs");
}

#[test]
fn gate_has_zero_false_rejects_on_the_gold_workload() {
    let c = catalog();
    let stats = Statistics::from_catalog(&c);
    let analyzer = Analyzer::new(&c).with_stats(&stats);
    for sql in dml_corpus().into_iter().chain(read_corpus()) {
        let report = analyzer.analyze_statement(sql);
        assert!(
            !report.dooms_execution(),
            "false reject of valid statement `{sql}`: {}",
            report.summary()
        );
    }
}

#[test]
fn tampered_guards_are_caught_on_both_engines() {
    let c = catalog();
    let sql = "UPDATE emp SET jobs = 0, rate = 0.5 WHERE canton = 'ZH'";
    let plan = plan_dml(&c, &parse_statement(sql).expect(sql)).expect(sql);
    let mutants = [
        WriteGuard::new("regions", ["population".to_owned()]),
        WriteGuard::new("emp", ["jobs".to_owned()]),
        WriteGuard::new("emp", ["canton".to_owned(), "sector".to_owned()]),
    ];
    let mut caught = 0usize;
    for guard in &mutants {
        for opts in [ExecOptions::default(), ExecOptions::vectorized()] {
            let err = execute_dml_checked(&c, &plan, opts, Some(guard))
                .expect_err("broken guard must be caught");
            assert!(err.to_string().contains("effect sanitizer"), "{err}");
            caught += 1;
        }
    }
    assert_eq!(caught, 6, "every mutant caught on both engines");
}

// ------------------------------------------------------------ property tests

fn table_strategy() -> Gen<Table> {
    // (g, x, y) with a high NULL density so NULL-matching writes dominate.
    (1usize..32).prop_flat_map(|n| {
        (
            proptest::collection::vec("[a-c]", n..=n),
            proptest::collection::vec(proptest::option::of(-50i64..50), n..=n),
            proptest::collection::vec(proptest::option::of(-10.0f64..10.0), n..=n),
        )
            .prop_map(|(groups, xs, ys)| {
                let schema = Schema::new(vec![
                    Field::new("g", DataType::Str),
                    Field::new("x", DataType::Int),
                    Field::new("y", DataType::Float),
                ]);
                let gs: Vec<&str> = groups.iter().map(String::as_str).collect();
                Table::from_columns(
                    schema,
                    vec![
                        Column::from_strs(&gs),
                        Column::from_opt_ints(&xs),
                        Column::from_opt_floats(&ys),
                    ],
                )
                .expect("consistent columns")
            })
    })
}

/// DML templates over the generated (g, x, y) table; `{pivot}` moves the
/// filters so empty matches, full-table matches, and NULL comparisons all
/// appear organically.
fn generated_dml(pivot: i64) -> Vec<String> {
    vec![
        format!("UPDATE t SET x = x + 1 WHERE x > {pivot}"),
        format!("UPDATE t SET y = 0.0, x = {pivot} WHERE g = 'a'"),
        "UPDATE t SET x = 0 WHERE 1 = 2".to_string(),
        "UPDATE t SET y = y * 2.0 WHERE x IS NULL".to_string(),
        format!("DELETE FROM t WHERE x < {pivot}"),
        "DELETE FROM t WHERE g = 'b' AND y IS NULL".to_string(),
        format!("INSERT INTO t (g, x) VALUES ('z', {pivot})"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Laws 1 + 2 on random NULL-dense tables: the touched set never
    /// escapes the static write set and the row bounds always bracket the
    /// runtime count, on both engines, with and without statistics.
    #[test]
    fn generated_writes_stay_inside_static_write_sets(t in table_strategy(), pivot in -50i64..50) {
        let mut c = Catalog::new();
        c.register("t", t).unwrap();
        let stats = Statistics::from_catalog(&c);
        for sql in generated_dml(pivot) {
            let row = assert_write_sound(&c, Some(&stats), &sql, ExecOptions::default());
            let vec = assert_write_sound(&c, Some(&stats), &sql, ExecOptions::vectorized());
            assert_eq!(row, vec, "{sql}: engines disagree on affected rows");
            assert_write_sound(&c, None, &sql, ExecOptions::default());
        }
    }
}
