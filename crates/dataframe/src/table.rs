//! Tables: schema + columns + row provenance identifiers.
//!
//! Every [`Table`] carries a [`RowId`] per physical row. For base tables the
//! ids are `(table_tag, row_index)`; derived tables produced by kernels and
//! SQL operators *propagate* the ids of the rows that contributed. This is
//! the minimal machinery the paper's P3 (Explainability) requires: any output
//! row can be traced back to the base rows it came from ("where-from"
//! provenance), and the provenance crate builds richer semiring annotations
//! on top of the same ids.

use crate::column::Column;
use crate::error::DataFrameError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::fmt;
use std::fmt::Write as _;

/// Identifier of a base-table row: `(table_tag, row_index)`.
///
/// `table_tag` is assigned by the catalog (or 0 for anonymous tables); the
/// pair is globally unique within one CDA session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Catalog tag of the base table this row belongs to.
    pub table: u32,
    /// Zero-based physical row index inside the base table.
    pub row: u64,
}

impl RowId {
    /// Construct a row id.
    pub fn new(table: u32, row: u64) -> Self {
        Self { table, row }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}:r{}", self.table, self.row)
    }
}

/// The provenance of one output row: the set of base rows that contributed.
pub type Lineage = Vec<RowId>;

/// An immutable columnar table with per-row lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    /// `lineage[i]` lists the base rows that produced row `i`.
    lineage: Vec<Lineage>,
    num_rows: usize,
}

impl Table {
    /// Build a table from a schema and matching columns. Lineage is
    /// initialized as a fresh base table with tag 0; use
    /// [`Table::with_table_tag`] to re-tag after catalog registration.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(DataFrameError::ArityMismatch {
                fields: schema.len(),
                columns: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != num_rows {
                return Err(DataFrameError::LengthMismatch { expected: num_rows, actual: c.len() });
            }
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.data_type() != c.data_type() {
                return Err(DataFrameError::TypeMismatch {
                    expected: f.data_type().to_string(),
                    actual: c.data_type().to_string(),
                });
            }
        }
        let lineage = (0..num_rows).map(|i| vec![RowId::new(0, i as u64)]).collect();
        Ok(Self { schema, columns, lineage, num_rows })
    }

    /// Build a derived table with explicit lineage (one entry per row).
    pub fn with_lineage(schema: Schema, columns: Vec<Column>, lineage: Vec<Lineage>) -> Result<Self> {
        let mut t = Self::from_columns(schema, columns)?;
        if lineage.len() != t.num_rows {
            return Err(DataFrameError::LengthMismatch {
                expected: t.num_rows,
                actual: lineage.len(),
            });
        }
        t.lineage = lineage;
        Ok(t)
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::with_capacity(f.data_type(), 0)).collect();
        Self { schema, columns, lineage: Vec::new(), num_rows: 0 }
    }

    /// Re-tag this table's base lineage with a catalog tag (returns a new
    /// table whose rows are `(tag, i)`).
    pub fn with_table_tag(mut self, tag: u32) -> Self {
        for (i, lin) in self.lineage.iter_mut().enumerate() {
            *lin = vec![RowId::new(tag, i as u64)];
        }
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> Result<&Column> {
        self.columns.get(i).ok_or(DataFrameError::IndexOutOfBounds {
            kind: "column",
            index: i,
            len: self.columns.len(),
        })
    }

    /// Column by name (case-insensitive).
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let i = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataFrameError::ColumnNotFound(name.to_owned()))?;
        self.column(i)
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Result<Value> {
        self.column(col)?.value(row)
    }

    /// One row as a vector of values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.num_rows {
            return Err(DataFrameError::IndexOutOfBounds { kind: "row", index: row, len: self.num_rows });
        }
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Lineage of one row (base rows that produced it).
    pub fn lineage(&self, row: usize) -> Result<&[RowId]> {
        self.lineage
            .get(row)
            .map(Vec::as_slice)
            .ok_or(DataFrameError::IndexOutOfBounds { kind: "row", index: row, len: self.num_rows })
    }

    /// All per-row lineage vectors.
    pub fn lineages(&self) -> &[Lineage] {
        &self.lineage
    }

    /// Gather rows by index, propagating lineage.
    pub fn take(&self, indices: &[usize]) -> Result<Self> {
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.take(indices)).collect();
        let lineage = indices
            .iter()
            .map(|&i| {
                self.lineage
                    .get(i)
                    .cloned()
                    .ok_or(DataFrameError::IndexOutOfBounds { kind: "row", index: i, len: self.num_rows })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { schema: self.schema.clone(), columns: columns?, lineage, num_rows: indices.len() })
    }

    /// Filter rows by a boolean mask, propagating lineage.
    pub fn filter(&self, mask: &[bool]) -> Result<Self> {
        if mask.len() != self.num_rows {
            return Err(DataFrameError::LengthMismatch { expected: self.num_rows, actual: mask.len() });
        }
        let indices: Vec<usize> =
            mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect();
        self.take(&indices)
    }

    /// Keep only the columns at `indices` (projection); lineage is unchanged.
    pub fn project(&self, indices: &[usize]) -> Result<Self> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(DataFrameError::IndexOutOfBounds {
                    kind: "column",
                    index: i,
                    len: self.columns.len(),
                });
            }
        }
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(Self { schema, columns, lineage: self.lineage.clone(), num_rows: self.num_rows })
    }

    /// Vertically concatenate another table with an identical schema.
    pub fn concat(&self, other: &Table) -> Result<Self> {
        if self.schema != other.schema {
            return Err(DataFrameError::SchemaMismatch(format!(
                "{} vs {}",
                self.schema, other.schema
            )));
        }
        let mut columns = Vec::with_capacity(self.columns.len());
        for (a, b) in self.columns.iter().zip(&other.columns) {
            let mut c = Column::with_capacity(a.data_type(), a.len() + b.len());
            for v in a.iter().chain(b.iter()) {
                c.push(v)?;
            }
            columns.push(c);
        }
        let mut lineage = self.lineage.clone();
        lineage.extend(other.lineage.iter().cloned());
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            lineage,
            num_rows: self.num_rows + other.num_rows,
        })
    }

    /// Append literal rows to the end of the table, checking arity and types
    /// per [`Column::push`]. Appended rows receive identity lineage with
    /// table tag 0; callers that hold a tagged base table are expected to
    /// re-tag via [`Table::with_table_tag`] (the catalog does this when the
    /// table is re-registered after a write).
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<Self> {
        let mut columns = self.columns.clone();
        for row in rows {
            if row.len() != columns.len() {
                return Err(DataFrameError::LengthMismatch {
                    expected: columns.len(),
                    actual: row.len(),
                });
            }
            for (c, v) in columns.iter_mut().zip(row.iter()) {
                c.push(v.clone())?;
            }
        }
        let mut lineage = self.lineage.clone();
        for k in 0..rows.len() {
            lineage.push(vec![RowId { table: 0, row: (self.num_rows + k) as u64 }]);
        }
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            lineage,
            num_rows: self.num_rows + rows.len(),
        })
    }

    /// Overwrite individual cells: for each row index `rows[k]`, column
    /// `cols[j]` receives `values[k][j]`. Row and column indices must be in
    /// range and every replacement value must be `Null` or match the column
    /// type per [`Column::push`]. Schema, row count, and lineage are
    /// unchanged — this is the apply step for UPDATE.
    pub fn update_cells(&self, rows: &[usize], cols: &[usize], values: &[Vec<Value>]) -> Result<Self> {
        if values.len() != rows.len() {
            return Err(DataFrameError::LengthMismatch { expected: rows.len(), actual: values.len() });
        }
        for &r in rows {
            if r >= self.num_rows {
                return Err(DataFrameError::IndexOutOfBounds { kind: "row", index: r, len: self.num_rows });
            }
        }
        for &c in cols {
            if c >= self.columns.len() {
                return Err(DataFrameError::IndexOutOfBounds {
                    kind: "column",
                    index: c,
                    len: self.columns.len(),
                });
            }
        }
        // Map each targeted row to its position in `rows`.
        let mut slot = vec![usize::MAX; self.num_rows];
        for (k, &r) in rows.iter().enumerate() {
            slot[r] = k;
        }
        let mut columns = self.columns.clone();
        for (j, &c) in cols.iter().enumerate() {
            let old = &self.columns[c];
            let mut rebuilt = Column::with_capacity(old.data_type(), self.num_rows);
            for r in 0..self.num_rows {
                let v = if slot[r] != usize::MAX {
                    let row_vals = &values[slot[r]];
                    if row_vals.len() != cols.len() {
                        return Err(DataFrameError::LengthMismatch {
                            expected: cols.len(),
                            actual: row_vals.len(),
                        });
                    }
                    row_vals[j].clone()
                } else {
                    old.value(r)?
                };
                rebuilt.push(v)?;
            }
            columns[c] = rebuilt;
        }
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            lineage: self.lineage.clone(),
            num_rows: self.num_rows,
        })
    }

    /// Approximate heap footprint in bytes (columns + lineage).
    pub fn heap_bytes(&self) -> usize {
        let cols: usize = self.columns.iter().map(Column::heap_bytes).sum();
        let lin: usize = self.lineage.iter().map(|l| l.len() * std::mem::size_of::<RowId>()).sum();
        cols + lin
    }

    /// Pretty-print up to `max_rows` rows as an aligned text grid — used by
    /// the conversational layer when presenting tabular answers.
    pub fn render(&self, max_rows: usize) -> String {
        let header: Vec<String> =
            self.schema.fields().iter().map(|f| f.name().to_owned()).collect();
        let shown = self.num_rows.min(max_rows);
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            rows.push(
                self.columns
                    .iter()
                    .map(|c| c.value(r).map(|v| v.to_string()).unwrap_or_default())
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&header, &widths, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &rows {
            line(row, &widths, &mut out);
        }
        if self.num_rows > shown {
            let _ = writeln!(out, "... ({} more rows)", self.num_rows - shown);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn demo() -> Table {
        let schema = Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("employed", DataType::Int),
        ]);
        Table::from_columns(
            schema,
            vec![Column::from_strs(&["ZH", "GE", "VD"]), Column::from_ints(&[100, 28, 42])],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_arity_and_lengths() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        assert!(matches!(
            Table::from_columns(schema.clone(), vec![]),
            Err(DataFrameError::ArityMismatch { .. })
        ));
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        assert!(matches!(
            Table::from_columns(
                schema2,
                vec![Column::from_ints(&[1]), Column::from_ints(&[1, 2])]
            ),
            Err(DataFrameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Table::from_columns(schema, vec![Column::from_strs(&["x"])]),
            Err(DataFrameError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn base_lineage_is_identity() {
        let t = demo().with_table_tag(7);
        assert_eq!(t.lineage(1).unwrap(), &[RowId::new(7, 1)]);
        assert_eq!(t.lineage(1).unwrap()[0].to_string(), "t7:r1");
    }

    #[test]
    fn take_propagates_lineage() {
        let t = demo().with_table_tag(1);
        let u = t.take(&[2, 0]).unwrap();
        assert_eq!(u.num_rows(), 2);
        assert_eq!(u.value(0, 0).unwrap(), Value::from("VD"));
        assert_eq!(u.lineage(0).unwrap(), &[RowId::new(1, 2)]);
        assert_eq!(u.lineage(1).unwrap(), &[RowId::new(1, 0)]);
    }

    #[test]
    fn filter_propagates_lineage() {
        let t = demo().with_table_tag(1);
        let u = t.filter(&[false, true, false]).unwrap();
        assert_eq!(u.num_rows(), 1);
        assert_eq!(u.lineage(0).unwrap(), &[RowId::new(1, 1)]);
        assert!(t.filter(&[true]).is_err());
    }

    #[test]
    fn projection_keeps_lineage() {
        let t = demo().with_table_tag(1);
        let u = t.project(&[1]).unwrap();
        assert_eq!(u.num_columns(), 1);
        assert_eq!(u.schema().field_at(0).unwrap().name(), "employed");
        assert_eq!(u.lineage(2).unwrap(), &[RowId::new(1, 2)]);
        assert!(t.project(&[9]).is_err());
    }

    #[test]
    fn concat_appends_rows_and_lineage() {
        let a = demo().with_table_tag(1);
        let b = demo().with_table_tag(2);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.lineage(5).unwrap(), &[RowId::new(2, 2)]);
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let a = demo();
        let b = a.project(&[0]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn row_access() {
        let t = demo();
        assert_eq!(t.row(1).unwrap(), vec![Value::from("GE"), Value::Int(28)]);
        assert!(t.row(5).is_err());
        assert!(t.column_by_name("EMPLOYED").is_ok());
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn with_lineage_validates_length() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let cols = vec![Column::from_ints(&[1, 2])];
        assert!(Table::with_lineage(schema, cols, vec![vec![]]).is_err());
    }

    #[test]
    fn render_shows_header_and_truncation() {
        let t = demo();
        let s = t.render(2);
        assert!(s.contains("canton"));
        assert!(s.contains("ZH"));
        assert!(s.contains("1 more rows"));
        assert!(!s.contains("VD"));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(Schema::new(vec![Field::new("x", DataType::Float)]));
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 1);
        assert!(t.heap_bytes() < 64);
    }
}
