//! **E12** — KG query and reasoning latency at scale, materialization vs
//! query-time inference.
//!
//! Expected shape: BGP queries stay sub-millisecond up to 10^6 triples
//! thanks to the index range scans; materialization pays a large one-off
//! cost and extra triples but answers `type?` lookups fastest; the
//! query-time reasoner trades per-query overhead for zero storage.

use cda_bench::{header, row, timed, timed_avg, us};
use cda_kg::query::{Bgp, Pattern, Term};
use cda_kg::reason::{materialize, Reasoner};
use cda_kg::TripleStore;
use cda_testkit::rng::StdRng;

/// Generate a synthetic KG: `n` entities across `classes` classes arranged
/// in a 4-deep taxonomy, each entity with `links` random relations.
fn build_kg(n: usize, classes: usize, links: usize, seed: u64) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kg = TripleStore::new();
    // taxonomy: class_i subClassOf class_{i/2}
    for c in 1..classes {
        kg.insert(&format!("class_{c}"), "subClassOf", &format!("class_{}", c / 2));
    }
    for e in 0..n {
        let c = rng.gen_range(0..classes);
        let entity = format!("e{e}");
        kg.insert(&entity, "type", &format!("class_{c}"));
        for _ in 0..links {
            let other = rng.gen_range(0..n);
            kg.insert(&entity, "relatedTo", &format!("e{other}"));
        }
    }
    kg
}

fn main() {
    header("E12", "KG scale: BGP latency + materialization vs query-time reasoning");
    row(&[
        "entities".into(),
        "triples".into(),
        "1-pattern".into(),
        "2-pattern join".into(),
        "3-pattern join".into(),
    ]);
    for n in [10_000usize, 100_000, 300_000] {
        let kg = build_kg(n, 32, 2, 5);
        let q1 = Bgp::new(vec![Pattern::new(
            Term::var("x"),
            Term::iri("type"),
            Term::iri("class_3"),
        )]);
        let q2 = Bgp::new(vec![
            Pattern::new(Term::var("x"), Term::iri("type"), Term::iri("class_3")),
            Pattern::new(Term::var("x"), Term::iri("relatedTo"), Term::var("y")),
        ]);
        let q3 = Bgp::new(vec![
            Pattern::new(Term::var("x"), Term::iri("type"), Term::iri("class_3")),
            Pattern::new(Term::var("x"), Term::iri("relatedTo"), Term::var("y")),
            Pattern::new(Term::var("y"), Term::iri("type"), Term::var("c")),
        ]);
        let (r1, t1) = timed_avg(3, || q1.evaluate(&kg));
        let (r2, t2) = timed_avg(3, || q2.evaluate(&kg));
        let (r3, t3) = timed_avg(3, || q3.evaluate(&kg));
        row(&[
            format!("{n}"),
            format!("{}", kg.len()),
            format!("{} ({} rows)", us(t1), r1.len()),
            format!("{} ({} rows)", us(t2), r2.len()),
            format!("{} ({} rows)", us(t3), r3.len()),
        ]);
    }

    println!("\ninference strategies (100k entities, 32-class taxonomy):");
    let base = build_kg(100_000, 32, 1, 9);
    row(&[
        "strategy".into(),
        "setup time".into(),
        "extra triples".into(),
        "per-query time".into(),
    ]);
    // materialization
    let mut mat = base.clone();
    let before = mat.len();
    let (added, setup) = timed(|| materialize(&mut mat));
    let (_, q_mat) = timed_avg(5, || mat.objects("e42", "type"));
    row(&[
        "materialize".into(),
        us(setup),
        format!("{added} (+{:.0}%)", 100.0 * added as f64 / before as f64),
        us(q_mat),
    ]);
    // query-time reasoning
    let (reasoner, setup) = timed(|| Reasoner::new(&base));
    let (_, q_virt) = timed_avg(5, || reasoner.types_of("e42"));
    row(&["query-time".into(), us(setup), "0".into(), us(q_virt)]);
    // sanity: both agree
    let mut a = mat.objects("e42", "type");
    let mut b = reasoner.types_of("e42");
    a.sort();
    b.sort();
    assert_eq!(a, b, "materialization and query-time reasoning disagree");
    println!("\n(consistency check passed: both strategies infer identical types)");
}
