//! Criterion bench for experiment E11: SQL engine throughput with and
//! without optimizer rules / lineage tracking.

use cda_testkit::bench::Criterion;
use cda_testkit::{criterion_group, criterion_main};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::{execute_with_options, Catalog, ExecOptions, OptimizerRules};
use cda_testkit::rng::StdRng;

fn catalog(rows: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(3);
    let groups = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let gs: Vec<&str> = (0..rows).map(|_| groups[rng.gen_range(0..groups.len())]).collect();
    let xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..1000)).collect();
    let ys: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..1.0)).collect();
    let t = Table::from_columns(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ]),
        vec![Column::from_strs(&gs), Column::from_ints(&xs), Column::from_floats(&ys)],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("t", t).unwrap();
    let dim = Table::from_columns(
        Schema::new(vec![Field::new("g", DataType::Str), Field::new("label", DataType::Str)]),
        vec![
            Column::from_strs(&groups),
            Column::from_strs(&["A", "B", "C", "D", "E", "F", "G", "H"]),
        ],
    )
    .unwrap();
    c.register("dim", dim).unwrap();
    c
}

fn bench_sql(c: &mut Criterion) {
    let catalog = catalog(8_000);
    let mut group = c.benchmark_group("sql_8k_rows");
    group.sample_size(20);

    let agg = "SELECT g, COUNT(*) AS n, SUM(x) AS s, AVG(y) AS a FROM t GROUP BY g ORDER BY s DESC";
    group.bench_function("aggregate_optimized", |b| {
        b.iter(|| execute_with_options(&catalog, agg, ExecOptions::default()).unwrap())
    });
    group.bench_function("aggregate_naive", |b| {
        b.iter(|| {
            execute_with_options(
                &catalog,
                agg,
                ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None },
            )
            .unwrap()
        })
    });
    group.bench_function("aggregate_no_lineage", |b| {
        b.iter(|| {
            execute_with_options(
                &catalog,
                agg,
                ExecOptions { rules: OptimizerRules::all(), track_lineage: false, vectorized: None },
            )
            .unwrap()
        })
    });

    let join =
        "SELECT d.label, SUM(t.x) AS s FROM t JOIN dim d ON t.g = d.g WHERE t.x > 900 GROUP BY d.label";
    group.bench_function("join_optimized", |b| {
        b.iter(|| execute_with_options(&catalog, join, ExecOptions::default()).unwrap())
    });
    group.bench_function("join_naive", |b| {
        b.iter(|| {
            execute_with_options(
                &catalog,
                join,
                ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None },
            )
            .unwrap()
        })
    });

    // E17 counterparts: same queries on the vectorized morsel-parallel
    // engine (byte-identical results, differentially certified).
    group.bench_function("aggregate_vectorized", |b| {
        b.iter(|| execute_with_options(&catalog, agg, ExecOptions::vectorized()).unwrap())
    });
    group.bench_function("join_vectorized", |b| {
        b.iter(|| execute_with_options(&catalog, join, ExecOptions::vectorized()).unwrap())
    });

    group.bench_function("parse_and_plan_only", |b| {
        b.iter(|| {
            let select = cda_sql::parser::parse(join).unwrap();
            cda_sql::planner::plan_select(&catalog, &select).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
