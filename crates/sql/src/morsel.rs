//! Deterministic morsel-driven scheduling.
//!
//! Work is split into fixed-size **morsels** (contiguous row ranges). A small
//! `std::thread` worker pool pulls morsel indices from a shared atomic
//! counter (work stealing by index), computes each morsel independently, and
//! the caller merges the per-morsel results **in morsel order**.
//!
//! Determinism argument: each task function is a pure function of its morsel
//! index, results are slotted into a vector *by index* (never by completion
//! order), and every merge the physical operators perform walks that vector
//! front to back. Thread count and scheduling interleavings therefore cannot
//! be observed — results are bit-identical at any thread count, which the
//! `determinism.rs` integration suite pins for thread counts {1, 2, 8} and
//! morsel sizes {1, 64, 4096}.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of the vectorized morsel-parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselConfig {
    /// Rows per morsel (minimum 1; fed to [`morsel_ranges`]).
    pub morsel_rows: usize,
    /// Worker threads. `0` means auto (available parallelism, capped at 8).
    pub threads: usize,
}

impl Default for MorselConfig {
    fn default() -> Self {
        Self { morsel_rows: 1024, threads: 0 }
    }
}

impl MorselConfig {
    /// Builder: set the morsel size.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Builder: set the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker count actually used: explicit, or detected and capped at 8.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
        }
    }
}

/// Split `rows` into contiguous ranges of at most `morsel_rows` rows.
/// Zero rows → no morsels.
pub fn morsel_ranges(rows: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    let mut out = Vec::with_capacity(rows.div_ceil(step));
    let mut start = 0;
    while start < rows {
        let end = (start + step).min(rows);
        out.push(start..end);
        start = end;
    }
    out
}

/// Run `f(0..tasks)` across `threads` workers and return the results **in
/// task order**, regardless of which worker computed what. Panics in workers
/// propagate to the caller.
pub fn run_ordered<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(tasks);
    if workers == 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let worker_results: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    for (i, value) in worker_results.into_iter().flatten() {
        slots[i] = Some(value);
    }
    // Every index in 0..tasks is claimed by exactly one worker via fetch_add,
    // so every slot is filled once all workers have joined.
    slots
        .into_iter()
        .map(|s| s.expect("run_ordered: task produced no result")) // lint: allow(R002)
        .collect()
}

/// Merge per-morsel fallible results in morsel order: the error of the
/// smallest morsel index wins, matching row-at-a-time error order across
/// morsel boundaries.
pub fn first_error<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_exactly() {
        assert_eq!(morsel_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(morsel_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(morsel_ranges(4, 4), vec![0..4]);
        // morsel size 0 is clamped to 1
        assert_eq!(morsel_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn run_ordered_is_order_stable_at_any_thread_count() {
        let expected: Vec<usize> = (0..100).map(|i| i * 3).collect();
        for threads in [1, 2, 8, 32] {
            let got = run_ordered(100, threads, |i| i * 3);
            assert_eq!(got, expected, "threads={threads}");
        }
        assert_eq!(run_ordered(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn first_error_prefers_smallest_morsel_index() {
        let r: Result<Vec<i32>, &str> = first_error(vec![Ok(1), Err("m1"), Err("m2")]);
        assert_eq!(r, Err("m1"));
        let ok: Result<Vec<i32>, &str> = first_error(vec![Ok(1), Ok(2)]);
        assert_eq!(ok, Ok(vec![1, 2]));
    }

    #[test]
    fn config_builders_and_auto_threads() {
        let c = MorselConfig::default().with_morsel_rows(0).with_threads(3);
        assert_eq!(c.morsel_rows, 1);
        assert_eq!(c.effective_threads(), 3);
        assert!(MorselConfig::default().effective_threads() >= 1);
    }
}
