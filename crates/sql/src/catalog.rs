//! Table catalog: name → table registry with stable provenance tags.
//!
//! Registering a table assigns it a unique `u32` tag and re-tags its row
//! lineage so that every row in the session is globally identified by
//! `(tag, row_index)` — the foundation of cross-component provenance (P3).

use crate::error::SqlError;
use crate::Result;
use cda_dataframe::Table;
use std::collections::HashMap;

/// A registered table: tag + data.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Provenance tag assigned at registration.
    pub tag: u32,
    /// The table data.
    pub table: Table,
    /// Optional human-readable description (for grounding / discovery).
    pub description: String,
}

/// In-memory table catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    next_tag: u32,
}

impl Catalog {
    /// Create an empty catalog. Tags start at 1 (0 is the anonymous tag).
    pub fn new() -> Self {
        Self { entries: HashMap::new(), next_tag: 1 }
    }

    /// Register a table under a (case-insensitive) name. Returns its tag.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<u32> {
        self.register_with_description(name, table, String::new())
    }

    /// Register a table with a description used by dataset discovery.
    pub fn register_with_description(
        &mut self,
        name: impl Into<String>,
        table: Table,
        description: impl Into<String>,
    ) -> Result<u32> {
        let name = name.into().to_ascii_lowercase();
        if self.entries.contains_key(&name) {
            return Err(SqlError::Binding(format!("table {name:?} already registered")));
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let table = table.with_table_tag(tag);
        self.entries.insert(name, CatalogEntry { tag, table, description: description.into() });
        Ok(tag)
    }

    /// Replace a registered table's data in place, preserving its tag and
    /// description; the new table is re-tagged so row lineage stays identity.
    ///
    /// The replacement must have the exact same schema — DML never changes
    /// table shape; schema changes go through a fresh registration (and an
    /// epoch-wide cache purge) instead. Returns the preserved tag.
    ///
    /// Product-path callers must route through the effects gate
    /// (`cda_core::mutation`); repolint R010 enforces this.
    pub fn replace_table(&mut self, name: &str, table: Table) -> Result<u32> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| SqlError::Binding(format!("unknown table {name:?}")))?;
        if entry.table.schema() != table.schema() {
            return Err(SqlError::Binding(format!(
                "replacement for table {name:?} changes its schema ({} vs {})",
                entry.table.schema(),
                table.schema()
            )));
        }
        entry.table = table.with_table_tag(entry.tag);
        Ok(entry.tag)
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<&CatalogEntry> {
        self.entries
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Binding(format!("unknown table {name:?}")))
    }

    /// Resolve a provenance tag back to the table name it belongs to.
    pub fn name_of_tag(&self, tag: u32) -> Option<&str> {
        self.entries.iter().find(|(_, e)| e.tag == tag).map(|(n, _)| n.as_str())
    }

    /// Iterate `(name, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, DataType, Field, RowId, Schema};

    fn t() -> Table {
        Table::from_columns(
            Schema::new(vec![Field::new("x", DataType::Int)]),
            vec![Column::from_ints(&[1, 2])],
        )
        .unwrap()
    }

    #[test]
    fn register_assigns_increasing_tags_and_retags_lineage() {
        let mut c = Catalog::new();
        let t1 = c.register("a", t()).unwrap();
        let t2 = c.register("b", t()).unwrap();
        assert_eq!(t1, 1);
        assert_eq!(t2, 2);
        assert_eq!(c.get("b").unwrap().table.lineage(1).unwrap(), &[RowId::new(2, 1)]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Employment", t()).unwrap();
        assert!(c.get("EMPLOYMENT").is_ok());
        assert!(c.get("employment").is_ok());
        assert!(c.get("nope").is_err());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::new();
        c.register("a", t()).unwrap();
        assert!(c.register("A", t()).is_err());
    }

    #[test]
    fn tag_reverse_lookup() {
        let mut c = Catalog::new();
        let tag = c.register("emp", t()).unwrap();
        assert_eq!(c.name_of_tag(tag), Some("emp"));
        assert_eq!(c.name_of_tag(99), None);
    }

    #[test]
    fn names_sorted_and_len() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("zeta", t()).unwrap();
        c.register("alpha", t()).unwrap();
        assert_eq!(c.table_names(), vec!["alpha".to_owned(), "zeta".to_owned()]);
        assert_eq!(c.len(), 2);
    }
}
