//! Scalar value model and data types.
//!
//! [`Value`] is the dynamically-typed scalar exchanged at the boundaries of
//! the engine (row construction, literals in SQL, results handed to the NL
//! layer). Inside kernels, data stays in typed columnar buffers; `Value` only
//! appears on per-row paths.

use std::cmp::Ordering;
use std::fmt;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Seconds since the Unix epoch (timestamps in demo data are coarse).
    Timestamp,
}

impl DataType {
    /// Human-readable name of the type.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// Whether values of this type are numeric (usable in arithmetic and
    /// aggregate kernels such as SUM/AVG).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar value, including SQL-style `Null`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (absent value of any type).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Seconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view, if the value is an `Int` or `Timestamp`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// String view, if the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison. `Null` compared with anything is
    /// `None` (unknown); numeric types compare cross-type (INT vs FLOAT).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Rank used to order values of different type classes, making
    /// [`Value::total_cmp`] a genuine total order even across types:
    /// `Null < Bool < numeric < Str`.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Total ordering used by ORDER BY and sort kernels: `Null` sorts first,
    /// NaN sorts last among floats, cross-numeric comparison as in
    /// [`Value::sql_cmp`], and values of incomparable type classes ordered
    /// by a fixed type rank (`Null < Bool < numeric < Str`).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let rank = self.type_rank().cmp(&other.type_rank());
        if rank != Ordering::Equal {
            return rank;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
        }
    }

    /// SQL equality (`Null = anything` is unknown → `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (used by tests and group-by keys): Null == Null,
        // floats compared bitwise via total_cmp so NaN == NaN.
        self.total_cmp(other) == Ordering::Equal
            && match (self, other) {
                // Do not conflate 1 (Int) with 1.0 (Float) for grouping keys
                // unless both are numeric of the same class.
                (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
                | (Value::Null, Value::Null) => true,
                (a, b) => a.as_f64().is_some() && b.as_f64().is_some(),
            }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Str(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                2u8.hash(state);
                b.hash(state);
            }
            // All numerics hash through their f64 image so Int(1), Float(1.0)
            // and Timestamp(1) land in the same bucket, consistent with
            // cross-numeric equality above.
            v => {
                3u8.hash(state);
                let x = v.as_f64().unwrap_or(f64::NAN);
                x.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(v) => write!(f, "@{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Int.name(), "INT");
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn null_propagates_in_sql_cmp() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Timestamp(5).sql_cmp(&Value::Int(4)), Some(Ordering::Greater));
    }

    #[test]
    fn strings_and_bools_compare() {
        assert_eq!(Value::from("a").sql_cmp(&Value::from("b")), Some(Ordering::Less));
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Bool(false)), Some(Ordering::Greater));
    }

    #[test]
    fn incompatible_types_do_not_compare() {
        assert_eq!(Value::from("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_sorts_null_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn total_cmp_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn equality_and_hash_agree_across_numeric_types() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert_ne!(Value::Int(1), Value::from("1"));
    }

    #[test]
    fn null_equals_null_structurally() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn display_round_trips_floats_with_point() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert!(Value::from(Option::<i64>::None).is_null());
    }
}
