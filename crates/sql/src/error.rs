//! Error type for the SQL engine.

use std::fmt;

/// Errors from lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with character position.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// Description.
        message: String,
    },
    /// Syntax error with approximate token position.
    Parse {
        /// Token index where the error occurred.
        position: usize,
        /// Description.
        message: String,
    },
    /// Name binding failed (unknown table / column / ambiguous reference).
    Binding(String),
    /// Semantic error (e.g., aggregate nested in aggregate).
    Semantic(String),
    /// Runtime evaluation error (type error, division by zero …).
    Eval(String),
    /// Error bubbled up from the dataframe substrate.
    DataFrame(cda_dataframe::DataFrameError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lex { position, message } => write!(f, "lex error at byte {position}: {message}"),
            Self::Parse { position, message } => {
                write!(f, "parse error near token {position}: {message}")
            }
            Self::Binding(m) => write!(f, "binding error: {m}"),
            Self::Semantic(m) => write!(f, "semantic error: {m}"),
            Self::Eval(m) => write!(f, "evaluation error: {m}"),
            Self::DataFrame(e) => write!(f, "dataframe error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::DataFrame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cda_dataframe::DataFrameError> for SqlError {
    fn from(e: cda_dataframe::DataFrameError) -> Self {
        Self::DataFrame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SqlError::Parse { position: 3, message: "expected FROM".into() };
        assert!(e.to_string().contains("expected FROM"));
        let e = SqlError::Binding("unknown column x".into());
        assert!(e.to_string().contains("unknown column"));
    }

    #[test]
    fn dataframe_error_converts_and_sources() {
        use std::error::Error;
        let inner = cda_dataframe::DataFrameError::ColumnNotFound("z".into());
        let e: SqlError = inner.into();
        assert!(e.source().is_some());
    }
}
