//! Progressive kNN search with quality guarantees (ProS-style \[13\]).
//!
//! This is the paper's P1 centerpiece: an index that is *faster than exact
//! scan* while still saying something precise about answer quality, and that
//! can *return an empty set* when nothing meets a relevance threshold.
//!
//! Layout: a k-means partition of the dataset with, per cluster, its radius
//! and the sorted distances of members to their centroid. Query processing
//! scans clusters in ascending centroid distance and maintains the running
//! top-k. Two stopping regimes:
//!
//! * **Deterministic** — by the triangle inequality, no point of an unscanned
//!   cluster `c` can be closer than `max(0, d(q, centroid_c) − radius_c)`.
//!   Once that lower bound over every remaining cluster exceeds the current
//!   k-th distance, the current answer is provably exact. Clusters whose
//!   bound already exceeds the k-th distance are skipped individually, and a
//!   finer per-point necessary condition (`d(x, centroid) ≥ d(q, centroid) −
//!   d_k`) prunes within scanned clusters.
//! * **Probabilistic(δ)** — calibrated on training queries drawn from the
//!   same workload: stop after the smallest cluster-prefix `j` such that, on
//!   the training set, the top-k after `j` clusters equaled the final top-k
//!   with frequency ≥ 1 − δ. The guarantee is distributional over the query
//!   workload (an honest frequentist statement, matching how ProS's
//!   probabilistic bounds are used in practice).

use crate::exact::TopK;
use crate::ivf::KMeans;
use crate::metrics::squared_euclidean;
use crate::{Neighbor, SearchStats, VectorIndex, VectorSet};

/// Stopping regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuaranteeMode {
    /// Triangle-inequality bound; the returned answer is exactly the true
    /// top-k.
    Deterministic,
    /// Stop early once the calibrated probability that the answer is already
    /// final reaches `1 - delta`.
    Probabilistic {
        /// Allowed probability that the returned set differs from the exact
        /// top-k (workload-distributional).
        delta: f64,
    },
    /// Deterministic (1+ε)-approximation: the returned k-th distance is
    /// provably at most `(1 + epsilon)` times the true k-th distance. Stops
    /// as soon as no unseen point could improve the answer by more than the
    /// allowed factor.
    Approximate {
        /// Allowed relative error on the k-th distance (ε ≥ 0; ε = 0 is the
        /// deterministic exact mode).
        epsilon: f64,
    },
}

/// Progressive index with quality guarantees.
#[derive(Debug, Clone)]
pub struct ProgressiveIndex {
    kmeans: KMeans,
    lists: Vec<Vec<usize>>,
    /// Per cluster: sorted member distances to the centroid (L2, not squared).
    member_dists: Vec<Vec<f32>>,
    /// Per cluster: radius (max member distance).
    radii: Vec<f32>,
    /// `stable_freq[j]` = empirical P(top-k after scanning j+1 clusters ==
    /// final top-k) over the calibration queries.
    stable_freq: Vec<f64>,
    /// Mode used by the `VectorIndex` impl.
    pub mode: GuaranteeMode,
    calibration_k: usize,
}

impl ProgressiveIndex {
    /// Build with `nlist` partitions and calibrate the probabilistic stopping
    /// rule with `calib_queries` workload-like queries for top-`calib_k`.
    pub fn build(data: &VectorSet, nlist: usize, calib_queries: usize, calib_k: usize, seed: u64) -> Self {
        let kmeans = KMeans::fit(data, nlist, 10, seed);
        let k = kmeans.k();
        let mut lists = vec![Vec::new(); k];
        for (i, &c) in kmeans.assignments.iter().enumerate() {
            lists[c].push(i);
        }
        let mut member_dists = Vec::with_capacity(k);
        let mut radii = Vec::with_capacity(k);
        // Sort each list's ids and centroid distances *together*, ascending
        // by distance, so member_dists[c][pos] always describes lists[c][pos]
        // (and the per-point pruning can stop scanning once past the cutoff).
        for (c, list) in lists.iter_mut().enumerate() {
            let centroid = kmeans.centroid(c);
            let mut pairs: Vec<(usize, f32)> = list
                .iter()
                .map(|&i| (i, squared_euclidean(data.vector(i), centroid).sqrt()))
                .collect();
            pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
            *list = pairs.iter().map(|&(i, _)| i).collect();
            let dists: Vec<f32> = pairs.iter().map(|&(_, d)| d).collect();
            radii.push(dists.last().copied().unwrap_or(0.0));
            member_dists.push(dists);
        }
        let mut index = Self {
            kmeans,
            lists,
            member_dists,
            radii,
            stable_freq: Vec::new(),
            mode: GuaranteeMode::Deterministic,
            calibration_k: calib_k,
        };
        index.calibrate(data, calib_queries, calib_k, seed ^ 0x5eed);
        index
    }

    /// Select the probabilistic mode with risk `delta`.
    pub fn with_mode(mut self, mode: GuaranteeMode) -> Self {
        self.mode = mode;
        self
    }

    fn calibrate(&mut self, data: &VectorSet, queries: usize, k: usize, seed: u64) {
        let nlist = self.lists.len();
        let mut stable_counts = vec![0usize; nlist];
        if queries == 0 {
            self.stable_freq = vec![1.0; nlist];
            return;
        }
        let qs = data.queries_near(queries, 0.05, seed);
        for q in &qs {
            let order = self.cluster_order(&q[..]);
            // Scan everything, recording after which prefix the top-k froze.
            let mut topk_after: Vec<Vec<usize>> = Vec::with_capacity(nlist);
            let mut collected: Vec<Neighbor> = Vec::new();
            for &(c, _) in &order {
                for &id in &self.lists[c] {
                    collected.push(Neighbor::new(id, squared_euclidean(&q[..], data.vector(id))));
                }
                // snapshot current top-k ids
                let mut snapshot: Vec<Neighbor> = collected.clone();
                snapshot.sort_by(|a, b| a.dist.total_cmp(&b.dist));
                snapshot.truncate(k);
                topk_after.push(snapshot.iter().map(|n| n.id).collect());
            }
            let final_ids = topk_after.last().cloned().unwrap_or_default();
            for (j, ids) in topk_after.iter().enumerate() {
                if *ids == final_ids {
                    stable_counts[j] += 1;
                }
            }
        }
        self.stable_freq =
            stable_counts.iter().map(|&c| c as f64 / qs.len() as f64).collect();
        // enforce monotonicity (scanning more can only stabilize further)
        for j in 1..self.stable_freq.len() {
            if self.stable_freq[j] < self.stable_freq[j - 1] {
                self.stable_freq[j] = self.stable_freq[j - 1];
            }
        }
    }

    fn cluster_order(&self, query: &[f32]) -> Vec<(usize, f32)> {
        let mut order: Vec<(usize, f32)> = (0..self.lists.len())
            .map(|c| (c, squared_euclidean(query, self.kmeans.centroid(c)).sqrt()))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        order
    }

    /// Search with statistics under the given mode.
    pub fn search_mode(
        &self,
        data: &VectorSet,
        query: &[f32],
        k: usize,
        mode: GuaranteeMode,
    ) -> (Vec<Neighbor>, SearchStats) {
        let order = self.cluster_order(query);
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        for (rank, &(c, d_qc)) in order.iter().enumerate() {
            let kth_l2 = top.kth_dist().sqrt(); // top stores squared distances
            // Deterministic skip: no member of c can beat the current k-th.
            if d_qc - self.radii[c] > kth_l2 {
                continue;
            }
            stats.visited += 1;
            // Per-point necessary condition: d(x,centroid) ≥ d(q,centroid) − d_k.
            // Members are sorted by centroid distance, so the prunable points
            // form a prefix found by binary search.
            let cutoff = d_qc - kth_l2;
            let start = self.member_dists[c].partition_point(|&d| d < cutoff);
            for &id in &self.lists[c][start..] {
                stats.distance_evals += 1;
                top.push(Neighbor::new(id, squared_euclidean(query, data.vector(id))));
            }
            // Stopping tests over the remaining clusters.
            let kth_l2 = top.kth_dist().sqrt();
            let remaining_lb = order[rank + 1..]
                .iter()
                .map(|&(rc, rd)| rd - self.radii[rc])
                .fold(f32::INFINITY, f32::min);
            if remaining_lb > kth_l2 {
                stats.early_stop = true;
                break;
            }
            match mode {
                GuaranteeMode::Probabilistic { delta } => {
                    let stable = self.stable_freq.get(rank).copied().unwrap_or(0.0);
                    if top.len() >= k && stable >= 1.0 - delta {
                        stats.early_stop = true;
                        break;
                    }
                }
                GuaranteeMode::Approximate { epsilon } => {
                    // every unseen point has distance ≥ remaining_lb, so the
                    // true k-th distance is ≥ min(kth, remaining_lb); when
                    // remaining_lb · (1+ε) ≥ kth, our kth ≤ (1+ε) · true kth.
                    if top.len() >= k
                        && remaining_lb > 0.0
                        && f64::from(remaining_lb) * (1.0 + epsilon.max(0.0))
                            >= f64::from(kth_l2)
                    {
                        stats.early_stop = true;
                        break;
                    }
                }
                GuaranteeMode::Deterministic => {}
            }
        }
        (top.into_sorted(), stats)
    }

    /// Search with a relevance threshold `tau` (L2 distance): results farther
    /// than `tau` are dropped; the result may be **empty**, which under the
    /// deterministic mode is a *certificate* that no point lies within `tau`.
    pub fn search_with_threshold(
        &self,
        data: &VectorSet,
        query: &[f32],
        k: usize,
        tau: f32,
        mode: GuaranteeMode,
    ) -> (Vec<Neighbor>, SearchStats) {
        let (hits, stats) = self.search_mode(data, query, k, mode);
        let filtered = hits.into_iter().filter(|n| n.dist.sqrt() <= tau).collect();
        (filtered, stats)
    }

    /// Approximate heap footprint in bytes (centroids + lists + distances).
    pub fn heap_bytes(&self) -> usize {
        self.kmeans.centroids.len() * 4
            + self.lists.iter().map(|l| l.len() * 8 + 24).sum::<usize>()
            + self.member_dists.iter().map(|d| d.len() * 4 + 24).sum::<usize>()
            + self.stable_freq.len() * 8
    }

    /// The calibrated stabilization curve (`P(top-k stable after j+1 clusters)`).
    pub fn stabilization_curve(&self) -> &[f64] {
        &self.stable_freq
    }

    /// k used during calibration (probabilistic guarantees are tightest for
    /// searches with this k).
    pub fn calibration_k(&self) -> usize {
        self.calibration_k
    }
}

/// One snapshot of an anytime ("progressive", per ProS) search: the current
/// top-k plus a certified lower bound on any unseen point's distance, from
/// which the caller can derive the current worst-case approximation factor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveSnapshot {
    /// Current top-k (ascending distance; distances are squared L2).
    pub neighbors: Vec<Neighbor>,
    /// Certified L2 lower bound on the distance of every unseen point
    /// (INFINITY once everything has been scanned or pruned).
    pub unseen_lower_bound: f32,
    /// Clusters scanned so far.
    pub clusters_scanned: usize,
    /// Whether the snapshot is provably the exact final answer.
    pub is_final: bool,
}

impl ProgressiveSnapshot {
    /// Current worst-case ratio `kth / max(lb, 0)` as a quality certificate:
    /// 1.0 means provably exact; `f` means the k-th distance is at most `f`
    /// times the true k-th distance. INFINITY while nothing is certified.
    pub fn approximation_factor(&self) -> f64 {
        let Some(last) = self.neighbors.last() else {
            return f64::INFINITY;
        };
        let kth = f64::from(last.dist).sqrt();
        let lb = f64::from(self.unseen_lower_bound);
        if lb <= 0.0 {
            f64::INFINITY
        } else if lb >= kth {
            1.0
        } else {
            kth / lb
        }
    }
}

impl ProgressiveIndex {
    /// Anytime search: returns one snapshot per scanned cluster, each with a
    /// certified bound — the "progressive" interface of ProS, letting an
    /// interactive caller show improving answers with live quality
    /// certificates and stop whenever the certificate is good enough.
    pub fn search_trace(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<ProgressiveSnapshot> {
        let order = self.cluster_order(query);
        let mut top = TopK::new(k);
        let mut snapshots = Vec::new();
        let mut collected: Vec<Neighbor> = Vec::new();
        for (rank, &(c, d_qc)) in order.iter().enumerate() {
            let kth_l2 = top.kth_dist().sqrt();
            if d_qc - self.radii[c] > kth_l2 {
                continue; // provably cannot improve; no snapshot emitted
            }
            let cutoff = d_qc - kth_l2;
            let start = self.member_dists[c].partition_point(|&d| d < cutoff);
            for &id in &self.lists[c][start..] {
                let n = Neighbor::new(id, squared_euclidean(query, data.vector(id)));
                top.push(n);
                collected.push(n);
            }
            let mut current: Vec<Neighbor> = collected.clone();
            current.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            current.truncate(k);
            let unseen_lower_bound = order[rank + 1..]
                .iter()
                .map(|&(rc, rd)| (rd - self.radii[rc]).max(0.0))
                .fold(f32::INFINITY, f32::min);
            let kth_l2 = top.kth_dist().sqrt();
            let is_final = unseen_lower_bound > kth_l2;
            snapshots.push(ProgressiveSnapshot {
                neighbors: current,
                unseen_lower_bound,
                clusters_scanned: rank + 1,
                is_final,
            });
            if is_final {
                break;
            }
        }
        if let Some(last) = snapshots.last_mut() {
            last.is_final = true; // scanned or pruned everything
        }
        snapshots
    }
}

impl VectorIndex for ProgressiveIndex {
    fn search(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_mode(data, query, k, self.mode).0
    }

    fn name(&self) -> &'static str {
        match self.mode {
            GuaranteeMode::Deterministic => "progressive-exact",
            GuaranteeMode::Probabilistic { .. } => "progressive-delta",
            GuaranteeMode::Approximate { .. } => "progressive-eps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{ground_truth, recall_at_k};
    use crate::exact::ExactIndex;

    fn clustered() -> VectorSet {
        VectorSet::gaussian_clusters(2000, 16, 20, 0.05, 42).unwrap().0
    }

    #[test]
    fn deterministic_mode_is_exact() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 10, 1);
        let exact = ExactIndex::build(&data);
        for q in data.queries_near(20, 0.05, 7) {
            let (got, _) = idx.search_mode(&data, &q, 10, GuaranteeMode::Deterministic);
            let want = exact.search(&data, &q, 10);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn deterministic_mode_prunes_on_clustered_data() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 10, 1);
        let mut total_evals = 0usize;
        let queries = data.queries_near(20, 0.02, 3);
        for q in &queries {
            let (_, stats) = idx.search_mode(&data, q, 10, GuaranteeMode::Deterministic);
            total_evals += stats.distance_evals;
        }
        let avg = total_evals / queries.len();
        assert!(avg < data.len() / 2, "avg distance evals {avg} of {}", data.len());
    }

    #[test]
    fn probabilistic_mode_hits_recall_target() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 50, 10, 1);
        let queries = data.queries_near(50, 0.05, 99);
        let truth = ground_truth(&data, &queries, 10);
        let delta = 0.2;
        let results: Vec<Vec<Neighbor>> = queries
            .iter()
            .map(|q| idx.search_mode(&data, q, 10, GuaranteeMode::Probabilistic { delta }).0)
            .collect();
        let r = recall_at_k(&truth, &results, 10);
        // exact-set mismatch prob ≤ δ ⇒ recall ≥ 1 − δ in expectation; allow
        // sampling slack
        assert!(r >= 1.0 - delta - 0.1, "recall {r}");
    }

    #[test]
    fn probabilistic_mode_is_cheaper_than_deterministic() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 50, 10, 1);
        let queries = data.queries_near(20, 0.05, 5);
        let (mut det, mut prob) = (0usize, 0usize);
        for q in &queries {
            det += idx.search_mode(&data, q, 10, GuaranteeMode::Deterministic).1.distance_evals;
            prob += idx
                .search_mode(&data, q, 10, GuaranteeMode::Probabilistic { delta: 0.1 })
                .1
                .distance_evals;
        }
        assert!(prob <= det, "probabilistic {prob} vs deterministic {det}");
    }

    #[test]
    fn stabilization_curve_is_monotone_and_ends_at_one() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 10, 30, 5, 2);
        let curve = idx.stabilization_curve();
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_returns_empty_set_with_certificate() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 5, 1);
        // A query very far from everything: no hit within tau=0.1
        let far = vec![100.0f32; 16];
        let (hits, _) =
            idx.search_with_threshold(&data, &far, 5, 0.1, GuaranteeMode::Deterministic);
        assert!(hits.is_empty());
        // A query at a data point: itself within any positive tau
        let (hits, _) = idx.search_with_threshold(
            &data,
            data.vector(3),
            5,
            0.5,
            GuaranteeMode::Deterministic,
        );
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 3);
    }

    #[test]
    fn approximate_mode_respects_epsilon_bound() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 10, 1);
        let exact = ExactIndex::build(&data);
        for q in data.queries_near(30, 0.05, 13) {
            let truth = exact.search(&data, &q, 10);
            let true_kth = f64::from(truth.last().unwrap().dist).sqrt();
            for epsilon in [0.0f64, 0.1, 0.5] {
                let (got, _) =
                    idx.search_mode(&data, &q, 10, GuaranteeMode::Approximate { epsilon });
                let got_kth = f64::from(got.last().unwrap().dist).sqrt();
                assert!(
                    got_kth <= (1.0 + epsilon) * true_kth + 1e-5,
                    "eps={epsilon}: got {got_kth} vs bound {}",
                    (1.0 + epsilon) * true_kth
                );
            }
        }
    }

    #[test]
    fn approximate_mode_saves_work_as_epsilon_grows() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 10, 1);
        let queries = data.queries_near(20, 0.05, 17);
        let evals = |epsilon: f64| -> usize {
            queries
                .iter()
                .map(|q| {
                    idx.search_mode(&data, q, 10, GuaranteeMode::Approximate { epsilon })
                        .1
                        .distance_evals
                })
                .sum()
        };
        let tight = evals(0.0);
        let loose = evals(1.0);
        assert!(loose <= tight, "eps=1.0 used {loose} vs eps=0 {tight}");
    }

    #[test]
    fn search_trace_is_anytime_with_valid_certificates() {
        let data = clustered();
        let idx = ProgressiveIndex::build(&data, 20, 0, 10, 1);
        let exact = ExactIndex::build(&data);
        for q in data.queries_near(10, 0.05, 19) {
            let trace = idx.search_trace(&data, &q, 10);
            assert!(!trace.is_empty());
            // the final snapshot is exact
            let last = trace.last().unwrap();
            assert!(last.is_final);
            let want: Vec<usize> = exact.search(&data, &q, 10).iter().map(|n| n.id).collect();
            let got: Vec<usize> = last.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(got, want);
            // approximation factors are monotonically non-increasing and end at 1
            let factors: Vec<f64> = trace.iter().map(|s| s.approximation_factor()).collect();
            assert!((factors.last().unwrap() - 1.0).abs() < 1e-9, "{factors:?}");
            // every snapshot's certificate is truthful: kth <= factor * true kth
            let true_kth = f64::from(exact.search(&data, &q, 10).last().unwrap().dist).sqrt();
            for s in &trace {
                if s.neighbors.len() == 10 {
                    let kth = f64::from(s.neighbors.last().unwrap().dist).sqrt();
                    let f = s.approximation_factor();
                    if f.is_finite() {
                        assert!(kth <= f * true_kth + 1e-5, "kth {kth} factor {f} true {true_kth}");
                    }
                }
            }
            // clusters_scanned strictly increases
            for w in trace.windows(2) {
                assert!(w[1].clusters_scanned > w[0].clusters_scanned);
            }
        }
    }

    #[test]
    fn index_names_reflect_mode() {
        let data = VectorSet::uniform(50, 4, 0).unwrap();
        let idx = ProgressiveIndex::build(&data, 4, 0, 5, 1);
        assert_eq!(idx.name(), "progressive-exact");
        let idx = idx.with_mode(GuaranteeMode::Probabilistic { delta: 0.1 });
        assert_eq!(idx.name(), "progressive-delta");
        let idx = idx.with_mode(GuaranteeMode::Approximate { epsilon: 0.2 });
        assert_eq!(idx.name(), "progressive-eps");
    }
}
