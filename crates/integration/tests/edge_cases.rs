//! Failure-injection and degenerate-input tests across the substrates:
//! empty tables, empty join sides, pathological SQL, zero-variance series,
//! and index memory accounting.

use cda_dataframe::{Column, DataType, Field, Schema, Table, Value};
use cda_sql::{execute, Catalog, SqlError};
use cda_vector::hnsw::{HnswIndex, HnswParams};
use cda_vector::ivf::IvfIndex;
use cda_vector::lsh::{LshIndex, LshParams};
use cda_vector::progressive::ProgressiveIndex;
use cda_vector::VectorSet;

fn empty_table() -> Table {
    Table::empty(Schema::new(vec![
        Field::new("g", DataType::Str),
        Field::new("x", DataType::Int),
    ]))
}

fn small_table() -> Table {
    Table::from_columns(
        Schema::new(vec![Field::new("g", DataType::Str), Field::new("x", DataType::Int)]),
        vec![Column::from_strs(&["a", "b"]), Column::from_ints(&[1, 2])],
    )
    .unwrap()
}

#[test]
fn sql_over_empty_tables() {
    let mut catalog = Catalog::new();
    catalog.register("e", empty_table()).unwrap();
    catalog.register("t", small_table()).unwrap();

    // scans, filters, sorts and grouped aggregates over an empty table
    let r = execute(&catalog, "SELECT * FROM e WHERE x > 0 ORDER BY x DESC LIMIT 5").unwrap();
    assert_eq!(r.table.num_rows(), 0);
    let r = execute(&catalog, "SELECT g, SUM(x) FROM e GROUP BY g").unwrap();
    assert_eq!(r.table.num_rows(), 0);
    // global aggregates over empty input: one row, COUNT 0 / SUM NULL
    let r = execute(&catalog, "SELECT COUNT(*), SUM(x), MIN(x) FROM e").unwrap();
    assert_eq!(r.table.row(0).unwrap(), vec![Value::Int(0), Value::Null, Value::Null]);
    // joins with an empty side
    let r = execute(&catalog, "SELECT t.g FROM t JOIN e ON t.x = e.x").unwrap();
    assert_eq!(r.table.num_rows(), 0);
    let r = execute(&catalog, "SELECT t.g, e.x FROM t LEFT JOIN e ON t.x = e.x ORDER BY t.g")
        .unwrap();
    assert_eq!(r.table.num_rows(), 2);
    assert!(r.table.value(0, 1).unwrap().is_null());
    // DISTINCT over empty
    let r = execute(&catalog, "SELECT DISTINCT g FROM e").unwrap();
    assert_eq!(r.table.num_rows(), 0);
}

#[test]
fn pathological_sql_fails_cleanly() {
    let mut catalog = Catalog::new();
    catalog.register("t", small_table()).unwrap();
    for bad in [
        "",
        "SELECT",
        "SELECT FROM t",
        "SELECT x FROM",
        "SELECT x FROM t WHERE",
        "SELECT x FROM t GROUP BY",
        "SELECT x FROM t ORDER BY",
        "SELECT x FROM t LIMIT -1",
        "SELECT x FROM t LIMIT abc",
        "SELECT ((x FROM t",
        "SELECT x x x FROM t",
        "INSERT INTO t VALUES (1)",
        "SELECT x FROM t; DROP TABLE t",
    ] {
        let e = execute(&catalog, bad);
        assert!(e.is_err(), "accepted: {bad:?}");
        // errors are structured, not panics
        match e.unwrap_err() {
            SqlError::Lex { .. }
            | SqlError::Parse { .. }
            | SqlError::Binding(_)
            | SqlError::Semantic(_)
            | SqlError::Eval(_)
            | SqlError::DataFrame(_) => {}
        }
    }
}

#[test]
fn deep_expression_nesting_parses() {
    let mut catalog = Catalog::new();
    catalog.register("t", small_table()).unwrap();
    let mut expr = String::from("x");
    for _ in 0..60 {
        expr = format!("({expr} + 1)");
    }
    let r = execute(&catalog, &format!("SELECT {expr} AS v FROM t ORDER BY v")).unwrap();
    assert_eq!(r.table.value(0, 0).unwrap(), Value::Int(61));
}

#[test]
fn zero_variance_series_degenerates_gracefully() {
    use cda_timeseries::seasonality::detect_seasonality;
    use cda_timeseries::TimeSeries;
    let flat = TimeSeries::from_values(vec![5.0; 100]);
    // no seasonal structure: either refuses or reports near-zero confidence
    match detect_seasonality(&flat, 24) {
        Err(_) => {}
        Ok(r) => assert!(r.confidence < 0.2, "flat series confidence {}", r.confidence),
    }
}

#[test]
fn single_cluster_progressive_index() {
    // nlist=1 degenerates to a full scan but must stay exact
    let data = VectorSet::uniform(200, 8, 1).unwrap();
    let index = ProgressiveIndex::build(&data, 1, 0, 5, 1);
    let hits = index
        .search_mode(&data, data.vector(0), 5, cda_vector::progressive::GuaranteeMode::Deterministic)
        .0;
    assert_eq!(hits[0].id, 0);
    assert_eq!(hits.len(), 5);
}

#[test]
fn index_memory_accounting_is_positive_and_ordered() {
    let data = VectorSet::uniform(2000, 16, 9).unwrap();
    let ivf = IvfIndex::build(&data, 16, 1);
    let hnsw = HnswIndex::build(&data, HnswParams::default());
    let lsh = LshIndex::build(&data, LshParams::default());
    let prog = ProgressiveIndex::build(&data, 16, 0, 5, 1);
    for (name, bytes) in [
        ("ivf", ivf.heap_bytes()),
        ("hnsw", hnsw.heap_bytes()),
        ("lsh", lsh.heap_bytes()),
        ("progressive", prog.heap_bytes()),
    ] {
        assert!(bytes > 1000, "{name} reports {bytes} bytes");
        assert!(bytes < 100_000_000, "{name} reports {bytes} bytes");
    }
    // the graph index (adjacency lists, ~2M edges per node) outweighs IVF's
    // flat lists on the same data
    assert!(hnsw.heap_bytes() > ivf.heap_bytes());
}

#[test]
fn kg_empty_and_self_loops() {
    use cda_kg::query::{Bgp, Pattern, Term};
    use cda_kg::TripleStore;
    let kg = TripleStore::new();
    assert_eq!(kg.len(), 0);
    assert!(kg.scan_str(None, None, None).is_empty());
    let bgp = Bgp::new(vec![Pattern::new(Term::var("s"), Term::var("p"), Term::var("o"))]);
    assert!(bgp.evaluate(&kg).is_empty());
    // self-loop reasoning terminates
    let mut kg = TripleStore::new();
    kg.insert("A", "subClassOf", "A");
    kg.insert("x", "type", "A");
    let added = cda_kg::reason::materialize(&mut kg);
    assert_eq!(added, 0);
    let r = cda_kg::reason::Reasoner::new(&kg);
    assert!(r.is_a("x", "A"));
}

#[test]
fn dialogue_survives_adversarial_inputs() {
    use cda_core::demo::demo_session;
    let mut cda = demo_session(5);
    for weird in [
        "",
        "    ",
        "SELECT * FROM employment_by_type; DROP TABLE employment_by_type",
        "what is the total total total total",
        "🦀🦀🦀",
        &"very ".repeat(500),
    ] {
        // must never panic; every input yields a well-formed turn
        let a = cda.process(weird);
        assert!(!a.text.is_empty());
    }
    // the session is still functional afterwards
    let a = cda.process("What is the total employees in employment_by_type per canton?");
    assert!(!a.text.is_empty());
}
