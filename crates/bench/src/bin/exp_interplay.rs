//! **F2** — Figure 2: the interplay of the five properties, by ablation.
//!
//! Each property is disabled in turn; a mixed workload (NL2SQL tasks with
//! known gold + seasonality requests + discovery turns) is replayed, and the
//! downstream metric of the property it *enables/ensures/informs/enhances*
//! is measured alongside the composite reliability score.
//!
//! Expected shape (the figure's arrows):
//! * P4 off → accuracy-among-answered drops (nothing abstains);
//! * P3 off → verification rate hits zero (soundness loses its evidence:
//!   P3 "informs" P4);
//! * P2 off → grounding confidence and discovery quality drop (P2 "ensures"
//!   P3's assumption statements);
//! * P5 off → no clarification/suggestions (guidance enhancement gone);
//! * P1 off → same answers, more work (efficiency "enables" the rest at
//!   interactive speed).

use cda_bench::{f, header, row};
use cda_core::answer::{AnswerStatus, PropertyTag};
use cda_core::demo::{demo_catalog, demo_kg, demo_linker, demo_vocabulary, FIGURE1_TURNS};
use cda_core::reliability::SessionOutcome;
use cda_core::{CdaConfig, Session, WorldSnapshot};
use cda_nlmodel::lm::SimLmConfig;
use cda_nlmodel::nl2sql::Workload;
use cda_soundness::expected_calibration_error;
use cda_soundness::verify::execution_accuracy;

fn build(config: CdaConfig) -> Session {
    let world = WorldSnapshot::builder()
        .catalog(demo_catalog(19))
        .kg(demo_kg())
        .vocab(demo_vocabulary())
        .linker(demo_linker())
        .lm(SimLmConfig { hallucination_rate: 0.45, overconfidence: 1.0, seed: 19 })
        .build_shared();
    Session::open(world, config)
}

struct Report {
    label: String,
    reliability: f64,
    accuracy: f64,
    coverage: f64,
    verification: f64,
    ece: f64,
    grounded_turns: usize,
    suggestions: usize,
}

fn evaluate(label: &str, config: CdaConfig) -> Report {
    let mut cda = build(config);
    let workload = Workload::generate(cda.world().workload_tables(), 50, 23);
    let mut outcome = SessionOutcome::default();
    let mut confidences = Vec::new();
    let mut flags = Vec::new();
    let mut grounded_turns = 0usize;
    let mut suggestions = 0usize;
    // a few conversational turns exercise grounding + guidance
    for turn in FIGURE1_TURNS {
        let a = cda.process(turn);
        if a.properties.contains(&PropertyTag::Grounding) {
            grounded_turns += 1;
        }
        suggestions += a.suggestions.len();
    }
    for task in &workload.tasks {
        let a = cda.process(&task.question);
        match a.status {
            AnswerStatus::Answered => {
                let correct = a
                    .executed_sql
                    .as_ref()
                    .map(|sql| execution_accuracy(cda.catalog().sql(), sql, &task.gold_sql))
                    .unwrap_or(false);
                if correct {
                    outcome.correct_answers += 1;
                } else {
                    outcome.wrong_answers += 1;
                }
                if let Some(c) = a.confidence {
                    confidences.push(c);
                    flags.push(correct);
                }
                if let Some(e) = &a.explanation {
                    outcome.explained += 1;
                    if e.verified() {
                        outcome.verified += 1;
                    }
                }
                suggestions += a.suggestions.len();
            }
            _ => outcome.abstentions += 1,
        }
    }
    outcome.ece = expected_calibration_error(&confidences, &flags, 10).unwrap_or(1.0);
    Report {
        label: label.to_owned(),
        reliability: outcome.reliability_score(),
        accuracy: outcome.answered_accuracy(),
        coverage: outcome.coverage(),
        verification: if outcome.explained == 0 {
            0.0
        } else {
            outcome.verified as f64 / outcome.explained as f64
        },
        ece: outcome.ece,
        grounded_turns,
        suggestions,
    }
}

fn main() {
    header("F2", "property interplay by ablation (45% hallucination model, 50 tasks + Fig-1 turns)");
    row(&[
        "configuration".into(),
        "reliability".into(),
        "acc@answered".into(),
        "coverage".into(),
        "verif rate".into(),
        "ECE".into(),
        "grounded".into(),
        "suggestions".into(),
    ]);
    let mut reports = vec![evaluate("all properties", CdaConfig::default())];
    for p in [
        PropertyTag::Efficiency,
        PropertyTag::Grounding,
        PropertyTag::Explainability,
        PropertyTag::Soundness,
        PropertyTag::Guidance,
    ] {
        reports.push(evaluate(&format!("without {p}"), CdaConfig::without(p)));
    }
    reports.push(evaluate("none (status quo)", CdaConfig::none()));
    for r in &reports {
        row(&[
            r.label.clone(),
            f(r.reliability),
            f(r.accuracy),
            f(r.coverage),
            f(r.verification),
            f(r.ece),
            format!("{}", r.grounded_turns),
            format!("{}", r.suggestions),
        ]);
    }
    println!("\nFigure-2 arrows, observed:");
    let all = &reports[0];
    let no_p3 = &reports[3];
    let no_p4 = &reports[4];
    let no_p5 = &reports[5];
    println!(
        "  P3 informs P4: verification rate {} -> {} when explainability is dropped",
        f(all.verification),
        f(no_p3.verification)
    );
    println!(
        "  P4 enhances P5: accuracy@answered {} -> {} when soundness is dropped",
        f(all.accuracy),
        f(no_p4.accuracy)
    );
    println!(
        "  P5 guidance: {} suggestions -> {} when guidance is dropped",
        all.suggestions, no_p5.suggestions
    );
}
