//! Basic graph pattern (BGP) queries — a small SPARQL core.
//!
//! A [`Bgp`] is a conjunction of triple patterns over variables and IRIs.
//! Evaluation orders patterns greedily by estimated selectivity given the
//! bindings accumulated so far (the standard heuristic of native RDF
//! engines), then backtracks.

use crate::store::{Id, TripleStore};
use std::collections::HashMap;

/// A term in a pattern: either a variable or a concrete IRI/literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// A concrete value (IRI or literal, both interned the same way).
    Iri(String),
}

impl Term {
    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Concrete-term constructor.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Iri(_) => None,
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Subject position.
    pub s: Term,
    /// Predicate position.
    pub p: Term,
    /// Object position.
    pub o: Term,
}

impl Pattern {
    /// Construct a pattern.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        Self { s, p, o }
    }

    fn resolve(&self, kg: &TripleStore, bindings: &HashMap<String, Id>) -> [Option<Id>; 3] {
        let lookup = |t: &Term| -> Option<Id> {
            match t {
                Term::Iri(v) => kg.dict().id(v),
                Term::Var(v) => bindings.get(v).copied(),
            }
        };
        [lookup(&self.s), lookup(&self.p), lookup(&self.o)]
    }

    /// Whether a concrete term of this pattern is missing from the
    /// dictionary (pattern can never match).
    fn has_unknown_iri(&self, kg: &TripleStore) -> bool {
        let unknown = |t: &Term| matches!(t, Term::Iri(v) if kg.dict().id(v).is_none());
        unknown(&self.s) || unknown(&self.p) || unknown(&self.o)
    }
}

/// One solution: variable name → bound value (decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    bindings: Vec<(String, String)>,
}

impl Row {
    /// The value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&str> {
        self.bindings.iter().find(|(k, _)| k == var).map(|(_, v)| v.as_str())
    }

    /// All bindings in insertion order.
    pub fn bindings(&self) -> &[(String, String)] {
        &self.bindings
    }
}

/// A basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp {
    patterns: Vec<Pattern>,
}

impl Bgp {
    /// Construct from patterns.
    pub fn new(patterns: Vec<Pattern>) -> Self {
        Self { patterns }
    }

    /// The patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Evaluate against a store, returning all solutions.
    pub fn evaluate(&self, kg: &TripleStore) -> Vec<Row> {
        if self.patterns.is_empty() {
            return Vec::new();
        }
        // If any pattern mentions an IRI the store has never seen, no match.
        if self.patterns.iter().any(|p| p.has_unknown_iri(kg)) {
            return Vec::new();
        }
        let mut results = Vec::new();
        let mut bindings: HashMap<String, Id> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = (0..self.patterns.len()).collect();
        self.backtrack(kg, &mut bindings, &mut order, &mut remaining, &mut results);
        results
    }

    fn backtrack(
        &self,
        kg: &TripleStore,
        bindings: &mut HashMap<String, Id>,
        order: &mut Vec<usize>,
        remaining: &mut Vec<usize>,
        results: &mut Vec<Row>,
    ) {
        if remaining.is_empty() {
            let mut out = Vec::with_capacity(bindings.len());
            // deterministic order: first appearance across patterns
            for idx in order.iter() {
                let p = &self.patterns[*idx];
                for t in [&p.s, &p.p, &p.o] {
                    if let Some(v) = t.as_var() {
                        if !out.iter().any(|(k, _): &(String, String)| k == v) {
                            if let Some(&id) = bindings.get(v) {
                                out.push((
                                    v.to_owned(),
                                    kg.dict().resolve(id).unwrap_or_default().to_owned(),
                                ));
                            }
                        }
                    }
                }
            }
            results.push(Row { bindings: out });
            return;
        }
        // Pick the most selective remaining pattern under current bindings.
        // Counting is capped: only the relative order matters, and uncapped
        // counting at every backtrack node would be quadratic.
        const SELECTIVITY_CAP: usize = 64;
        let Some((pick_pos, _)) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &idx)| {
                let [s, p, o] = self.patterns[idx].resolve(kg, bindings);
                (pos, kg.count_capped(s, p, o, SELECTIVITY_CAP))
            })
            .min_by_key(|&(_, count)| count)
        else {
            return; // no remaining patterns (guarded above; defensive)
        };
        let idx = remaining.swap_remove(pick_pos);
        order.push(idx);
        let pattern = &self.patterns[idx];
        let [s, p, o] = pattern.resolve(kg, bindings);
        for (ts, tp, to) in kg.scan(s, p, o) {
            let mut added: Vec<String> = Vec::new();
            let mut ok = true;
            for (term, value) in [(&pattern.s, ts), (&pattern.p, tp), (&pattern.o, to)] {
                if let Some(v) = term.as_var() {
                    match bindings.get(v) {
                        Some(&bound) if bound != value => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.to_owned(), value);
                            added.push(v.to_owned());
                        }
                    }
                }
            }
            if ok {
                self.backtrack(kg, bindings, order, remaining, results);
            }
            for v in added {
                bindings.remove(&v);
            }
        }
        order.pop();
        remaining.push(idx);
        let last = remaining.len() - 1;
        remaining.swap(pick_pos.min(last), last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut kg = TripleStore::new();
        for (s, p, o) in [
            ("zurich", "type", "Canton"),
            ("geneva", "type", "Canton"),
            ("zurich", "partOf", "switzerland"),
            ("geneva", "partOf", "switzerland"),
            ("barometer", "type", "Indicator"),
            ("barometer", "measures", "labour_market"),
            ("unemployment_rate", "type", "Indicator"),
            ("unemployment_rate", "measures", "labour_market"),
            ("gdp", "type", "Indicator"),
            ("gdp", "measures", "economy"),
        ] {
            kg.insert(s, p, o);
        }
        kg
    }

    #[test]
    fn single_pattern_query() {
        let kg = sample();
        let bgp = Bgp::new(vec![Pattern::new(
            Term::var("x"),
            Term::iri("type"),
            Term::iri("Canton"),
        )]);
        let mut got: Vec<String> =
            bgp.evaluate(&kg).iter().map(|r| r.get("x").unwrap().to_owned()).collect();
        got.sort();
        assert_eq!(got, vec!["geneva", "zurich"]);
    }

    #[test]
    fn join_across_patterns() {
        let kg = sample();
        let bgp = Bgp::new(vec![
            Pattern::new(Term::var("i"), Term::iri("type"), Term::iri("Indicator")),
            Pattern::new(Term::var("i"), Term::iri("measures"), Term::iri("labour_market")),
        ]);
        let mut got: Vec<String> =
            bgp.evaluate(&kg).iter().map(|r| r.get("i").unwrap().to_owned()).collect();
        got.sort();
        assert_eq!(got, vec!["barometer", "unemployment_rate"]);
    }

    #[test]
    fn variable_in_predicate_position() {
        let kg = sample();
        let bgp = Bgp::new(vec![Pattern::new(
            Term::iri("barometer"),
            Term::var("p"),
            Term::var("o"),
        )]);
        let rows = bgp.evaluate(&kg);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn shared_variable_must_unify() {
        let kg = sample();
        // ?x partOf ?y and ?x type Indicator: no indicator is partOf anything
        let bgp = Bgp::new(vec![
            Pattern::new(Term::var("x"), Term::iri("partOf"), Term::var("y")),
            Pattern::new(Term::var("x"), Term::iri("type"), Term::iri("Indicator")),
        ]);
        assert!(bgp.evaluate(&kg).is_empty());
    }

    #[test]
    fn three_pattern_chain() {
        let kg = sample();
        let bgp = Bgp::new(vec![
            Pattern::new(Term::var("c"), Term::iri("type"), Term::iri("Canton")),
            Pattern::new(Term::var("c"), Term::iri("partOf"), Term::var("country")),
            Pattern::new(Term::var("i"), Term::iri("measures"), Term::var("domain")),
        ]);
        // 2 cantons × 3 indicator-measure pairs = 6 solutions (cross product)
        assert_eq!(bgp.evaluate(&kg).len(), 6);
    }

    #[test]
    fn unknown_iri_yields_empty() {
        let kg = sample();
        let bgp = Bgp::new(vec![Pattern::new(
            Term::var("x"),
            Term::iri("type"),
            Term::iri("Dragon"),
        )]);
        assert!(bgp.evaluate(&kg).is_empty());
    }

    #[test]
    fn empty_bgp_is_empty() {
        let kg = sample();
        assert!(Bgp::new(vec![]).evaluate(&kg).is_empty());
    }

    #[test]
    fn row_accessors() {
        let kg = sample();
        let bgp = Bgp::new(vec![Pattern::new(
            Term::iri("gdp"),
            Term::iri("measures"),
            Term::var("what"),
        )]);
        let rows = bgp.evaluate(&kg);
        assert_eq!(rows[0].get("what"), Some("economy"));
        assert_eq!(rows[0].get("missing"), None);
        assert_eq!(rows[0].bindings().len(), 1);
    }

    #[test]
    fn repeated_variable_within_one_pattern() {
        let mut kg = sample();
        kg.insert("self", "sameAs", "self");
        let bgp = Bgp::new(vec![Pattern::new(
            Term::var("x"),
            Term::iri("sameAs"),
            Term::var("x"),
        )]);
        let rows = bgp.evaluate(&kg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some("self"));
    }
}
