//! Criterion bench for experiment E12: triple-store scans, BGP joins, and
//! reasoning.

use cda_testkit::bench::Criterion;
use cda_testkit::{criterion_group, criterion_main};
use cda_kg::query::{Bgp, Pattern, Term};
use cda_kg::reason::Reasoner;
use cda_kg::TripleStore;
use cda_testkit::rng::StdRng;

fn build(n: usize) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(5);
    let mut kg = TripleStore::new();
    for c in 1..32 {
        kg.insert(&format!("class_{c}"), "subClassOf", &format!("class_{}", c / 2));
    }
    for e in 0..n {
        let entity = format!("e{e}");
        kg.insert(&entity, "type", &format!("class_{}", rng.gen_range(0..32)));
        kg.insert(&entity, "relatedTo", &format!("e{}", rng.gen_range(0..n)));
    }
    kg
}

fn bench_kg(c: &mut Criterion) {
    let kg = build(100_000);
    let mut group = c.benchmark_group("kg_100k_entities");
    group.sample_size(20);

    group.bench_function("scan_by_predicate_object", |b| {
        b.iter(|| kg.scan_str(None, Some("type"), Some("class_3")).len())
    });

    let bgp2 = Bgp::new(vec![
        Pattern::new(Term::var("x"), Term::iri("type"), Term::iri("class_3")),
        Pattern::new(Term::var("x"), Term::iri("relatedTo"), Term::var("y")),
    ]);
    group.bench_function("bgp_two_pattern_join", |b| b.iter(|| bgp2.evaluate(&kg).len()));

    group.bench_function("reasoner_snapshot", |b| b.iter(|| Reasoner::new(&kg)));

    let reasoner = Reasoner::new(&kg);
    group.bench_function("types_of_with_inference", |b| b.iter(|| reasoner.types_of("e42")));
    group.finish();
}

criterion_group!(benches, bench_kg);
criterion_main!(benches);
