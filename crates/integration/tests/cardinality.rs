//! Property-based tests for the cardinality estimator
//! (`cda-analyzer::cardest`): its `[lo, hi]` bounds must be *sound* (actual
//! row counts always fall inside them) and *monotone* (filter/distinct never
//! widen past their input, `LIMIT k` caps at `k`, joins cap at the cross
//! product) — over generated tables, generated predicates, and the gold
//! nl2sql workload, with and without the optimizer.

use cda_analyzer::cardest::{estimate, q_error, Statistics};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::{execute_with_options, Catalog, ExecOptions, OptimizerRules};
use cda_testkit::prelude::*;
use cda_testkit::prop as proptest;

fn table_strategy() -> Gen<Table> {
    // three columns: group (string), x (int), y (float with nulls)
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec("[a-c]", n..=n),
            proptest::collection::vec(-50i64..50, n..=n),
            proptest::collection::vec(proptest::option::of(-10.0f64..10.0), n..=n),
        )
            .prop_map(|(groups, xs, ys)| {
                let schema = Schema::new(vec![
                    Field::new("g", DataType::Str),
                    Field::new("x", DataType::Int),
                    Field::new("y", DataType::Float),
                ]);
                let gs: Vec<&str> = groups.iter().map(String::as_str).collect();
                Table::from_columns(
                    schema,
                    vec![
                        Column::from_strs(&gs),
                        Column::from_ints(&xs),
                        Column::from_opt_floats(&ys),
                    ],
                )
                .expect("consistent columns")
            })
    })
}

/// Register `t` (and a 3-row lookup table joinable on `g`), collect stats.
fn setup(t: Table) -> (Catalog, Statistics) {
    let mut catalog = Catalog::new();
    catalog.register("t", t).unwrap();
    let lookup = Table::from_columns(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("w", DataType::Int),
        ]),
        vec![Column::from_strs(&["a", "b", "c"]), Column::from_ints(&[1, 2, 3])],
    )
    .unwrap();
    catalog.register("lookup", lookup).unwrap();
    let stats = Statistics::from_catalog(&catalog);
    (catalog, stats)
}

/// Execute `sql` twice (optimized and unoptimized), assert the actual row
/// count lies within the estimator's bounds for *both* plan shapes, and
/// return (estimate-of-unoptimized-plan, actual).
fn check_contains(
    catalog: &Catalog,
    stats: &Statistics,
    sql: &str,
) -> (cda_analyzer::CardEstimate, u64) {
    let naive = execute_with_options(
        catalog,
        sql,
        ExecOptions { rules: OptimizerRules::none(), track_lineage: true, vectorized: None },
    )
    .unwrap();
    let full = execute_with_options(catalog, sql, ExecOptions::default()).unwrap();
    let actual = full.table.num_rows() as u64;
    assert_eq!(actual, naive.table.num_rows() as u64, "{sql}");
    let e_naive = estimate(&naive.plan, stats);
    let e_full = estimate(&full.plan, stats);
    assert!(e_naive.contains(actual), "{sql}: actual {actual} outside {e_naive} (unoptimized)");
    assert!(e_full.contains(actual), "{sql}: actual {actual} outside {e_full} (optimized)");
    (e_naive, actual)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_bounds_are_sound_and_never_widen(t in table_strategy(), pivot in -50i64..50) {
        let rows = t.num_rows() as u64;
        let (catalog, stats) = setup(t);
        for sql in [
            format!("SELECT * FROM t WHERE x < {pivot}"),
            format!("SELECT * FROM t WHERE x = {pivot}"),
            format!("SELECT * FROM t WHERE x >= {pivot} AND g = 'a'"),
            format!("SELECT * FROM t WHERE x < {pivot} OR y IS NULL"),
        ] {
            let (e, _) = check_contains(&catalog, &stats, &sql);
            prop_assert!(e.hi <= rows, "{}: filter hi {} > input {}", sql, e.hi, rows);
        }
    }

    #[test]
    fn distinct_and_group_by_cap_at_ndv(t in table_strategy()) {
        let rows = t.num_rows() as u64;
        let (catalog, stats) = setup(t);
        let (e, actual) = check_contains(&catalog, &stats, "SELECT DISTINCT g FROM t");
        // at most 3 distinct groups by construction, and never above input
        prop_assert!(e.hi <= rows.min(3));
        prop_assert!(actual >= 1 && e.lo >= 1, "non-empty input has at least one group");
        let (e, _) = check_contains(&catalog, &stats, "SELECT g, COUNT(*) FROM t GROUP BY g");
        prop_assert!(e.hi <= rows.min(3));
    }

    #[test]
    fn limit_caps_exactly(t in table_strategy(), k in 0usize..60) {
        let rows = t.num_rows() as u64;
        let (catalog, stats) = setup(t);
        if k == 0 {
            return Ok(()); // LIMIT 0 is pinned in sqlcheck's A011 tests
        }
        let (e, actual) = check_contains(&catalog, &stats, &format!("SELECT * FROM t LIMIT {k}"));
        prop_assert!(e.hi <= k as u64, "LIMIT {} but hi {}", k, e.hi);
        prop_assert_eq!(actual, rows.min(k as u64));
    }

    #[test]
    fn join_bounds_cap_at_cross_product(t in table_strategy()) {
        let rows = t.num_rows() as u64;
        let (catalog, stats) = setup(t);
        let (e, _) = check_contains(
            &catalog,
            &stats,
            "SELECT t.g, lookup.w FROM t JOIN lookup ON t.g = lookup.g",
        );
        prop_assert!(e.hi <= rows * 3, "join hi {} > cross product {}", e.hi, rows * 3);
        // the equi-join on a contained key keeps every t row: est is close
        prop_assert!(q_error(e.point(), rows) <= 3.0, "est {} vs |t| {}", e.point(), rows);
    }

    #[test]
    fn global_aggregates_are_exactly_one_row(t in table_strategy()) {
        let (catalog, stats) = setup(t);
        let (e, actual) = check_contains(&catalog, &stats, "SELECT COUNT(*), SUM(x) FROM t");
        prop_assert_eq!((e.lo, e.hi, actual), (1, 1, 1));
    }
}

/// The E14 acceptance property at the test level: every gold-workload query
/// of the demo catalog has its actual cardinality inside the bounds, and the
/// point estimates stay within the q-error budget.
#[test]
fn gold_workload_cardinalities_fall_within_bounds() {
    use cda_nlmodel::nl2sql::{Workload, WorkloadTable};
    let cat = cda_core::demo::demo_catalog(7);
    let stats = cat.stats();
    let mut tables = Vec::new();
    for ds in cat.datasets() {
        if let Some(table) = &ds.table {
            let schema = table.schema().clone();
            let string_values = schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.data_type() == DataType::Str)
                .filter_map(|(i, f)| {
                    let col = table.column(i).ok()?;
                    let mut vals: Vec<String> = (0..table.num_rows().min(8))
                        .filter_map(|r| col.value(r).ok())
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect();
                    vals.sort();
                    vals.dedup();
                    (!vals.is_empty()).then(|| (f.name().to_owned(), vals))
                })
                .collect();
            tables.push(WorkloadTable { name: ds.name.clone(), schema, string_values });
        }
    }
    let workload = Workload::generate(&tables, 40, 17);
    let mut q_errors = Vec::new();
    for task in &workload.tasks {
        let result = execute_with_options(cat.sql(), &task.gold_sql, ExecOptions::default())
            .unwrap_or_else(|e| panic!("gold SQL failed: {} ({e})", task.gold_sql));
        let actual = result.table.num_rows() as u64;
        let e = estimate(&result.plan, stats);
        assert!(e.contains(actual), "{}: actual {actual} outside {e}", task.gold_sql);
        q_errors.push(q_error(e.point(), actual));
    }
    q_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = q_errors[q_errors.len() / 2];
    assert!(median <= 16.0, "median q-error {median} exceeds the E14 budget of 16");
}
