//! Speculative planning over alternative next actions.
//!
//! "Running alternative scenarios behind the scenes": the planner takes the
//! candidate next actions of a conversation state, *simulates* each with a
//! caller-provided scorer (in the full system: execute the candidate query /
//! computation and measure its soundness), optionally looks ahead one level
//! through each action's follow-ups, and returns a ranked recommendation
//! list. Experiment E8 scores these rankings with MRR/NDCG against the
//! action a simulated user actually wanted.

use crate::{GuidanceError, Result};

/// A candidate next action.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Stable identifier.
    pub id: String,
    /// Human-readable description offered to the user.
    pub description: String,
    /// Follow-up actions reachable after this one (one-level lookahead).
    pub follow_ups: Vec<Action>,
}

impl Action {
    /// Leaf action.
    pub fn leaf(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self { id: id.into(), description: description.into(), follow_ups: Vec::new() }
    }

    /// Action with follow-ups.
    pub fn with_follow_ups(mut self, follow_ups: Vec<Action>) -> Self {
        self.follow_ups = follow_ups;
        self
    }
}

/// A scored recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The action.
    pub action: Action,
    /// Immediate score from the simulator.
    pub immediate: f64,
    /// Discounted best follow-up score (0 for leaves).
    pub lookahead: f64,
    /// Combined score used for ranking.
    pub total: f64,
}

/// The speculative planner.
#[derive(Debug, Clone, Copy)]
pub struct SpeculativePlanner {
    /// Discount applied to follow-up value.
    pub discount: f64,
}

impl Default for SpeculativePlanner {
    fn default() -> Self {
        Self { discount: 0.5 }
    }
}

impl SpeculativePlanner {
    /// Rank candidate actions by simulated value. `score` is the scenario
    /// simulator: it receives an action id and returns the expected
    /// soundness/utility of taking it (e.g. the consistency confidence of
    /// the query it would run).
    pub fn rank(
        &self,
        candidates: &[Action],
        score: &impl Fn(&Action) -> f64,
    ) -> Result<Vec<Recommendation>> {
        if candidates.is_empty() {
            return Err(GuidanceError::NoCandidates);
        }
        let mut out: Vec<Recommendation> = candidates
            .iter()
            .map(|a| {
                let immediate = score(a);
                let lookahead = a
                    .follow_ups
                    .iter()
                    .map(score)
                    .fold(0.0f64, f64::max)
                    * self.discount;
                Recommendation { action: a.clone(), immediate, lookahead, total: immediate + lookahead }
            })
            .collect();
        out.sort_by(|a, b| b.total.partial_cmp(&a.total).unwrap_or(std::cmp::Ordering::Equal));
        Ok(out)
    }

    /// Mean reciprocal rank of `wanted` action ids within ranked
    /// recommendations (experiment E8's ranking metric).
    pub fn mrr(rankings: &[Vec<Recommendation>], wanted: &[&str]) -> f64 {
        assert_eq!(rankings.len(), wanted.len());
        if rankings.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (ranking, want) in rankings.iter().zip(wanted) {
            if let Some(pos) = ranking.iter().position(|r| r.action.id == *want) {
                total += 1.0 / (pos + 1) as f64;
            }
        }
        total / rankings.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Action> {
        vec![
            Action::leaf("drill_down", "Break the barometer down by canton"),
            Action::leaf("seasonality", "Analyze seasonality of the barometer")
                .with_follow_ups(vec![Action::leaf("forecast", "Forecast the next 12 months")]),
            Action::leaf("unrelated", "Show a random dataset"),
        ]
    }

    #[test]
    fn ranking_follows_scores() {
        let planner = SpeculativePlanner::default();
        let score = |a: &Action| match a.id.as_str() {
            "seasonality" => 0.9,
            "drill_down" => 0.7,
            "forecast" => 0.8,
            _ => 0.1,
        };
        let ranked = planner.rank(&candidates(), &score).unwrap();
        assert_eq!(ranked[0].action.id, "seasonality");
        assert_eq!(ranked[2].action.id, "unrelated");
        // lookahead contributed
        assert!((ranked[0].lookahead - 0.4).abs() < 1e-12);
        assert!((ranked[0].total - 1.3).abs() < 1e-12);
    }

    #[test]
    fn lookahead_can_flip_the_ranking() {
        let planner = SpeculativePlanner { discount: 1.0 };
        // drill_down scores higher immediately, but seasonality's follow-up
        // makes it the better plan
        let score = |a: &Action| match a.id.as_str() {
            "drill_down" => 0.8,
            "seasonality" => 0.5,
            "forecast" => 0.9,
            _ => 0.0,
        };
        let ranked = planner.rank(&candidates(), &score).unwrap();
        assert_eq!(ranked[0].action.id, "seasonality");
        // without lookahead the order flips
        let myopic = SpeculativePlanner { discount: 0.0 };
        let ranked = myopic.rank(&candidates(), &score).unwrap();
        assert_eq!(ranked[0].action.id, "drill_down");
    }

    #[test]
    fn empty_candidates_error() {
        let planner = SpeculativePlanner::default();
        assert!(planner.rank(&[], &|_| 0.0).is_err());
    }

    #[test]
    fn mrr_over_sessions() {
        let planner = SpeculativePlanner::default();
        let score = |a: &Action| if a.id == "seasonality" { 1.0 } else { 0.5 };
        let r1 = planner.rank(&candidates(), &score).unwrap();
        let r2 = planner.rank(&candidates(), &score).unwrap();
        // wanted is top in session 1, second in session 2's view
        let m = SpeculativePlanner::mrr(&[r1, r2], &["seasonality", "drill_down"]);
        assert!((m - (1.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(SpeculativePlanner::mrr(&[], &[]), 0.0);
    }
}
