//! The Figure-1 demo domain: Swiss labour-market datasets, vocabulary,
//! entities, and knowledge graph.
//!
//! The paper's running example cannot ship the real arbeit.swiss data, so
//! this module generates seeded synthetic stand-ins with the same *shape*:
//! an employment-type distribution table, the monthly Labour Market
//! Barometer as a time series with a genuine period-6 seasonal component
//! (the property the Figure-1 answer reports), a wage table, and an
//! off-topic distractor dataset that discovery must rank below the
//! labour-market sources.

use crate::catalog::{Dataset, DatasetCatalog};
use crate::reliability::CdaConfig;
use crate::rot::Freshness;
use crate::session::Session;
use crate::system::CdaSystem;
use crate::world::WorldSnapshot;
use std::sync::Arc;
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_kg::linking::{Entity, Linker};
use cda_kg::vocab::{Concept, Vocabulary};
use cda_kg::TripleStore;
use cda_nlmodel::lm::SimLmConfig;
use cda_timeseries::TimeSeries;
use cda_testkit::rng::StdRng;

/// The four user turns of the Figure-1 conversation.
pub const FIGURE1_TURNS: [&str; 4] = [
    "Give me an overview of the working force in Switzerland",
    "What is the Swiss workforce barometer?",
    "I am interested in the barometer",
    "Can you please give me the seasonality insights, such as overall trend",
];

/// Swiss cantons used by the demo tables.
pub const CANTONS: [&str; 6] = ["ZH", "GE", "VD", "BE", "TI", "SG"];

/// Employment types of the distribution table.
pub const EMPLOYMENT_TYPES: [&str; 3] = ["full_time", "part_time", "self_employed"];

/// Economic sectors of the wage table.
pub const SECTORS: [&str; 4] = ["it", "finance", "health", "construction"];

/// Build the employment-type distribution table (`canton, type, year,
/// employees`).
pub fn employment_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cantons = Vec::new();
    let mut types = Vec::new();
    let mut years = Vec::new();
    let mut employees = Vec::new();
    for canton in CANTONS {
        for ty in EMPLOYMENT_TYPES {
            for year in 2020..=2024 {
                cantons.push(canton);
                types.push(ty);
                years.push(year);
                let base = match ty {
                    "full_time" => 400_000,
                    "part_time" => 150_000,
                    _ => 60_000,
                };
                employees.push(base / 6 + rng.gen_range(-5_000..5_000));
            }
        }
    }
    Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str).with_description("two-letter canton code"),
            Field::new("type", DataType::Str).with_description("employment type"),
            Field::new("year", DataType::Int).with_description("reference year"),
            Field::new("employees", DataType::Int)
                .with_description("number of employees older than 15"),
        ]),
        vec![
            Column::from_strs(&cantons),
            Column::from_strs(&types),
            Column::from_ints(&years),
            Column::from_ints(&employees),
        ],
    )
    .expect("static schema matches columns") // lint: allow(R002) literal data
}

/// Build the wage table (`canton, sector, median_wage`).
pub fn wage_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let mut cantons = Vec::new();
    let mut sectors = Vec::new();
    let mut wages = Vec::new();
    for canton in CANTONS {
        for sector in SECTORS {
            cantons.push(canton);
            sectors.push(sector);
            let base = match sector {
                "it" => 9_200.0,
                "finance" => 10_100.0,
                "health" => 7_300.0,
                _ => 6_400.0,
            };
            wages.push(base + rng.gen_range(-600.0..600.0));
        }
    }
    Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("median_wage", DataType::Float)
                .with_description("median gross monthly wage in CHF"),
        ]),
        vec![
            Column::from_strs(&cantons),
            Column::from_strs(&sectors),
            Column::from_floats(&wages),
        ],
    )
    .expect("static schema matches columns") // lint: allow(R002) literal data
}

/// The barometer series: 13 years of monthly observations with a genuine
/// period-6 seasonal component (amplitude 5, slight upward trend).
pub fn barometer_series(seed: u64) -> TimeSeries {
    TimeSeries::synthetic_seasonal(156, 6, 5.0, 0.05, 0.5, seed ^ 0xBAB0)
}

/// The barometer as a SQL-visible table (`month, value`).
pub fn barometer_table(series: &TimeSeries) -> Table {
    Table::from_columns(
        Schema::new(vec![
            Field::new("month", DataType::Timestamp).with_description("month index"),
            Field::new("value", DataType::Float).with_description("barometer value"),
        ]),
        vec![
            Column::from_timestamps(series.timestamps()),
            Column::from_floats(series.values()),
        ],
    )
    .expect("static schema matches columns") // lint: allow(R002) literal data
}

/// Build the demo dataset catalog.
pub fn demo_catalog(seed: u64) -> DatasetCatalog {
    let mut catalog = DatasetCatalog::new();
    catalog
        .register(Dataset {
            name: "employment_by_type".into(),
            description: "the employment type distribution for the employees older than 15 \
                          years old"
                .into(),
            source_url: "https://www.bfs.admin.ch/bfs/en/home/statistics/work-income.html".into(),
            table: Some(employment_table(seed)),
            series: None,
            keywords: vec![
                "employment".into(),
                "workforce".into(),
                "labour".into(),
                "jobs".into(),
                "distribution".into(),
            ],
            freshness: Freshness::static_data(),
        })
        .expect("fresh catalog"); // lint: allow(R002) names are unique literals
    let series = barometer_series(seed);
    catalog
        .register(Dataset {
            name: "labour_barometer".into(),
            description: "the Swiss Labour Market Barometer, a monthly leading indicator based \
                          on a survey of labour market experts from selected employment centers \
                          in 22 cantons"
                .into(),
            source_url:
                "https://www.arbeit.swiss/secoalv/en/home/menue/institutionen-medien/schweizer-arbeitsmarktbarometer.html"
                    .into(),
            table: Some(barometer_table(&series)),
            series: Some(series),
            keywords: vec![
                "barometer".into(),
                "labour".into(),
                "indicator".into(),
                "monthly".into(),
                "survey".into(),
            ],
            freshness: Freshness::static_data(),
        })
        .expect("fresh catalog"); // lint: allow(R002) names are unique literals
    catalog
        .register(Dataset {
            name: "wage_stats".into(),
            description: "median gross monthly wages by canton and economic sector".into(),
            source_url: "https://www.bfs.admin.ch/bfs/en/home/statistics/wages.html".into(),
            table: Some(wage_table(seed)),
            series: None,
            keywords: vec!["wage".into(), "salary".into(), "income".into(), "sector".into()],
            freshness: Freshness::static_data(),
        })
        .expect("fresh catalog"); // lint: allow(R002) names are unique literals
    catalog
        .register(Dataset {
            name: "chocolate_exports".into(),
            description: "chocolate export volumes by destination country and year".into(),
            source_url: "https://www.chocosuisse.ch/en/statistics".into(),
            table: None,
            series: None,
            keywords: vec!["chocolate".into(), "export".into(), "trade".into()],
            freshness: Freshness::static_data(),
        })
        .expect("fresh catalog"); // lint: allow(R002) names are unique literals
    catalog
}

/// Build the demo vocabulary (P2 grounding).
pub fn demo_vocabulary() -> Vocabulary {
    let mut vocab = Vocabulary::new();
    let labour = Concept::new(
        "labour_market",
        "people available for employment and the labour market of a country",
        vec!["employment", "labour"],
    );
    for term in ["working force", "workforce", "work force", "labour market", "labor market"] {
        vocab.register(term, labour.clone());
    }
    vocab.register(
        "barometer",
        Concept::new(
            "swiss_labour_barometer",
            "monthly leading indicator based on a survey of labour market experts",
            vec!["employment", "labour"],
        ),
    );
    vocab.register(
        "barometer",
        Concept::new(
            "weather_barometer",
            "instrument measuring atmospheric pressure for weather forecasting",
            vec!["meteorology", "weather"],
        ),
    );
    vocab.register(
        "wages",
        Concept::new("wage_level", "gross monthly pay of employees", vec!["income", "wage"]),
    );
    vocab
}

/// Build the demo entity linker (entity ids that match dataset names link
/// directly to the catalog).
pub fn demo_linker() -> Linker {
    Linker::new(
        vec![
            Entity::new(
                "labour_barometer",
                "Swiss Labour Market Barometer",
                vec!["barometer", "labour market barometer", "workforce barometer", "swiss barometer"],
                "monthly leading indicator survey labour market experts employment switzerland \
                 workforce cantons",
                60.0,
            ),
            Entity::new(
                "employment_by_type",
                "Employment by Type",
                vec!["employment statistics", "employment type distribution", "employment data"],
                "employment type distribution employees older than 15 labour workforce \
                 statistics switzerland",
                45.0,
            ),
            Entity::new(
                "wage_stats",
                "Wage Statistics",
                vec!["wages", "salary statistics", "wage data"],
                "median gross monthly wages canton sector income",
                30.0,
            ),
            Entity::new(
                "weather_barometer",
                "Barometer",
                vec![],
                "instrument measuring atmospheric pressure weather meteorology forecast",
                200.0,
            ),
        ],
        128,
    )
}

/// Build the demo knowledge graph (with an RDFS-ish taxonomy, so reasoning
/// experiments have structure to walk).
pub fn demo_kg() -> TripleStore {
    let mut kg = TripleStore::new();
    for (s, p, o) in [
        ("Indicator", "subClassOf", "Dataset"),
        ("Statistics", "subClassOf", "Dataset"),
        ("labour_barometer", "type", "Indicator"),
        ("employment_by_type", "type", "Statistics"),
        ("wage_stats", "type", "Statistics"),
        ("chocolate_exports", "type", "Statistics"),
        ("labour_barometer", "measures", "labour_market"),
        ("employment_by_type", "measures", "labour_market"),
        ("wage_stats", "measures", "labour_market"),
        ("chocolate_exports", "measures", "trade"),
        ("labour_barometer", "frequency", "monthly"),
        ("labour_barometer", "publishedBy", "seco"),
        ("Canton", "subClassOf", "Region"),
        ("zurich", "type", "Canton"),
        ("geneva", "type", "Canton"),
        ("measures", "subPropertyOf", "relatedTo"),
    ] {
        kg.insert(s, p, o);
    }
    kg
}

/// The Figure-1 demo world: catalog + KG + vocabulary + linker + LM config,
/// frozen at epoch 0 and shared across however many sessions open on it.
/// The simulated LM hallucinates at a mild 15% base rate (so soundness
/// mechanisms have real work) with the paper's overconfident
/// self-reporting.
pub fn demo_world(seed: u64) -> Arc<WorldSnapshot> {
    WorldSnapshot::builder()
        .catalog(demo_catalog(seed))
        .kg(demo_kg())
        .vocab(demo_vocabulary())
        .linker(demo_linker())
        .lm(SimLmConfig { hallucination_rate: 0.15, overconfidence: 0.8, seed })
        .build_shared()
}

/// Open a fully configured Figure-1 demo session (seed 0 — the legacy
/// single-session LM stream) over a fresh [`demo_world`].
pub fn demo_session(seed: u64) -> Session {
    Session::open(demo_world(seed), CdaConfig::default())
}

/// Assemble the fully configured Figure-1 demo system.
#[deprecated(since = "0.1.0", note = "use `demo_session` (or `demo_world` + `Session::open`)")]
pub fn demo_system(seed: u64) -> CdaSystem {
    CdaSystem::from_session(demo_session(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_timeseries::seasonality::detect_seasonality;

    #[test]
    fn employment_table_shape() {
        let t = employment_table(1);
        assert_eq!(t.num_rows(), 6 * 3 * 5);
        assert_eq!(t.num_columns(), 4);
        // deterministic given the seed
        assert_eq!(employment_table(1), employment_table(1));
        assert_ne!(employment_table(1), employment_table(2));
    }

    #[test]
    fn barometer_series_has_period_six() {
        let s = barometer_series(3);
        assert_eq!(s.len(), 156);
        let r = detect_seasonality(&s, 24).unwrap();
        assert_eq!(r.period, 6);
        assert!(r.confidence > 0.5, "confidence {}", r.confidence);
    }

    #[test]
    fn barometer_table_mirrors_series() {
        let s = barometer_series(3);
        let t = barometer_table(&s);
        assert_eq!(t.num_rows(), s.len());
        assert_eq!(
            t.value(10, 1).unwrap().as_f64().unwrap(),
            s.values()[10]
        );
    }

    #[test]
    fn catalog_contains_all_demo_datasets() {
        let c = demo_catalog(1);
        assert_eq!(c.len(), 4);
        assert!(c.sql().get("employment_by_type").is_ok());
        assert!(c.sql().get("labour_barometer").is_ok());
        assert!(c.sql().get("wage_stats").is_ok());
        // the distractor has no table
        assert!(c.sql().get("chocolate_exports").is_err());
    }

    #[test]
    fn discovery_prefers_labour_datasets() {
        let c = demo_catalog(1);
        let hits = c.discover("employment labour market workforce overview", 2, true);
        assert!(hits.iter().all(|h| h.name != "chocolate_exports"), "{hits:?}");
    }

    #[test]
    fn vocabulary_grounds_figure1_terms() {
        let v = demo_vocabulary();
        let d = v.disambiguate("working force", "overview of switzerland employment");
        assert_eq!(d[0].concept.id, "labour_market");
        let d = v.disambiguate("barometer", "labour market survey");
        assert_eq!(d[0].concept.id, "swiss_labour_barometer");
    }

    #[test]
    fn linker_resolves_barometer_in_labour_context() {
        let l = demo_linker();
        let c = l.link("barometer", "swiss labour market employment survey", Default::default());
        assert_eq!(c[0].entity_id, "labour_barometer");
    }

    #[test]
    fn kg_reasoning_over_demo_taxonomy() {
        let kg = demo_kg();
        let r = cda_kg::reason::Reasoner::new(&kg);
        assert!(r.is_a("labour_barometer", "Dataset"));
        let datasets = r.instances_of("Dataset");
        assert!(datasets.len() >= 4);
        assert_eq!(
            r.objects_via("labour_barometer", "relatedTo"),
            vec!["labour_market".to_owned()]
        );
    }
}
