//! Deterministic load generator: synthetic Figure-1-style turn mixes for
//! driving a [`Server`](crate::Server) at scale.
//!
//! Scripts are generated from the world's own workload tables (the same
//! generator the NL2SQL workload uses), mixed with discovery/seasonality
//! turns and iterative refinements, all seeded through the in-tree testkit
//! PRNG — so a load run is replayable bit-for-bit.

use cda_core::WorldSnapshot;
use cda_nlmodel::nl2sql::Workload;
use cda_testkit::rng::SplitMix64;

/// Shape of a synthetic load: how many sessions, how long each
/// conversation runs, and the PRNG seed.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Number of concurrent conversations.
    pub sessions: usize,
    /// Turns per conversation.
    pub turns_per_session: usize,
    /// Seed for script generation and interleaving.
    pub seed: u64,
}

/// The conversational turns that open the paper's Figure-1 session, used
/// to leaven the analysis-heavy mix with discovery/selection traffic.
const CONVERSATIONAL_TURNS: [&str; 3] = [
    "Which datasets cover employment by canton?",
    "Tell me more about the first one",
    "Is there seasonality in the labour barometer?",
];

/// Refinement follow-ups that only make sense after an analysis turn.
const REFINEMENTS: [&str; 2] = ["and per type instead?", "only the top 3"];

/// Generate one turn script per session: a Figure-1-style mix of
/// discovery/selection turns, NL2SQL analysis questions over the world's
/// workload tables, and iterative refinements. Deterministic in `spec.seed`.
pub fn session_scripts(world: &WorldSnapshot, spec: LoadSpec) -> Vec<Vec<String>> {
    // A bounded question pool, reused across sessions: generating one task
    // per turn would dominate setup time at 100k-turn scale.
    let pool_size = 64.min(spec.sessions.max(1) * spec.turns_per_session.max(1)).max(8);
    let workload = Workload::generate(world.workload_tables(), pool_size, spec.seed);
    let questions: Vec<&str> = workload.tasks.iter().map(|t| t.question.as_str()).collect();
    let mut rng = SplitMix64::new(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut scripts = Vec::with_capacity(spec.sessions);
    for _ in 0..spec.sessions {
        let mut script = Vec::with_capacity(spec.turns_per_session);
        let mut last_was_analysis = false;
        for _ in 0..spec.turns_per_session {
            let roll = rng.next_u64() % 100;
            let turn = if last_was_analysis && roll < 25 {
                // refine the previous analysis
                REFINEMENTS[(rng.next_u64() as usize) % REFINEMENTS.len()].to_owned()
            } else if roll < 45 {
                last_was_analysis = false;
                CONVERSATIONAL_TURNS[(rng.next_u64() as usize) % CONVERSATIONAL_TURNS.len()]
                    .to_owned()
            } else {
                last_was_analysis = true;
                questions[(rng.next_u64() as usize) % questions.len().max(1)].to_owned()
            };
            script.push(turn);
        }
        scripts.push(script);
    }
    scripts
}

/// Flatten per-session scripts into one global submission order that
/// interleaves sessions pseudo-randomly while preserving each session's
/// own turn order. Returns `(session_index, utterance)` pairs.
/// Deterministic in `seed`.
pub fn interleave(scripts: &[Vec<String>], seed: u64) -> Vec<(usize, String)> {
    let mut cursors: Vec<usize> = vec![0; scripts.len()];
    let mut live: Vec<usize> = (0..scripts.len()).filter(|&i| !scripts[i].is_empty()).collect();
    let total: usize = scripts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut rng = SplitMix64::new(seed);
    while !live.is_empty() {
        let pick = (rng.next_u64() as usize) % live.len();
        let s = live[pick];
        out.push((s, scripts[s][cursors[s]].clone()));
        cursors[s] += 1;
        if cursors[s] == scripts[s].len() {
            live.swap_remove(pick);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_core::demo::demo_world;

    #[test]
    fn scripts_are_deterministic_and_sized() {
        let world = demo_world(42);
        let spec = LoadSpec { sessions: 5, turns_per_session: 7, seed: 9 };
        let a = session_scripts(&world, spec);
        let b = session_scripts(&world, spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|s| s.len() == 7));
    }

    #[test]
    fn different_seeds_differ() {
        let world = demo_world(42);
        let a = session_scripts(&world, LoadSpec { sessions: 3, turns_per_session: 6, seed: 1 });
        let b = session_scripts(&world, LoadSpec { sessions: 3, turns_per_session: 6, seed: 2 });
        assert_ne!(a, b);
    }

    #[test]
    fn interleave_preserves_per_session_order() {
        let world = demo_world(42);
        let scripts =
            session_scripts(&world, LoadSpec { sessions: 4, turns_per_session: 5, seed: 3 });
        let flat = interleave(&scripts, 11);
        assert_eq!(flat.len(), 20);
        // project the interleaving back per session: must equal the script
        for (i, script) in scripts.iter().enumerate() {
            let projected: Vec<&String> =
                flat.iter().filter(|(s, _)| *s == i).map(|(_, t)| t).collect();
            assert_eq!(projected, script.iter().collect::<Vec<_>>());
        }
        // and it is deterministic
        assert_eq!(flat, interleave(&scripts, 11));
    }

    #[test]
    fn scripts_mix_conversation_and_analysis() {
        let world = demo_world(42);
        let scripts =
            session_scripts(&world, LoadSpec { sessions: 8, turns_per_session: 12, seed: 4 });
        let all: Vec<&String> = scripts.iter().flatten().collect();
        let conversational =
            all.iter().filter(|t| CONVERSATIONAL_TURNS.contains(&t.as_str())).count();
        let refinements = all.iter().filter(|t| REFINEMENTS.contains(&t.as_str())).count();
        let analysis = all.len() - conversational - refinements;
        assert!(conversational > 0, "mix lost its conversational turns");
        assert!(analysis > 0, "mix lost its analysis turns");
        assert!(refinements > 0, "mix lost its refinement turns");
    }
}
