//! Random-hyperplane LSH (SimHash family).
//!
//! Probabilistic, collision-based retrieval: `tables` independent hash
//! tables, each hashing with `bits` random hyperplanes. A candidate set is
//! the union of the query's buckets; candidates are re-ranked exactly.
//! Collision probability for two vectors at angle θ is `(1 - θ/π)^bits` per
//! table — a *distributional* guarantee, contrasted in experiment E1 with
//! the per-query deterministic guarantee of [`crate::progressive`].

use crate::exact::TopK;
use crate::metrics::{squared_euclidean, dot};
use crate::{Neighbor, SearchStats, VectorIndex, VectorSet};
use cda_testkit::rng::StdRng;
use std::collections::HashMap;

/// LSH parameters.
#[derive(Debug, Clone, Copy)]
pub struct LshParams {
    /// Hyperplanes per table (bucket key width in bits, ≤ 32).
    pub bits: usize,
    /// Number of independent tables.
    pub tables: usize,
    /// RNG seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        Self { bits: 12, tables: 8, seed: 0 }
    }
}

/// The LSH index.
#[derive(Debug, Clone)]
pub struct LshIndex {
    /// `tables × bits` hyperplane normals, flattened per table.
    hyperplanes: Vec<Vec<f32>>,
    buckets: Vec<HashMap<u32, Vec<usize>>>,
    params: LshParams,
    dim: usize,
}

impl LshIndex {
    /// Build the index.
    pub fn build(data: &VectorSet, params: LshParams) -> Self {
        let bits = params.bits.clamp(1, 32);
        let dim = data.dim();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut hyperplanes = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let mut planes = Vec::with_capacity(bits * dim);
            for _ in 0..bits * dim {
                planes.push(crate::dataset::gaussian(&mut rng));
            }
            hyperplanes.push(planes);
        }
        let mut buckets = vec![HashMap::new(); params.tables];
        for i in 0..data.len() {
            let v = data.vector(i);
            for (t, planes) in hyperplanes.iter().enumerate() {
                let key = hash_key(v, planes, bits, dim);
                buckets[t].entry(key).or_insert_with(Vec::new).push(i);
            }
        }
        Self { hyperplanes, buckets, params: LshParams { bits, ..params }, dim }
    }

    /// Search with statistics: gather candidates from all tables, re-rank.
    pub fn search_with_stats(
        &self,
        data: &VectorSet,
        query: &[f32],
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut seen = vec![false; data.len()];
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        for (t, planes) in self.hyperplanes.iter().enumerate() {
            let key = hash_key(query, planes, self.params.bits, self.dim);
            if let Some(ids) = self.buckets[t].get(&key) {
                stats.visited += 1;
                for &id in ids {
                    if seen[id] {
                        continue;
                    }
                    seen[id] = true;
                    stats.distance_evals += 1;
                    top.push(Neighbor::new(id, squared_euclidean(query, data.vector(id))));
                }
            }
        }
        (top.into_sorted(), stats)
    }

    /// Approximate heap footprint in bytes (hyperplanes + buckets).
    pub fn heap_bytes(&self) -> usize {
        self.hyperplanes.iter().map(|p| p.len() * 4).sum::<usize>()
            + self
                .buckets
                .iter()
                .flat_map(|t| t.values())
                .map(|v| v.len() * 8 + 48)
                .sum::<usize>()
    }

    /// Expected per-table collision probability of two vectors at angular
    /// distance `theta` radians: `(1 - θ/π)^bits`.
    pub fn collision_probability(&self, theta: f32) -> f64 {
        (1.0 - f64::from(theta) / std::f64::consts::PI).powi(self.params.bits as i32)
    }
}

fn hash_key(v: &[f32], planes: &[f32], bits: usize, dim: usize) -> u32 {
    let mut key = 0u32;
    for b in 0..bits {
        let plane = &planes[b * dim..(b + 1) * dim];
        if dot(v, plane) >= 0.0 {
            key |= 1 << b;
        }
    }
    key
}

impl VectorIndex for LshIndex {
    fn search(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(data, query, k).0
    }

    fn name(&self) -> &'static str {
        "lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_index;

    #[test]
    fn identical_vector_is_found() {
        let data = VectorSet::uniform(500, 16, 7).unwrap();
        let idx = LshIndex::build(&data, LshParams::default());
        // the query IS a data point: it hashes to the same buckets in every table
        let hits = idx.search(&data, data.vector(42), 1);
        assert_eq!(hits[0].id, 42);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn more_tables_improve_recall() {
        // recall@1: the angularly-close perturbed source point must collide
        // in at least one of the tables; more tables raise that probability.
        let data = VectorSet::uniform(3000, 16, 1).unwrap();
        let queries = data.queries_near(30, 0.02, 2);
        let few = LshIndex::build(&data, LshParams { bits: 14, tables: 1, seed: 5 });
        let many = LshIndex::build(&data, LshParams { bits: 14, tables: 16, seed: 5 });
        let r_few = evaluate_index(&few, &data, &queries, 1);
        let r_many = evaluate_index(&many, &data, &queries, 1);
        assert!(r_many >= r_few, "{r_many} vs {r_few}");
        assert!(r_many > 0.8, "16-table recall@1 too low: {r_many}");
    }

    #[test]
    fn candidate_set_is_a_fraction_of_data() {
        let data = VectorSet::uniform(5000, 16, 3).unwrap();
        let idx = LshIndex::build(&data, LshParams { bits: 14, tables: 4, seed: 0 });
        let (_, stats) = idx.search_with_stats(&data, data.vector(0), 5);
        assert!(stats.distance_evals < 2500, "evaluated {}", stats.distance_evals);
    }

    #[test]
    fn collision_probability_monotone() {
        let data = VectorSet::uniform(10, 4, 0).unwrap();
        let idx = LshIndex::build(&data, LshParams { bits: 8, tables: 1, seed: 0 });
        let close = idx.collision_probability(0.1);
        let far = idx.collision_probability(1.5);
        assert!(close > far);
        assert!((idx.collision_probability(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bits_clamped_to_32() {
        let data = VectorSet::uniform(10, 4, 0).unwrap();
        let idx = LshIndex::build(&data, LshParams { bits: 64, tables: 1, seed: 0 });
        assert_eq!(idx.params.bits, 32);
    }
}
