//! Learned adaptive early termination for graph search (Li et al. \[34\]).
//!
//! The paper's "learning-augmented algorithms … make smart pruning decisions"
//! claim (experiment E2). A fixed `ef` wastes work on easy queries and
//! under-serves hard ones. Following the SIGMOD 2020 design, we learn a
//! per-query *expansion budget* from a cheap difficulty feature — the
//! distance from the query to its layer-0 entry point — and terminate the
//! beam search once the budget is exhausted:
//!
//! 1. On training queries, run an un-truncated search and record the number
//!    of expansions after which the final top-k had been reached.
//! 2. Fit `needed ≈ a + b · d_entry` by least squares.
//! 3. Inflate the prediction by the residual quantile matching the target
//!    recall, so the budget covers that fraction of training queries.

use crate::exact::ExactIndex;
use crate::hnsw::HnswIndex;
use crate::{Neighbor, SearchStats, VectorIndex, VectorSet};
use crate::metrics::squared_euclidean;

/// A learned termination model wrapping an HNSW index.
#[derive(Debug, Clone)]
pub struct LearnedTermination {
    /// Linear model intercept.
    pub intercept: f64,
    /// Linear model slope on the entry-distance feature.
    pub slope: f64,
    /// Additive margin (residual quantile at the target recall).
    pub margin: f64,
    /// Target recall the model was calibrated for.
    pub target_recall: f64,
    /// Hard floor on the budget.
    pub min_budget: usize,
}

impl LearnedTermination {
    /// Train on `n_train` workload-like queries for top-`k` (queries are
    /// perturbed dataset points; use [`LearnedTermination::train_on_queries`]
    /// to train on a custom query distribution).
    pub fn train(
        index: &HnswIndex,
        data: &VectorSet,
        k: usize,
        n_train: usize,
        target_recall: f64,
        seed: u64,
    ) -> Self {
        let queries = data.queries_near(n_train.max(8), 0.05, seed);
        Self::train_on_queries(index, data, &queries, k, target_recall)
    }

    /// Train on an explicit set of training queries.
    pub fn train_on_queries(
        index: &HnswIndex,
        data: &VectorSet,
        queries: &[Vec<f32>],
        k: usize,
        target_recall: f64,
    ) -> Self {
        let exact = ExactIndex::build(data);
        let big_ef = (k * 16).max(128);
        let mut xs: Vec<f64> = Vec::with_capacity(queries.len());
        let mut ys: Vec<f64> = Vec::with_capacity(queries.len());
        for q in queries {
            let truth: std::collections::HashSet<usize> =
                exact.search(data, q, k).iter().map(|n| n.id).collect();
            let ep = index.layer0_entry(data, q);
            let d_entry = f64::from(squared_euclidean(q, data.vector(ep)).sqrt());
            // Run an un-truncated search once to learn the total expansion
            // count, then binary-search for the smallest budget that still
            // recovers the full true top-k.
            let mut total_expansions = 0usize;
            let _ = index.search_layer_with_policy(
                data,
                q,
                ep,
                big_ef,
                0,
                &mut SearchStats::default(),
                |state| {
                    total_expansions = state.expansions;
                    false
                },
            );
            let mut lo = 1usize;
            let mut hi = total_expansions.max(1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let hits = index.search_layer_with_policy(
                    data,
                    q,
                    ep,
                    big_ef,
                    0,
                    &mut SearchStats::default(),
                    |s| s.expansions >= mid,
                );
                let ids: std::collections::HashSet<usize> =
                    hits.iter().take(k).map(|n| n.id).collect();
                if truth.is_subset(&ids) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let needed = lo;
            xs.push(d_entry);
            ys.push(needed as f64);
        }
        // Least-squares fit.
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let var: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
        let slope = if var > 1e-12 { cov / var } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        // Residual quantile at the target recall.
        let mut residuals: Vec<f64> =
            xs.iter().zip(&ys).map(|(x, y)| y - (intercept + slope * x)).collect();
        residuals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q_idx = ((residuals.len() as f64 - 1.0) * target_recall).round() as usize;
        let margin = residuals[q_idx.min(residuals.len() - 1)].max(0.0);
        Self { intercept, slope, margin, target_recall, min_budget: k.max(4) }
    }

    /// Predicted expansion budget for a query with entry distance `d_entry`.
    pub fn budget(&self, d_entry: f64) -> usize {
        let raw = self.intercept + self.slope * d_entry + self.margin;
        raw.ceil().max(self.min_budget as f64) as usize
    }

    /// Search with the learned budget.
    pub fn search_with_stats(
        &self,
        index: &HnswIndex,
        data: &VectorSet,
        query: &[f32],
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let ep = index.layer0_entry(data, query);
        let d_entry = f64::from(squared_euclidean(query, data.vector(ep)).sqrt());
        let budget = self.budget(d_entry);
        let big_ef = (k * 16).max(128);
        let mut stats = SearchStats::default();
        let mut hits = index.search_layer_with_policy(data, query, ep, big_ef, 0, &mut stats, |s| {
            s.expansions >= budget
        });
        hits.truncate(k);
        (hits, stats)
    }
}

/// The second learned policy of the adaptive-termination family: stop after
/// a calibrated streak of non-improving expansions ("patience"). Easy
/// queries stabilize quickly and stop early; hard queries keep improving and
/// automatically receive more budget — no per-query feature needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagnationPolicy {
    /// Stop once this many consecutive expansions fail to improve the
    /// result set.
    pub patience: usize,
}

impl StagnationPolicy {
    /// Calibrate the patience on training queries: for each query, find the
    /// smallest patience that still recovers the true top-`k`, then take the
    /// `target_recall` quantile across queries.
    pub fn train_on_queries(
        index: &HnswIndex,
        data: &VectorSet,
        queries: &[Vec<f32>],
        k: usize,
        target_recall: f64,
    ) -> Self {
        let big_ef = (k * 16).max(128);
        let mut required: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            // calibrate against the best answer the *graph* can reach at the
            // reference beam width (not exact truth — unreachable points
            // would pin every hard query at the cap)
            let truth: std::collections::HashSet<usize> = index
                .search_with_stats(data, q, k, big_ef)
                .0
                .iter()
                .map(|n| n.id)
                .collect();
            let ep = index.layer0_entry(data, q);
            // binary search over patience
            let mut lo = 1usize;
            let mut hi = 64usize;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let hits = index.search_layer_with_policy(
                    data,
                    q,
                    ep,
                    big_ef,
                    0,
                    &mut SearchStats::default(),
                    |s| s.since_improvement >= mid,
                );
                let ids: std::collections::HashSet<usize> =
                    hits.iter().take(k).map(|n| n.id).collect();
                if truth.is_subset(&ids) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            required.push(lo);
        }
        required.sort_unstable();
        let q_idx = ((required.len() as f64 - 1.0) * target_recall).round() as usize;
        Self { patience: required[q_idx.min(required.len().saturating_sub(1))].max(1) }
    }

    /// Search with the stagnation policy.
    pub fn search_with_stats(
        &self,
        index: &HnswIndex,
        data: &VectorSet,
        query: &[f32],
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let ep = index.layer0_entry(data, query);
        let big_ef = (k * 16).max(128);
        let mut stats = SearchStats::default();
        let mut hits = index.search_layer_with_policy(data, query, ep, big_ef, 0, &mut stats, |s| {
            s.since_improvement >= self.patience
        });
        hits.truncate(k);
        (hits, stats)
    }
}

/// An HNSW index paired with a learned termination model, exposed through
/// the common [`VectorIndex`] trait for the experiment sweeps.
#[derive(Debug, Clone)]
pub struct LearnedHnsw {
    /// The underlying graph.
    pub index: HnswIndex,
    /// The trained termination model.
    pub model: LearnedTermination,
}

impl LearnedHnsw {
    /// Build the graph and train the termination model.
    pub fn build(
        data: &VectorSet,
        params: crate::hnsw::HnswParams,
        k: usize,
        n_train: usize,
        target_recall: f64,
    ) -> Self {
        let index = HnswIndex::build(data, params);
        let model = LearnedTermination::train(&index, data, k, n_train, target_recall, params.seed ^ 0xabcd);
        Self { index, model }
    }
}

impl VectorIndex for LearnedHnsw {
    fn search(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.model.search_with_stats(&self.index, data, query, k).0
    }

    fn name(&self) -> &'static str {
        "hnsw-learned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{ground_truth, recall_at_k};
    use crate::hnsw::HnswParams;

    fn data() -> VectorSet {
        VectorSet::gaussian_clusters(2000, 16, 10, 0.1, 3).unwrap().0
    }

    #[test]
    fn model_hits_target_recall_on_holdout() {
        let data = data();
        let learned = LearnedHnsw::build(&data, HnswParams { seed: 2, ..Default::default() }, 10, 60, 0.9);
        let queries = data.queries_near(40, 0.05, 777);
        let truth = ground_truth(&data, &queries, 10);
        let results: Vec<Vec<Neighbor>> =
            queries.iter().map(|q| learned.search(&data, q, 10)).collect();
        let r = recall_at_k(&truth, &results, 10);
        assert!(r > 0.75, "holdout recall {r}");
    }

    #[test]
    fn learned_termination_saves_work_vs_fixed_large_ef() {
        let data = data();
        let learned =
            LearnedHnsw::build(&data, HnswParams { seed: 2, ..Default::default() }, 10, 60, 0.9);
        let queries = data.queries_near(20, 0.05, 11);
        let (mut fixed_cost, mut learned_cost) = (0usize, 0usize);
        for q in &queries {
            let (_, s_fixed) = learned.index.search_with_stats(&data, q, 10, 160);
            fixed_cost += s_fixed.distance_evals;
            let (_, s_learned) = learned.model.search_with_stats(&learned.index, &data, q, 10);
            learned_cost += s_learned.distance_evals;
        }
        assert!(
            learned_cost < fixed_cost,
            "learned {learned_cost} should beat fixed-ef {fixed_cost}"
        );
    }

    #[test]
    fn budget_respects_floor_and_margin() {
        let m = LearnedTermination {
            intercept: 2.0,
            slope: 1.0,
            margin: 3.0,
            target_recall: 0.9,
            min_budget: 10,
        };
        assert_eq!(m.budget(0.0), 10); // floor
        assert_eq!(m.budget(100.0), 105);
    }

    #[test]
    fn stagnation_policy_recovers_target_recall() {
        let data = data();
        let idx = HnswIndex::build(&data, HnswParams { seed: 4, ..Default::default() });
        let train = data.queries_near(50, 0.05, 31);
        let policy = StagnationPolicy::train_on_queries(&idx, &data, &train, 10, 0.9);
        assert!(policy.patience >= 1);
        let holdout = data.queries_near(30, 0.05, 32);
        let truth = ground_truth(&data, &holdout, 10);
        let results: Vec<Vec<Neighbor>> = holdout
            .iter()
            .map(|q| policy.search_with_stats(&idx, &data, q, 10).0)
            .collect();
        let r = recall_at_k(&truth, &results, 10);
        assert!(r > 0.75, "stagnation holdout recall {r}");
    }

    #[test]
    fn higher_target_never_lowers_patience() {
        let data = data();
        let idx = HnswIndex::build(&data, HnswParams { seed: 4, ..Default::default() });
        let train = data.queries_near(40, 0.05, 33);
        let p80 = StagnationPolicy::train_on_queries(&idx, &data, &train, 10, 0.8);
        let p99 = StagnationPolicy::train_on_queries(&idx, &data, &train, 10, 0.99);
        assert!(p99.patience >= p80.patience);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = data();
        let idx = HnswIndex::build(&data, HnswParams { seed: 5, ..Default::default() });
        let a = LearnedTermination::train(&idx, &data, 5, 30, 0.9, 9);
        let b = LearnedTermination::train(&idx, &data, 5, 30, 0.9, 9);
        assert_eq!(a.intercept, b.intercept);
        assert_eq!(a.slope, b.slope);
        assert_eq!(a.margin, b.margin);
    }
}
