//! **E9** — end-to-end interactive latency: per-layer time breakdown of each
//! Figure-1 turn type through the full pipeline.
//!
//! Expected shape: every turn completes in interactive time (well under
//! 100 ms at demo scale); the NL2SQL turn is dominated by the soundness
//! layer (k UQ samples each executing a candidate query), which is exactly
//! the efficiency/soundness trade-off Figure 2 draws (P1 → enables → P4).

use cda_bench::{header, row, us};
use cda_core::demo::{demo_session, FIGURE1_TURNS};
use std::time::Duration;

fn main() {
    header("E9", "per-layer latency of one conversation turn (mean of 20 runs)");
    let turns: Vec<(&str, &str)> = vec![
        ("discovery", FIGURE1_TURNS[0]),
        ("description", FIGURE1_TURNS[1]),
        ("selection", FIGURE1_TURNS[2]),
        ("seasonality", FIGURE1_TURNS[3]),
        ("nl2sql", "What is the total employees in employment_by_type per canton?"),
    ];
    row(&[
        "turn".into(),
        "nl model".into(),
        "infra".into(),
        "soundness".into(),
        "explain".into(),
        "guidance".into(),
        "total (measured)".into(),
    ]);
    const RUNS: usize = 20;
    for (label, _) in &turns {
        let mut sums = [Duration::ZERO; 6];
        for run in 0..RUNS {
            // fresh system per run; replay prior turns to reach this state
            let mut cda = demo_session(run as u64);
            for (prior_label, prior_text) in &turns {
                let a = cda.process(prior_text);
                if prior_label == label {
                    sums[0] += a.timings.nl_model;
                    sums[1] += a.timings.infrastructure;
                    sums[2] += a.timings.soundness;
                    sums[3] += a.timings.explainability;
                    sums[4] += a.timings.guidance;
                    sums[5] += a.timings.total();
                    break;
                }
            }
        }
        row(&[
            (*label).into(),
            us(sums[0] / RUNS as u32),
            us(sums[1] / RUNS as u32),
            us(sums[2] / RUNS as u32),
            us(sums[3] / RUNS as u32),
            us(sums[4] / RUNS as u32),
            us(sums[5] / RUNS as u32),
        ]);
    }

    println!("\nsoundness cost scales with UQ sample count k (nl2sql turn):");
    row(&["k".into(), "soundness time".into()]);
    for k in [1usize, 3, 7, 15] {
        let mut total = Duration::ZERO;
        for run in 0..RUNS {
            let mut cda = demo_session(run as u64);
            cda.config.uq_samples = k;
            let a = cda.process("What is the total employees in employment_by_type per canton?");
            total += a.timings.soundness;
        }
        row(&[format!("{k}"), us(total / RUNS as u32)]);
    }
}
