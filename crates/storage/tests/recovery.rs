//! Crash-recovery certification for [`FileBackend`] (CI gate, experiment
//! E20's fault half).
//!
//! The commit protocol claims: after a crash at *any* point during a batch
//! of writes and its commit, reopening the file yields **exactly** the
//! pre-commit state or **exactly** the post-commit state — never a torn
//! mixture, never corruption. This suite makes the claim empirical:
//!
//! * The *sweep* tests first run a mutation batch fault-free to count the
//!   physical page writes it performs (the buffer pool flushes dirty pages
//!   in ascending page order, so the write sequence is deterministic), then
//!   replay the batch on a fresh copy of the base image with an injected
//!   fault at every write boundary `k = 0..=total`, with and without torn
//!   partial writes. Every recovered state must equal one of the two legal
//!   states, and a batch whose commit *reported* success must recover to
//!   the post state.
//! * The property test drives the same invariant with generated batches
//!   (random keys, value sizes spanning multi-page blobs, removes and
//!   overwrites) and generated fault positions.

use cda_storage::{FaultPlan, FileBackend, StorageBackend, StoreId, PAGE_SIZE};
use cda_testkit::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cda-storage-recovery-{}-{name}.db", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Everything observable about a backend: per-store contents + epoch.
type State = (Vec<Vec<(Vec<u8>, Vec<u8>)>>, Option<u64>);

fn observe(b: &FileBackend) -> State {
    let stores = StoreId::ALL.iter().map(|&s| b.scan(s).unwrap()).collect();
    (stores, b.committed_epoch().unwrap())
}

/// One mutation in a batch.
#[derive(Debug, Clone)]
enum Op {
    Put(StoreId, Vec<u8>, Vec<u8>),
    Remove(StoreId, Vec<u8>),
}

fn apply(b: &FileBackend, ops: &[Op]) -> Result<(), cda_storage::StorageError> {
    for op in ops {
        match op {
            Op::Put(s, k, v) => b.put(*s, k, v)?,
            Op::Remove(s, k) => {
                b.remove(*s, k)?;
            }
        }
    }
    Ok(())
}

/// Build the base image at `path`: a few committed entries in every store,
/// including one multi-page blob. Returns its observed state.
fn build_base(path: &PathBuf) -> State {
    let b = FileBackend::open(path).unwrap();
    for (i, &s) in StoreId::ALL.iter().enumerate() {
        b.put(s, format!("base-{i}").as_bytes(), &[i as u8; 64]).unwrap();
    }
    b.put(StoreId::Datasets, b"big", &vec![0x5A; 3 * PAGE_SIZE]).unwrap();
    b.commit(1).unwrap();
    observe(&b)
}

/// The mutation batch under test: overwrites (page churn through the free
/// list), fresh keys, a remove, and a new multi-page blob.
fn batch() -> Vec<Op> {
    vec![
        Op::Put(StoreId::Datasets, b"big".to_vec(), vec![0xA5; 2 * PAGE_SIZE]),
        Op::Put(StoreId::SemanticCache, b"fp-1".to_vec(), vec![7; 900]),
        Op::Put(StoreId::KgTriples, b"base-1".to_vec(), vec![9; 5000]),
        Op::Remove(StoreId::Meta, b"base-3".to_vec()),
        Op::Put(StoreId::Meta, b"clock".to_vec(), 42u64.to_be_bytes().to_vec()),
    ]
}

/// Run `ops` + `commit(epoch)` fault-free on a copy of `base` and return
/// the legal post state plus the number of physical writes the batch took.
fn post_state(base: &PathBuf, ops: &[Op], epoch: u64, tag: &str) -> (State, u64) {
    let path = tmp(tag);
    std::fs::copy(base, &path).unwrap();
    let b = FileBackend::open(&path).unwrap();
    let before = b.writes_done();
    apply(&b, ops).unwrap();
    b.commit(epoch).unwrap();
    let writes = b.writes_done() - before;
    let st = observe(&b);
    drop(b);
    let _ = std::fs::remove_file(&path);
    (st, writes)
}

/// The core invariant: fault at write boundary `k`, reopen, and the state
/// is exactly `pre` or exactly `post` (post mandatory if commit said Ok).
fn check_fault_at(
    base: &PathBuf,
    ops: &[Op],
    epoch: u64,
    fault: FaultPlan,
    pre: &State,
    post: &State,
    tag: &str,
) {
    let (k, torn) = (fault.fail_after_writes, fault.torn_bytes);
    let path = tmp(tag);
    std::fs::copy(base, &path).unwrap();
    let b = FileBackend::open(&path).unwrap();
    b.set_fault_plan(Some(fault));
    let committed = apply(&b, ops).and_then(|()| b.commit(epoch)).is_ok();
    drop(b);

    let b = FileBackend::open(&path).unwrap();
    let recovered = observe(&b);
    if committed {
        assert_eq!(
            &recovered, post,
            "fault at write {k} (torn {torn}): commit reported success but \
             recovery lost it"
        );
    } else {
        assert!(
            &recovered == pre || &recovered == post,
            "fault at write {k} (torn {torn}): recovered a torn state \
             (epoch {:?}, {} keys visible in Datasets)",
            recovered.1,
            recovered.0[0].len()
        );
    }
    // The recovered backend must be fully writable again.
    b.put(StoreId::Meta, b"probe", b"ok").unwrap();
    b.commit(epoch + 1).unwrap();
    drop(b);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_sweep_every_write_boundary_recovers_pre_or_post() {
    let base = tmp("sweep-base");
    let pre = build_base(&base);
    let ops = batch();
    let (post, writes) = post_state(&base, &ops, 2, "sweep-post");
    assert!(writes >= 5, "batch too small to exercise the protocol: {writes} writes");
    for k in 0..=writes {
        let fault = FaultPlan { fail_after_writes: k, torn_bytes: 0 };
        check_fault_at(&base, &ops, 2, fault, &pre, &post, "sweep-case");
    }
    let _ = std::fs::remove_file(&base);
}

#[test]
fn fault_sweep_with_torn_partial_writes_recovers_pre_or_post() {
    let base = tmp("torn-base");
    let pre = build_base(&base);
    let ops = batch();
    let (post, writes) = post_state(&base, &ops, 2, "torn-post");
    for torn in [1, 100, PAGE_SIZE / 2, PAGE_SIZE - 1] {
        for k in 0..=writes {
            let fault = FaultPlan { fail_after_writes: k, torn_bytes: torn };
            check_fault_at(&base, &ops, 2, fault, &pre, &post, "torn-case");
        }
    }
    let _ = std::fs::remove_file(&base);
}

#[test]
fn repeated_crashes_across_generations_never_tear() {
    // Crash during commit N, recover, commit N fault-free, crash during
    // commit N+1 … — recovery must be re-entrant, not single-shot.
    let path = tmp("generations");
    let b = FileBackend::open(&path).unwrap();
    b.put(StoreId::Datasets, b"k", &[0u8; 100]).unwrap();
    b.commit(1).unwrap();
    drop(b);
    for gen in 2u64..8 {
        let b = FileBackend::open(&path).unwrap();
        let pre = observe(&b);
        b.set_fault_plan(Some(FaultPlan {
            fail_after_writes: gen % 4, // vary the crash point per generation
            torn_bytes: (gen as usize * 97) % PAGE_SIZE,
        }));
        let value = vec![gen as u8; 600 * gen as usize];
        let crashed = b
            .put(StoreId::Datasets, b"k", &value)
            .and_then(|()| b.commit(gen))
            .is_err();
        drop(b);
        let b = FileBackend::open(&path).unwrap();
        let recovered = observe(&b);
        if crashed {
            assert!(recovered == pre || recovered.1 == Some(gen), "generation {gen} tore");
        }
        // Fault-free retry always lands the generation.
        b.put(StoreId::Datasets, b"k", &value).unwrap();
        b.commit(gen).unwrap();
        assert_eq!(b.committed_epoch().unwrap(), Some(gen));
        drop(b);
    }
    let _ = std::fs::remove_file(&path);
}

/// Generated batch: 1–6 ops over random stores/keys, value sizes crossing
/// the one-page and multi-page thresholds.
fn op_strategy() -> Gen<Op> {
    Gen::from_fn(|tc| {
        let store = StoreId::ALL[tc.choice(3)? as usize];
        let key = format!("k{}", tc.choice(4)?).into_bytes();
        if tc.choice(4)? == 0 {
            Ok(Op::Remove(store, key))
        } else {
            let size = match tc.choice(2)? {
                0 => 1 + tc.choice(200)? as usize,
                _ => 3000 + tc.choice(2 * PAGE_SIZE as u64)? as usize,
            };
            let fill = tc.choice(255)? as u8;
            Ok(Op::Put(store, key, vec![fill; size]))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batches, random fault positions: recovery is still all-or-
    /// nothing. `fault_frac` picks the crash point as a fraction of the
    /// batch's own (measured) write count so every region of the protocol
    /// gets hit regardless of batch size.
    #[test]
    fn generated_batches_recover_pre_or_post(
        ops in collection::vec(op_strategy(), 1..6),
        fault_frac in 0u64..100,
        torn in 0usize..256,
    ) {
        let base = tmp(&format!("prop-base-{fault_frac}-{torn}"));
        let pre = build_base(&base);
        let (post, writes) = post_state(&base, &ops, 2, &format!("prop-post-{fault_frac}-{torn}"));
        let fault = FaultPlan { fail_after_writes: fault_frac * writes / 100, torn_bytes: torn };
        check_fault_at(&base, &ops, 2, fault, &pre, &post,
                       &format!("prop-case-{fault_frac}-{torn}"));
        let _ = std::fs::remove_file(&base);
    }
}
