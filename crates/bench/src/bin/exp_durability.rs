//! **E20** — durable world storage: cold-restart answer reuse, epoch
//! invalidation, and crash-recovery under injected faults.
//!
//! Full mode drives 16 sessions x 40 turns through a file-backed world,
//! restarts it, and sweeps a fault through every page-write boundary of a
//! commit; `CDA_BENCH_FAST=1` scales down for CI. Gates:
//!
//! * **restart reuse**: after a cold restart (every handle dropped, the
//!   world rebuilt from the file alone) the durable semantic cache serves
//!   previously verified answers — hit rate > 0 and **0 mismatches**
//!   against a fresh in-memory replay of the same scripts (cache
//!   provenance notes stripped, since only they may differ).
//! * **epoch invalidation**: a `successor()` rebuild drops every stored
//!   record (the backend's cache store is empty right after the bump) and
//!   the post-bump replay again matches a fresh in-memory replay — i.e.
//!   **0 stale hits** can have been served.
//! * **crash recovery**: with a fault injected at every write boundary of
//!   a mutation batch + commit (fast mode strides the sweep), reopening
//!   the file always recovers exactly the pre-commit or post-commit state
//!   — **0 torn recoveries**.
//! * **buffer pool**: the pool's hit rate over the run is reported.

use cda_bench::{f, header, row, timed, us};
use cda_core::demo::{demo_catalog, demo_kg, demo_linker, demo_vocabulary};
use cda_core::storage::{FaultPlan, FileBackend, StorageBackend, StoreId, PAGE_SIZE};
use cda_core::{CdaConfig, Session, WorldSnapshot};
use cda_nlmodel::lm::SimLmConfig;
use cda_server::loadgen::{session_scripts, LoadSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cda-e20-{}-{name}.db", std::process::id()));
    p
}

fn durable_world(path: &Path, seed: u64) -> Arc<WorldSnapshot> {
    let backend = Arc::new(FileBackend::open(path).expect("open backend"));
    WorldSnapshot::builder()
        .catalog(demo_catalog(seed))
        .kg(demo_kg())
        .vocab(demo_vocabulary())
        .linker(demo_linker())
        .lm(SimLmConfig { hallucination_rate: 0.15, overconfidence: 0.8, seed })
        .with_storage(backend)
        .open_shared()
        .expect("open world")
}

/// Cache provenance notes are the one legal difference between a served
/// and an executed answer's rendering; strip them before comparing.
fn strip_cache_notes(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| !l.contains("reused") && !l.contains("[cache]"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Replay every script serially (seed = index + 1), durable or in-memory,
/// returning stripped transcripts and summed cache counters.
fn replay(
    world: &Arc<WorldSnapshot>,
    scripts: &[Vec<String>],
    durable: bool,
) -> (Vec<String>, usize, usize) {
    let mut transcripts = Vec::with_capacity(scripts.len());
    let (mut hits, mut misses) = (0usize, 0usize);
    for (i, script) in scripts.iter().enumerate() {
        let seed = i as u64 + 1;
        let mut s = if durable {
            Session::open_durable_seeded(Arc::clone(world), CdaConfig::default(), seed)
                .expect("durable session")
        } else {
            Session::open_seeded(Arc::clone(world), CdaConfig::default(), seed)
        };
        let mut t = String::new();
        for turn in script {
            t.push_str(&strip_cache_notes(&s.process(turn).render()));
            t.push('\n');
        }
        let st = s.stats();
        hits += st.cache.hits;
        misses += st.cache.misses;
        transcripts.push(t);
    }
    (transcripts, hits, misses)
}

/// Fault sweep over one mutation batch + commit: returns (boundaries
/// tested, torn recoveries). A torn recovery is any reopened state that is
/// neither the pre-commit nor the post-commit state.
/// Full observable state of a backend: every store's scan + the epoch.
type Observed = (Vec<Vec<(Vec<u8>, Vec<u8>)>>, Option<u64>);

fn fault_sweep(stride: u64) -> (u64, u64) {
    let observe = |b: &FileBackend| -> Observed {
        let stores =
            StoreId::ALL.iter().map(|&s| b.scan(s).expect("scan")).collect();
        (stores, b.committed_epoch().expect("epoch"))
    };
    let batch = |b: &FileBackend| -> Result<(), cda_core::storage::StorageError> {
        b.put(StoreId::Datasets, b"big", &vec![0xA5; 2 * PAGE_SIZE])?;
        b.put(StoreId::SemanticCache, b"fp", &vec![7; 900])?;
        b.remove(StoreId::Meta, b"gone")?;
        b.commit(2)
    };

    let base = tmp("sweep-base");
    let _ = std::fs::remove_file(&base);
    {
        let b = FileBackend::open(&base).expect("open base");
        b.put(StoreId::Datasets, b"big", &vec![0x5A; 3 * PAGE_SIZE]).expect("seed");
        b.put(StoreId::Meta, b"gone", b"x").expect("seed");
        b.commit(1).expect("seed commit");
    }
    let pre = {
        let b = FileBackend::open(&base).expect("reopen base");
        observe(&b)
    };
    // Fault-free run measures the batch's physical write count and the
    // legal post state.
    let post_path = tmp("sweep-post");
    std::fs::copy(&base, &post_path).expect("copy");
    let (post, writes) = {
        let b = FileBackend::open(&post_path).expect("open post");
        let before = b.writes_done();
        batch(&b).expect("fault-free batch");
        (observe(&b), b.writes_done() - before)
    };
    let _ = std::fs::remove_file(&post_path);

    let (mut tested, mut torn) = (0u64, 0u64);
    let mut k = 0u64;
    while k <= writes {
        let case = tmp("sweep-case");
        std::fs::copy(&base, &case).expect("copy");
        {
            let b = FileBackend::open(&case).expect("open case");
            b.set_fault_plan(Some(FaultPlan {
                fail_after_writes: k,
                torn_bytes: (k as usize * 97) % PAGE_SIZE,
            }));
            let _ = batch(&b);
        }
        let b = FileBackend::open(&case).expect("recover");
        let rec = observe(&b);
        if rec != pre && rec != post {
            torn += 1;
        }
        tested += 1;
        drop(b);
        let _ = std::fs::remove_file(&case);
        k += stride;
    }
    let _ = std::fs::remove_file(&base);
    (tested, torn)
}

fn main() {
    let fast = std::env::var("CDA_BENCH_FAST").is_ok();
    let (sessions, turns_per_session, stride) = if fast { (4, 10, 4) } else { (16, 40, 1) };
    header("E20", "durable world storage: restart reuse, epoch invalidation, crash recovery");
    println!("sessions {sessions}  turns/session {turns_per_session}  fault stride {stride}");

    let path = tmp("world");
    let _ = std::fs::remove_file(&path);

    // ---- cold-restart reuse ---------------------------------------------
    let world = durable_world(&path, 42);
    let spec = LoadSpec { sessions, turns_per_session, seed: 0xE20 };
    let scripts = session_scripts(&world, spec);
    let ((_, h1, m1), t_cold) = timed(|| replay(&world, &scripts, true));
    drop(world);

    let world = durable_world(&path, 42); // the restart: file is all that survives
    let ((fresh, _, _), t_fresh) = timed(|| replay(&world, &scripts, false));
    let ((served, h2, m2), t_warm) = timed(|| replay(&world, &scripts, true));
    let restart_mismatches =
        fresh.iter().zip(&served).filter(|(a, b)| a != b).count();
    let backend = Arc::clone(world.storage().expect("storage attached"));
    let stats = backend.stats();
    let total = (h2 + m2).max(1);
    let restart_hit_rate = h2 as f64 / total as f64;

    row(&["run".into(), "wall".into(), "hits".into(), "misses".into(), "mismatches".into()]);
    row(&["cold (executes)".into(), us(t_cold), h1.to_string(), m1.to_string(), "-".into()]);
    row(&["fresh replay (oracle)".into(), us(t_fresh), "-".into(), "-".into(), "-".into()]);
    row(&[
        "restart (serves)".into(),
        us(t_warm),
        h2.to_string(),
        m2.to_string(),
        restart_mismatches.to_string(),
    ]);
    println!(
        "storage: {} pages ({} free)  {} commits  pool hit rate {}  restart cache hit rate {}",
        stats.pages,
        stats.free_pages,
        stats.commits,
        f(stats.pool.hit_rate()),
        f(restart_hit_rate)
    );

    // ---- epoch invalidation ---------------------------------------------
    let entries_before = backend.len(StoreId::SemanticCache).expect("len");
    let bumped = world.successor().catalog(demo_catalog(43)).open_shared().expect("bump");
    let entries_after = backend.len(StoreId::SemanticCache).expect("len");
    let (fresh_bumped, _, _) = replay(&bumped, &scripts, false);
    let (served_bumped, h3, m3) = replay(&bumped, &scripts, true);
    let stale_mismatches =
        fresh_bumped.iter().zip(&served_bumped).filter(|(a, b)| a != b).count();
    println!(
        "\nepoch bump: {} records dropped ({entries_before} -> {entries_after})  \
         post-bump hits {h3}  misses {m3}  mismatches vs fresh {stale_mismatches}",
        bumped.stale_cache_dropped()
    );

    // ---- crash recovery -------------------------------------------------
    let ((boundaries, torn), t_sweep) = timed(|| fault_sweep(stride));
    println!(
        "\nfault sweep: {boundaries} write boundaries in {}  torn recoveries {torn}",
        us(t_sweep)
    );

    // ---- gates ----------------------------------------------------------
    let restart_ok = h2 > 0 && restart_mismatches == 0;
    let epoch_ok = entries_after == 0
        && bumped.stale_cache_dropped() == entries_before
        && stale_mismatches == 0;
    let recovery_ok = torn == 0 && boundaries > 0;
    println!(
        "\nacceptance: restart hit rate {} > 0 with {restart_mismatches} mismatches (ok: \
         {restart_ok})  epoch bump dropped {}/{entries_before} with {stale_mismatches} \
         mismatches (ok: {epoch_ok})  {torn} torn recoveries over {boundaries} boundaries \
         (ok: {recovery_ok})  pool hit rate {}",
        f(restart_hit_rate),
        bumped.stale_cache_dropped(),
        f(stats.pool.hit_rate())
    );
    let _ = std::fs::remove_file(&path);
    if !restart_ok || !epoch_ok || !recovery_ok {
        std::process::exit(1);
    }
}
