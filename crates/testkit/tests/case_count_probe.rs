//! Guard: the `proptest!` macro really executes the configured number of
//! generated cases (no silent zero-case pass).

use cda_testkit::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static COUNT: AtomicU32 = AtomicU32::new(0);

// No #[test] attribute here: invoked exactly once by the probe below.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    fn counted(t in (collection::vec("[a-c]", 3..=3), -50i64..50)) {
        COUNT.fetch_add(1, Ordering::SeqCst);
        prop_assert!(t.0.len() == 3);
        prop_assert!((-50..50).contains(&t.1));
    }
}

#[test]
fn proptest_macro_runs_exactly_the_configured_cases() {
    counted();
    assert_eq!(COUNT.load(Ordering::SeqCst), 64, "exactly 64 cases executed");
}
