//! # cda-dataframe
//!
//! A compact, dependency-free, in-memory **columnar table engine** that acts
//! as the storage and compute substrate of the CDA reproduction
//! (layer ⓑ, *Computational Infrastructure*, of Figure 1-right in the paper).
//!
//! The engine provides:
//!
//! * typed columnar storage ([`Column`]) over the scalar [`Value`] model,
//! * schemas with named, typed, nullable fields ([`Schema`], [`Field`]),
//! * immutable [`Table`]s with cheap row addressing and per-row
//!   **provenance identifiers** ([`RowId`]) that the SQL layer threads through
//!   every operator — the hook on which property **P3 Explainability** hangs,
//! * CSV ingestion with type inference ([`csv`]),
//! * vectorized compute kernels (filter / take / sort / group) in
//!   [`kernels`],
//! * a columnar batch layer ([`batch`]: typed [`batch::Vector`]s, borrowed
//!   [`batch::Slot`] views, and zero-copy [`batch::ColumnWindow`]s) powering
//!   the SQL layer's morsel-parallel vectorized engine (DESIGN.md §12),
//! * per-column statistics ([`stats`]) consumed by the SQL optimizer, and
//! * abstract value domains with runtime domain-check kernels ([`domain`]):
//!   the data carrier of the analyzer's abstract interpreter and the
//!   sanitizer mode that cross-checks it (DESIGN.md §13).
//!
//! The crate is deliberately self-contained: the paper's P3 property demands
//! that *every* answer be traceable to source rows, which requires owning the
//! full storage/compute path rather than delegating to an opaque DBMS.
//!
//! ## Example
//!
//! ```
//! use cda_dataframe::{Table, Schema, Field, DataType, Column, Value};
//!
//! let schema = Schema::new(vec![
//!     Field::new("canton", DataType::Str),
//!     Field::new("employed", DataType::Int),
//! ]);
//! let table = Table::from_columns(
//!     schema,
//!     vec![
//!         Column::from_strs(&["ZH", "GE", "VD"]),
//!         Column::from_ints(&[1_000_000, 280_000, 420_000]),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(table.num_rows(), 3);
//! assert_eq!(table.value(1, 0).unwrap(), Value::from("GE"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod column;
pub mod csv;
pub mod domain;
pub mod error;
pub mod kernels;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use batch::{Batch, Slot, Vector};
pub use column::Column;
pub use domain::{ColDomain, DomainTree, DomainViolation, Interval, NodeDomain, Nullness, StrDomain};
pub use error::DataFrameError;
pub use schema::{Field, Schema};
pub use stats::ColumnStats;
pub use table::{RowId, Table};
pub use value::{DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataFrameError>;
