//! **E17** — the vectorized morsel-parallel engine vs the row-at-a-time
//! reference: throughput and byte-identity on the 8k-row benchmark
//! catalog.
//!
//! Two measurements:
//!
//! 1. **Differential certification** — a mixed corpus (filters,
//!    arithmetic, grouped aggregates, hash joins with residuals, DISTINCT)
//!    is executed on both engines at thread counts {1, 2, 8}; every
//!    vectorized result must be byte-identical (`Table: PartialEq`
//!    compares schema, data, validity, and lineage) to the reference.
//!    Mismatches are counted and any divergence prints the query.
//! 2. **Throughput** — the E11 aggregate and join queries timed on the
//!    row path vs the vectorized path (default morsel config); the
//!    acceptance gate requires a >= 3x speedup on both.
//!
//! `CDA_BENCH_FAST=1` reduces repetitions (CI smoke mode); the table stays
//! at 8k rows so the speedup gate keeps its meaning.

use cda_bench::{f, header, row, timed_avg, us};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::{execute_with_options, Catalog, ExecOptions, MorselConfig};
use cda_testkit::rng::StdRng;

fn catalog(rows: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(3);
    let groups = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let gs: Vec<&str> = (0..rows).map(|_| groups[rng.gen_range(0..groups.len())]).collect();
    let xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..1000)).collect();
    let ys: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..1.0)).collect();
    let t = Table::from_columns(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ]),
        vec![Column::from_strs(&gs), Column::from_ints(&xs), Column::from_floats(&ys)],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("t", t).unwrap();
    let dim = Table::from_columns(
        Schema::new(vec![Field::new("g", DataType::Str), Field::new("label", DataType::Str)]),
        vec![
            Column::from_strs(&groups),
            Column::from_strs(&["A", "B", "C", "D", "E", "F", "G", "H"]),
        ],
    )
    .unwrap();
    c.register("dim", dim).unwrap();
    c
}

const AGG: &str =
    "SELECT g, COUNT(*) AS n, SUM(x) AS s, AVG(y) AS a FROM t GROUP BY g ORDER BY s DESC";
const JOIN: &str =
    "SELECT d.label, SUM(t.x) AS s FROM t JOIN dim d ON t.g = d.g WHERE t.x > 900 GROUP BY d.label";

fn corpus() -> Vec<&'static str> {
    vec![
        AGG,
        JOIN,
        "SELECT g, x + 1, y * 2.0 FROM t WHERE x % 7 = 0 AND y < 0.5 ORDER BY x, g LIMIT 200",
        "SELECT d.label, t.x FROM t LEFT JOIN dim d ON t.g = d.g AND t.x > 990 WHERE t.x > 980",
        "SELECT DISTINCT g FROM t WHERE y BETWEEN 0.25 AND 0.75 ORDER BY g",
        "SELECT g, MIN(x), MAX(x), COUNT(DISTINCT x) FROM t GROUP BY g ORDER BY g",
        "SELECT CASE WHEN x > 500 THEN 'hi' ELSE 'lo' END, COUNT(*) FROM t \
         GROUP BY CASE WHEN x > 500 THEN 'hi' ELSE 'lo' END",
    ]
}

fn main() {
    let fast = std::env::var("CDA_BENCH_FAST").is_ok();
    let reps = if fast { 10 } else { 50 };
    header("E17", "vectorized morsel-parallel engine: speedup + byte-identity");
    let c = catalog(8_000);

    // ---- 1. differential certification across thread counts -------------
    println!("\n-- byte-identity vs the row-at-a-time reference (8k rows) --");
    let mut mismatches = 0usize;
    let mut checks = 0usize;
    for sql in corpus() {
        let reference = execute_with_options(&c, sql, ExecOptions::default()).unwrap();
        for threads in [1usize, 2, 8] {
            let cfg = MorselConfig::default().with_threads(threads);
            let v = execute_with_options(
                &c,
                sql,
                ExecOptions { vectorized: Some(cfg), ..ExecOptions::default() },
            )
            .unwrap();
            checks += 1;
            if v.table != reference.table {
                mismatches += 1;
                println!("MISMATCH at threads={threads}: {sql}");
            }
        }
    }
    row(&["queries".into(), "thread counts".into(), "checks".into(), "mismatches".into()]);
    row(&[
        corpus().len().to_string(),
        "1,2,8".to_string(),
        checks.to_string(),
        mismatches.to_string(),
    ]);

    // ---- 2. throughput: row path vs vectorized path ----------------------
    println!("\n-- throughput ({reps} reps per cell) --");
    let vec_opts = ExecOptions::vectorized();
    let (_, agg_row) = timed_avg(reps, || execute_with_options(&c, AGG, ExecOptions::default()));
    let (_, agg_vec) = timed_avg(reps, || execute_with_options(&c, AGG, vec_opts));
    let (_, join_row) = timed_avg(reps, || execute_with_options(&c, JOIN, ExecOptions::default()));
    let (_, join_vec) = timed_avg(reps, || execute_with_options(&c, JOIN, vec_opts));
    let agg_speedup = agg_row.as_secs_f64() / agg_vec.as_secs_f64();
    let join_speedup = join_row.as_secs_f64() / join_vec.as_secs_f64();
    row(&["query".into(), "row".into(), "vectorized".into(), "speedup".into()]);
    row(&["aggregate".into(), us(agg_row), us(agg_vec), format!("{}x", f(agg_speedup))]);
    row(&["join".into(), us(join_row), us(join_vec), format!("{}x", f(join_speedup))]);

    println!(
        "\nacceptance: mismatches {} (==0: {}), aggregate speedup {}x (>=3: {}), \
         join speedup {}x (>=3: {})",
        mismatches,
        mismatches == 0,
        f(agg_speedup),
        agg_speedup >= 3.0,
        f(join_speedup),
        join_speedup >= 3.0,
    );
    if !(mismatches == 0 && agg_speedup >= 3.0 && join_speedup >= 3.0) {
        std::process::exit(1);
    }
}
