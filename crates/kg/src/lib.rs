//! # cda-kg
//!
//! A native knowledge-graph substrate for **P2 Grounding**: the paper argues
//! a CDA system must "query and perform reasoning over" domain knowledge
//! encoded in "Knowledge Graphs and similar complex taxonomies and
//! ontologies", and ground user terminology before answering.
//!
//! Components:
//!
//! * [`store`] — a dictionary-encoded triple store with SPO/POS/OSP indexes
//!   supporting pattern scans over any bound/unbound combination;
//! * [`query`] — basic-graph-pattern (BGP) queries with variables, evaluated
//!   by selectivity-ordered backtracking joins (a small SPARQL core);
//! * [`reason`] — RDFS-style inference (`subClassOf` / `subPropertyOf`
//!   transitivity, type inheritance, domain/range typing), available both as
//!   up-front materialization and as query-time expansion (experiment E12
//!   compares the two);
//! * [`vocab`] — domain vocabulary with synonyms, definitions, and
//!   context-scored term disambiguation;
//! * [`linking`] — entity extraction (gazetteer maximal matching) and entity
//!   linking that combines lexical, embedding, and popularity evidence
//!   (experiment E3 ablates these signals).
//!
//! ## Example
//!
//! ```
//! use cda_kg::store::TripleStore;
//! use cda_kg::query::{Bgp, Pattern, Term};
//!
//! let mut kg = TripleStore::new();
//! kg.insert("barometer", "type", "Indicator");
//! kg.insert("barometer", "measures", "labour_market");
//! let bgp = Bgp::new(vec![
//!     Pattern::new(Term::var("x"), Term::iri("type"), Term::iri("Indicator")),
//!     Pattern::new(Term::var("x"), Term::iri("measures"), Term::var("what")),
//! ]);
//! let rows = bgp.evaluate(&kg);
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].get("what"), Some("labour_market"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod linking;
pub mod query;
pub mod reason;
pub mod store;
pub mod vocab;

pub use error::KgError;
pub use store::TripleStore;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KgError>;
