//! RDFS-style inference.
//!
//! Supports the core entailment rules a grounding layer needs:
//!
//! * `subClassOf` transitivity and type inheritance
//!   (`x type C, C subClassOf D ⊢ x type D`),
//! * `subPropertyOf` transitivity and property inheritance
//!   (`x p y, p subPropertyOf q ⊢ x q y`),
//! * `domain` / `range` typing (`p domain C, x p y ⊢ x type C`).
//!
//! Two execution strategies, compared by experiment E12:
//! [`materialize`] computes the closure up front (fast queries, slow updates,
//! more memory) while [`Reasoner`] expands at query time (no storage
//! overhead, slower per query).

use crate::store::TripleStore;
use std::collections::{HashMap, HashSet, VecDeque};

/// Well-known predicate names (kept as plain strings for readability).
pub mod terms {
    /// `rdf:type`.
    pub const TYPE: &str = "type";
    /// `rdfs:subClassOf`.
    pub const SUBCLASS: &str = "subClassOf";
    /// `rdfs:subPropertyOf`.
    pub const SUBPROP: &str = "subPropertyOf";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "range";
}

/// Compute the transitive closure of a `child -> parents` relation.
fn transitive_parents(direct: &HashMap<String, Vec<String>>, start: &str) -> Vec<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(start.to_owned());
    let mut out = Vec::new();
    while let Some(cur) = queue.pop_front() {
        if let Some(parents) = direct.get(&cur) {
            for p in parents {
                if seen.insert(p.clone()) {
                    out.push(p.clone());
                    queue.push_back(p.clone());
                }
            }
        }
    }
    out
}

fn direct_map(kg: &TripleStore, pred: &str) -> HashMap<String, Vec<String>> {
    let mut map: HashMap<String, Vec<String>> = HashMap::new();
    for (s, _, o) in kg.scan_str(None, Some(pred), None) {
        map.entry(s).or_default().push(o);
    }
    map
}

/// Materialize the RDFS closure into the store (returns the number of
/// inferred triples added). Applies rules to a fixpoint.
pub fn materialize(kg: &mut TripleStore) -> usize {
    let mut added = 0usize;
    loop {
        let mut new_triples: Vec<(String, String, String)> = Vec::new();
        let subclass = direct_map(kg, terms::SUBCLASS);
        let subprop = direct_map(kg, terms::SUBPROP);
        // subClassOf transitivity
        for child in subclass.keys() {
            for ancestor in transitive_parents(&subclass, child) {
                if !kg.contains(child, terms::SUBCLASS, &ancestor) {
                    new_triples.push((child.clone(), terms::SUBCLASS.to_owned(), ancestor));
                }
            }
        }
        // subPropertyOf transitivity
        for child in subprop.keys() {
            for ancestor in transitive_parents(&subprop, child) {
                if !kg.contains(child, terms::SUBPROP, &ancestor) {
                    new_triples.push((child.clone(), terms::SUBPROP.to_owned(), ancestor));
                }
            }
        }
        // type inheritance
        for (x, _, c) in kg.scan_str(None, Some(terms::TYPE), None) {
            for ancestor in transitive_parents(&subclass, &c) {
                if !kg.contains(&x, terms::TYPE, &ancestor) {
                    new_triples.push((x.clone(), terms::TYPE.to_owned(), ancestor));
                }
            }
        }
        // property inheritance
        for (p, parents) in &subprop {
            for (s, _, o) in kg.scan_str(None, Some(p), None) {
                for q in parents {
                    if !kg.contains(&s, q, &o) {
                        new_triples.push((s.clone(), q.clone(), o.clone()));
                    }
                }
            }
        }
        // domain / range typing
        for (p, _, c) in kg.scan_str(None, Some(terms::DOMAIN), None) {
            for (s, _, _) in kg.scan_str(None, Some(&p), None) {
                if !kg.contains(&s, terms::TYPE, &c) {
                    new_triples.push((s.clone(), terms::TYPE.to_owned(), c.clone()));
                }
            }
        }
        for (p, _, c) in kg.scan_str(None, Some(terms::RANGE), None) {
            for (_, _, o) in kg.scan_str(None, Some(&p), None) {
                if !kg.contains(&o, terms::TYPE, &c) {
                    new_triples.push((o.clone(), terms::TYPE.to_owned(), c.clone()));
                }
            }
        }
        new_triples.sort();
        new_triples.dedup();
        if new_triples.is_empty() {
            return added;
        }
        for (s, p, o) in new_triples {
            if kg.insert(&s, &p, &o) {
                added += 1;
            }
        }
    }
}

/// Query-time reasoner over a base store (no materialization).
#[derive(Debug)]
pub struct Reasoner<'a> {
    kg: &'a TripleStore,
    subclass: HashMap<String, Vec<String>>,
    subprop: HashMap<String, Vec<String>>,
}

impl<'a> Reasoner<'a> {
    /// Wrap a store; the sub-class/property hierarchies are snapshotted.
    pub fn new(kg: &'a TripleStore) -> Self {
        Self {
            kg,
            subclass: direct_map(kg, terms::SUBCLASS),
            subprop: direct_map(kg, terms::SUBPROP),
        }
    }

    /// All classes of `x`, including inherited ones.
    pub fn types_of(&self, x: &str) -> Vec<String> {
        let mut out: Vec<String> = self.kg.objects(x, terms::TYPE);
        let direct = out.clone();
        for c in &direct {
            for ancestor in transitive_parents(&self.subclass, c) {
                if !out.contains(&ancestor) {
                    out.push(ancestor);
                }
            }
        }
        // domain/range typing
        for (p, _, c) in self.kg.scan_str(None, Some(terms::DOMAIN), None) {
            if !self.kg.objects(x, &p).is_empty() && !out.contains(&c) {
                out.push(c);
            }
        }
        for (p, _, c) in self.kg.scan_str(None, Some(terms::RANGE), None) {
            if !self.kg.subjects(&p, x).is_empty() && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Whether `x` is an instance of `class` under RDFS entailment.
    pub fn is_a(&self, x: &str, class: &str) -> bool {
        self.types_of(x).iter().any(|c| c == class)
    }

    /// All instances of `class`, including instances of subclasses.
    pub fn instances_of(&self, class: &str) -> Vec<String> {
        // collect class + all descendants
        let mut classes = vec![class.to_owned()];
        // build reverse map parent -> children
        let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
        for (c, parents) in &self.subclass {
            for p in parents {
                children.entry(p.as_str()).or_default().push(c.as_str());
            }
        }
        let mut queue = vec![class];
        let mut seen: HashSet<&str> = HashSet::new();
        while let Some(cur) = queue.pop() {
            if let Some(kids) = children.get(cur) {
                for &k in kids {
                    if seen.insert(k) {
                        classes.push(k.to_owned());
                        queue.push(k);
                    }
                }
            }
        }
        let mut out: Vec<String> = Vec::new();
        for c in &classes {
            for x in self.kg.subjects(terms::TYPE, c) {
                if !out.contains(&x) {
                    out.push(x);
                }
            }
        }
        // domain/range-derived instances
        for (p, _, c) in self.kg.scan_str(None, Some(terms::DOMAIN), None) {
            if classes.contains(&c) {
                for (s, _, _) in self.kg.scan_str(None, Some(&p), None) {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Objects of `x` under `p` or any sub-property of `p`.
    pub fn objects_via(&self, x: &str, p: &str) -> Vec<String> {
        // collect p + descendants in the subPropertyOf hierarchy
        let mut preds = vec![p.to_owned()];
        let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
        for (c, parents) in &self.subprop {
            for parent in parents {
                children.entry(parent.as_str()).or_default().push(c.as_str());
            }
        }
        let mut queue = vec![p];
        let mut seen: HashSet<&str> = HashSet::new();
        while let Some(cur) = queue.pop() {
            if let Some(kids) = children.get(cur) {
                for &k in kids {
                    if seen.insert(k) {
                        preds.push(k.to_owned());
                        queue.push(k);
                    }
                }
            }
        }
        let mut out = Vec::new();
        for q in &preds {
            for o in self.kg.objects(x, q) {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taxonomy() -> TripleStore {
        let mut kg = TripleStore::new();
        kg.insert("Canton", "subClassOf", "Region");
        kg.insert("Region", "subClassOf", "Place");
        kg.insert("zurich", "type", "Canton");
        kg.insert("employs", "subPropertyOf", "relatedTo");
        kg.insert("acme", "employs", "alice");
        kg.insert("locatedIn", "domain", "Organization");
        kg.insert("locatedIn", "range", "Place");
        kg.insert("acme", "locatedIn", "zurich");
        kg
    }

    #[test]
    fn materialization_adds_inferred_triples() {
        let mut kg = taxonomy();
        let before = kg.len();
        let added = materialize(&mut kg);
        assert!(added > 0);
        assert_eq!(kg.len(), before + added);
        assert!(kg.contains("zurich", "type", "Region"));
        assert!(kg.contains("zurich", "type", "Place"));
        assert!(kg.contains("Canton", "subClassOf", "Place"));
        assert!(kg.contains("acme", "relatedTo", "alice"));
        assert!(kg.contains("acme", "type", "Organization"));
    }

    #[test]
    fn materialization_reaches_fixpoint() {
        let mut kg = taxonomy();
        materialize(&mut kg);
        let again = materialize(&mut kg);
        assert_eq!(again, 0);
    }

    #[test]
    fn query_time_reasoner_matches_materialization() {
        let mut materialized = taxonomy();
        materialize(&mut materialized);
        let base = taxonomy();
        let r = Reasoner::new(&base);
        // types_of agrees with the materialized store
        let mut virt = r.types_of("zurich");
        virt.sort();
        let mut mat = materialized.objects("zurich", "type");
        mat.sort();
        assert_eq!(virt, mat);
        assert!(r.is_a("zurich", "Place"));
        assert!(!r.is_a("zurich", "Organization"));
    }

    #[test]
    fn instances_include_subclass_members() {
        let base = taxonomy();
        let r = Reasoner::new(&base);
        let insts = r.instances_of("Place");
        assert!(insts.contains(&"zurich".to_owned()));
        // acme is an Organization (domain rule), not a Place
        assert!(!insts.contains(&"acme".to_owned()));
        assert_eq!(r.instances_of("Organization"), vec!["acme".to_owned()]);
    }

    #[test]
    fn objects_via_subproperties() {
        let base = taxonomy();
        let r = Reasoner::new(&base);
        assert_eq!(r.objects_via("acme", "relatedTo"), vec!["alice".to_owned()]);
        assert_eq!(r.objects_via("acme", "employs"), vec!["alice".to_owned()]);
    }

    #[test]
    fn range_rule_types_objects() {
        let base = taxonomy();
        let r = Reasoner::new(&base);
        // zurich is typed Place also via range(locatedIn)
        assert!(r.types_of("zurich").contains(&"Place".to_owned()));
    }

    #[test]
    fn cycle_in_hierarchy_terminates() {
        let mut kg = TripleStore::new();
        kg.insert("A", "subClassOf", "B");
        kg.insert("B", "subClassOf", "A");
        kg.insert("x", "type", "A");
        let added = materialize(&mut kg);
        assert!(added >= 1);
        assert!(kg.contains("x", "type", "B"));
        let r = Reasoner::new(&kg);
        assert!(r.is_a("x", "B"));
    }
}
