//! `absint` — a fixpoint abstract interpreter over bound logical plans.
//!
//! The gate's existing passes are syntactic (AST lints), type-level
//! (binding), or coarse-cardinality (`cardest`). This pass is *semantic*: it
//! runs the plan once over **abstract values** — per-column
//! [`ColDomain`]s combining 3VL null-ness, numeric intervals, string
//! length/prefix bounds, and small finite value sets, plus per-node
//! row-count bounds — and proves facts no per-row executor can state:
//! *"this filter selects no row on any database"*, *"this filter selects
//! every row of this catalog"*, *"this output column is NULL in every
//! row"*, *"this expression divides by zero on the first row it touches"*.
//!
//! ## Lattice and widening
//!
//! The column lattice is the product of four independent components (see
//! `cda_dataframe::domain` for the carrier types and the runtime membership
//! semantics): null-ness (`NeverNull < MaybeNull > AlwaysNull`), interval
//! (`⊥ ⊂ [lo,hi] ⊂ ⊤`), string shape (length bounds × required prefix),
//! and an optional finite value set capped at
//! [`cda_dataframe::domain::VALUE_SET_CAP`] elements — joins past the cap
//! widen the set to `None` while the interval/string components keep a
//! sound hull, so every ascending chain is finite and the interpreter
//! terminates without an explicit widening operator on intervals (interval
//! bounds only ever come from literals, catalog statistics, and joins of
//! those — a finite set per plan).
//!
//! ## Transfer functions
//!
//! One bottom-up pass computes a [`DomainTree`] mirroring the plan. `Scan`
//! seeds from catalog statistics (min/max/null-count/row-count; string
//! min/max contribute their common prefix — every value between two strings
//! shares it). `Filter` evaluates the predicate to an [`AbsTruth`] and
//! *refines* the surviving rows' domains conjunct-by-conjunct to a bounded
//! local fixpoint (column↔literal and column↔column comparisons, `IS
//! [NOT] NULL`, literal `IN` lists, `BETWEEN`, `LIKE` prefixes). `Project`
//! and `Aggregate` run abstract expression evaluation; output columns whose
//! value type cannot be proven uniform are widened to null-ness-only,
//! because the executors coerce mixed-type columns
//! (`exec::column_from_values`) in ways the value abstraction doesn't
//! model. `Join` concatenates, pads the right side nullable under `LEFT`,
//! and refines `INNER` keys through the join condition.
//!
//! ## Soundness discipline
//!
//! Every fact is one-sided: the domain *over*-approximates the reachable
//! values. Two executor subtleties are load-bearing and property-tested:
//!
//! * **NaN**: a `Float` column may contain NaN, which makes every
//!   comparison unselect the row (`sql_cmp` → `None` → not TRUE).
//!   `NeverTrue` conclusions are NaN-safe by construction; `AlwaysTrue`
//!   conclusions are only drawn from provably NaN-free operands
//!   (i64-backed types or explicit finite value sets).
//! * **NULL before errors**: `eval_binary` propagates NULL *before* the
//!   division-by-zero check, so `NULL / 0` is NULL, not an error. The
//!   provable-runtime-error analysis therefore requires both operands
//!   `NeverNull`, a divisor domain of exactly `{0}`, at least one
//!   guaranteed input row, and an unconditionally-evaluated position
//!   (short-circuit `AND`/`OR` arms and `CASE` branches don't count).
//!
//! The analysis is consumed four ways: sqlcheck codes A015–A018
//! ([`analyze`]), cardinality-bound sharpening ([`row_bounds`] intersected
//! into `cardest` estimates), the equivalence engine's domain-refutation
//! fast path, and the **sanitizer** (`cda_sql::exec::execute_plan_checked`)
//! that re-checks every materialized node output against its static domain
//! at runtime — a differential certifier of this module itself.

use crate::cardest::Statistics;
use cda_dataframe::domain::{
    ColDomain, DomainTree, Interval, NodeDomain, Nullness, StrDomain,
};
use cda_dataframe::{DataType, Value};
use cda_sql::ast::{BinaryOp, JoinKind};
use cda_sql::plan::{AggExpr, BoundExpr, Plan};
use cda_dataframe::kernels::AggKind;

/// Max iterations of the per-filter conjunct-refinement loop. Column↔column
/// comparisons propagate bounds transitively; four rounds close every chain
/// a 16-atom CNF can build in practice, and the loop also stops as soon as
/// a round changes nothing.
const REFINE_ROUNDS: usize = 4;

// ------------------------------------------------------------- three truths

/// Abstract truth of a predicate under 3VL, folded for *selection*: a row
/// is selected iff the predicate evaluates to TRUE, so `NeverTrue` covers
/// both FALSE and NULL outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsTruth {
    /// Evaluates to TRUE on every possible input row.
    AlwaysTrue,
    /// Never evaluates to TRUE (FALSE or NULL on every row).
    NeverTrue,
    /// Cannot be decided abstractly.
    Unknown,
}

impl AbsTruth {
    fn and(self, other: AbsTruth) -> AbsTruth {
        use AbsTruth::*;
        match (self, other) {
            // FALSE AND x is FALSE, NULL AND FALSE is FALSE — never TRUE.
            (NeverTrue, _) | (_, NeverTrue) => NeverTrue,
            (AlwaysTrue, AlwaysTrue) => AlwaysTrue,
            _ => Unknown,
        }
    }

    fn or(self, other: AbsTruth) -> AbsTruth {
        use AbsTruth::*;
        match (self, other) {
            // TRUE OR x is TRUE, NULL OR TRUE is TRUE.
            (AlwaysTrue, _) | (_, AlwaysTrue) => AlwaysTrue,
            (NeverTrue, NeverTrue) => NeverTrue,
            _ => Unknown,
        }
    }

    fn not(self) -> AbsTruth {
        use AbsTruth::*;
        match self {
            AlwaysTrue => NeverTrue,
            // NOT(never TRUE) may still be NULL (never TRUE ⊇ NULL), so
            // nothing can be concluded without null-ness of the operand.
            NeverTrue | Unknown => Unknown,
        }
    }
}

// --------------------------------------------------------------- type class

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Num,
    Str,
    Bool,
    Unknown,
}

fn class_of(d: &ColDomain) -> Class {
    match d.dtype {
        Some(DataType::Int) | Some(DataType::Float) | Some(DataType::Timestamp) => Class::Num,
        Some(DataType::Str) => Class::Str,
        Some(DataType::Bool) => Class::Bool,
        None => Class::Unknown,
    }
}

/// Value equality as `sql_cmp` sees it: numeric values by f64 view,
/// everything else structurally.
fn value_eq(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// Result NULL-ness of a NULL-propagating operation (arithmetic, NOT):
/// NULL in, NULL out.
fn null_prop(a: Nullness, b: Nullness) -> Nullness {
    use Nullness::*;
    match (a, b) {
        (AlwaysNull, _) | (_, AlwaysNull) => AlwaysNull,
        (NeverNull, NeverNull) => NeverNull,
        _ => MaybeNull,
    }
}

/// True when no value of the domain can be NaN, which is what licenses
/// `AlwaysTrue` comparison conclusions (a NaN operand silently unselects
/// the row). i64-backed types cannot hold NaN; explicit finite value sets
/// are checked element-wise. A `Float` interval can always hide a NaN —
/// `Interval::contains` deliberately never excludes one.
fn nan_free(d: &ColDomain) -> bool {
    if matches!(d.dtype, Some(DataType::Int) | Some(DataType::Timestamp)) {
        return true;
    }
    match &d.values {
        Some(vs) => vs.iter().all(|v| v.as_f64().is_none_or(|x| !x.is_nan())),
        None => false,
    }
}

fn mark_unsat(d: &mut ColDomain) {
    d.nullness = Nullness::NeverNull;
    d.values = Some(Vec::new());
}

// -------------------------------------------------------- abstract eval

/// Abstract evaluation of a bound expression over the input columns'
/// domains. The result over-approximates every value the expression can
/// produce on any row drawn from `cols`.
pub fn abs_eval(expr: &BoundExpr, cols: &[ColDomain]) -> ColDomain {
    match expr {
        BoundExpr::Literal(v) => ColDomain::from_value(v),
        BoundExpr::Column(i) => cols.get(*i).cloned().unwrap_or_else(ColDomain::top),
        BoundExpr::Binary { left, op, right } => {
            let l = abs_eval(left, cols);
            let r = abs_eval(right, cols);
            if op.is_comparison() {
                return bool_result(match (class_of(&l), class_of(&r)) {
                    // Same comparable class and no NULL operand: sql_cmp is
                    // total, so the comparison itself never yields NULL.
                    (a, b)
                        if a == b
                            && a != Class::Unknown
                            && l.nullness == Nullness::NeverNull
                            && r.nullness == Nullness::NeverNull =>
                    {
                        Nullness::NeverNull
                    }
                    _ => Nullness::MaybeNull,
                });
            }
            match op {
                BinaryOp::And | BinaryOp::Or => bool_result(Nullness::MaybeNull),
                arith => abs_arith(&l, *arith, &r),
            }
        }
        BoundExpr::Neg(e) => {
            let d = abs_eval(e, cols);
            ColDomain {
                dtype: match d.dtype {
                    Some(DataType::Int) => Some(DataType::Int),
                    Some(DataType::Float) => Some(DataType::Float),
                    _ => None,
                },
                nullness: d.nullness,
                range: d.range.neg(),
                strs: StrDomain::top(),
                values: None,
            }
        }
        BoundExpr::Not(e) => {
            let d = abs_eval(e, cols);
            bool_result(d.nullness)
        }
        BoundExpr::IsNull { expr, .. } => {
            let _ = abs_eval(expr, cols);
            bool_result(Nullness::NeverNull)
        }
        BoundExpr::InList { .. } | BoundExpr::Between { .. } | BoundExpr::Like { .. } => {
            bool_result(Nullness::MaybeNull)
        }
        BoundExpr::Case { branches, else_expr } => {
            let mut acc: Option<ColDomain> = None;
            for (_, val) in branches {
                let d = abs_eval(val, cols);
                acc = Some(match acc {
                    Some(a) => a.join(&d),
                    None => d,
                });
            }
            let tail = match else_expr {
                Some(e) => abs_eval(e, cols),
                None => ColDomain::from_value(&Value::Null),
            };
            match acc {
                Some(a) => a.join(&tail),
                None => tail,
            }
        }
    }
}

fn bool_result(nullness: Nullness) -> ColDomain {
    ColDomain { dtype: Some(DataType::Bool), nullness, ..ColDomain::top() }
}

fn abs_arith(l: &ColDomain, op: BinaryOp, r: &ColDomain) -> ColDomain {
    let nullness = null_prop(l.nullness, r.nullness);
    let (cl, cr) = (class_of(l), class_of(r));
    // String concatenation: `+` on two strings. Result starts with the left
    // prefix; lengths add.
    if op == BinaryOp::Add && cl == Class::Str && cr == Class::Str {
        return ColDomain {
            dtype: Some(DataType::Str),
            nullness,
            range: Interval::top(),
            strs: StrDomain {
                len_lo: l.strs.len_lo.saturating_add(r.strs.len_lo),
                len_hi: l.strs.len_hi.saturating_add(r.strs.len_hi),
                prefix: l.strs.prefix.clone(),
            },
            values: None,
        };
    }
    if cl != Class::Num || cr != Class::Num {
        // Mixed or unknown classes: either a runtime error (no value
        // produced — vacuously covered) or semantics we don't model.
        return ColDomain { nullness, ..ColDomain::top() };
    }
    let both_int = l.dtype == Some(DataType::Int) && r.dtype == Some(DataType::Int);
    let range = match op {
        BinaryOp::Add => l.range.add(&r.range),
        BinaryOp::Sub => l.range.sub(&r.range),
        BinaryOp::Mul => l.range.mul(&r.range),
        // Division/modulo ranges are subtle near zero; stay at ⊤.
        _ => Interval::top(),
    };
    ColDomain {
        // `both_int` results stay Int except inexact division (7/2 → 3.5);
        // any Float/Timestamp operand makes the executor produce Float.
        dtype: if both_int {
            if op == BinaryOp::Div {
                None
            } else {
                Some(DataType::Int)
            }
        } else {
            Some(DataType::Float)
        },
        nullness,
        range,
        strs: StrDomain::top(),
        values: None,
    }
}

// ---------------------------------------------------------- abstract truth

/// Abstract truth of a predicate over the input columns' domains.
pub fn abs_truth(pred: &BoundExpr, cols: &[ColDomain]) -> AbsTruth {
    use AbsTruth::*;
    match pred {
        BoundExpr::Literal(Value::Bool(true)) => AlwaysTrue,
        BoundExpr::Literal(Value::Bool(false)) | BoundExpr::Literal(Value::Null) => NeverTrue,
        BoundExpr::Literal(_) => Unknown,
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            abs_truth(left, cols).and(abs_truth(right, cols))
        }
        BoundExpr::Binary { left, op: BinaryOp::Or, right } => {
            abs_truth(left, cols).or(abs_truth(right, cols))
        }
        BoundExpr::Binary { left, op, right } if op.is_comparison() => {
            cmp_truth(&abs_eval(left, cols), *op, &abs_eval(right, cols))
        }
        BoundExpr::Binary { .. } => Unknown,
        BoundExpr::Not(e) => abs_truth(e, cols).not(),
        BoundExpr::IsNull { expr, negated } => {
            let d = abs_eval(expr, cols);
            match (d.nullness, negated) {
                (Nullness::AlwaysNull, false) | (Nullness::NeverNull, true) => AlwaysTrue,
                (Nullness::NeverNull, false) | (Nullness::AlwaysNull, true) => NeverTrue,
                _ => Unknown,
            }
        }
        BoundExpr::InList { expr, list, negated } => {
            let d = abs_eval(expr, cols);
            // NULL subject ⇒ result NULL, for IN and NOT IN alike.
            if d.nullness == Nullness::AlwaysNull {
                return NeverTrue;
            }
            if !negated {
                // x IN (…) is TRUE only via equality with some item: if
                // every literal item is refuted the membership can still be
                // NULL (a NULL item), but never TRUE.
                let all_literal = list.iter().all(|i| matches!(i, BoundExpr::Literal(_)));
                if all_literal
                    && list.iter().all(|i| {
                        cmp_truth(&d, BinaryOp::Eq, &abs_eval(i, cols)) == NeverTrue
                    })
                {
                    return NeverTrue;
                }
            } else if list
                .iter()
                .any(|i| matches!(i, BoundExpr::Literal(Value::Null)))
            {
                // x NOT IN (…, NULL, …): a match yields FALSE, a miss
                // reaches the NULL item and yields NULL — never TRUE.
                return NeverTrue;
            }
            Unknown
        }
        BoundExpr::Between { expr, low, high, negated } => {
            let d = abs_eval(expr, cols);
            let lo = abs_eval(low, cols);
            let hi = abs_eval(high, cols);
            let inside = cmp_truth(&d, BinaryOp::GtEq, &lo).and(cmp_truth(&d, BinaryOp::LtEq, &hi));
            if *negated {
                inside.not()
            } else {
                inside
            }
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let d = abs_eval(expr, cols);
            if d.nullness == Nullness::AlwaysNull {
                return NeverTrue;
            }
            if !negated && class_of(&d) == Class::Str {
                // A match must start with the pattern's literal prefix; if
                // that prefix is incompatible with the domain's required
                // prefix no string satisfies both.
                let lit: String =
                    pattern.chars().take_while(|c| *c != '%' && *c != '_').collect();
                let p = &d.strs.prefix;
                let compatible = lit.starts_with(p.as_str()) || p.starts_with(lit.as_str());
                if !compatible {
                    return NeverTrue;
                }
                let min_len = pattern.chars().filter(|c| *c != '%').count();
                if min_len > d.strs.len_hi {
                    return NeverTrue;
                }
            }
            Unknown
        }
        BoundExpr::Case { .. } => Unknown,
        // A bare column/negation as a predicate: truth depends on its
        // (boolean) values, which the value abstraction doesn't track.
        BoundExpr::Column(_) | BoundExpr::Neg(_) => Unknown,
    }
}

fn cmp_truth(l: &ColDomain, op: BinaryOp, r: &ColDomain) -> AbsTruth {
    use AbsTruth::*;
    use BinaryOp::*;
    if l.is_unsatisfiable() || r.is_unsatisfiable() {
        return NeverTrue;
    }
    // A NULL operand makes the comparison NULL.
    if l.nullness == Nullness::AlwaysNull || r.nullness == Nullness::AlwaysNull {
        return NeverTrue;
    }
    let (cl, cr) = (class_of(l), class_of(r));
    if cl != Class::Unknown && cr != Class::Unknown && cl != cr {
        // Cross-class sql_cmp is undefined ⇒ NULL ⇒ never TRUE.
        return NeverTrue;
    }
    let both_never_null = l.nullness == Nullness::NeverNull && r.nullness == Nullness::NeverNull;
    let certain = both_never_null && nan_free(l) && nan_free(r);
    // Finite-set reasoning for (in)equality.
    if let (Some(a), Some(b)) = (&l.values, &r.values) {
        let overlap = a.iter().any(|x| b.iter().any(|y| value_eq(x, y)));
        let both_singleton_eq =
            a.len() == 1 && b.len() == 1 && value_eq(&a[0], &b[0]);
        match op {
            Eq if !overlap => return NeverTrue,
            Eq if both_singleton_eq && certain => return AlwaysTrue,
            NotEq if both_singleton_eq => return NeverTrue,
            NotEq if !overlap && certain && cl == cr && cl != Class::Unknown => {
                return AlwaysTrue;
            }
            _ => {}
        }
    }
    if cl == Class::Num && cr == Class::Num {
        let (a, b) = (l.range, r.range);
        let decided = match op {
            Lt => {
                if a.hi < b.lo && certain {
                    Some(AlwaysTrue)
                } else if a.lo >= b.hi {
                    Some(NeverTrue)
                } else {
                    None
                }
            }
            LtEq => {
                if a.hi <= b.lo && certain {
                    Some(AlwaysTrue)
                } else if a.lo > b.hi {
                    Some(NeverTrue)
                } else {
                    None
                }
            }
            Gt => {
                if a.lo > b.hi && certain {
                    Some(AlwaysTrue)
                } else if a.hi <= b.lo {
                    Some(NeverTrue)
                } else {
                    None
                }
            }
            GtEq => {
                if a.lo >= b.hi && certain {
                    Some(AlwaysTrue)
                } else if a.hi < b.lo {
                    Some(NeverTrue)
                } else {
                    None
                }
            }
            Eq => {
                if a.hi < b.lo || b.hi < a.lo {
                    Some(NeverTrue)
                } else {
                    None
                }
            }
            NotEq => {
                if (a.hi < b.lo || b.hi < a.lo) && certain {
                    Some(AlwaysTrue)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(t) = decided {
            return t;
        }
    }
    if cl == Class::Str && cr == Class::Str && op == Eq {
        let (p, q) = (&l.strs.prefix, &r.strs.prefix);
        if !p.starts_with(q.as_str()) && !q.starts_with(p.as_str()) {
            return NeverTrue;
        }
        if l.strs.len_lo > r.strs.len_hi || r.strs.len_lo > l.strs.len_hi {
            return NeverTrue;
        }
    }
    Unknown
}

// ------------------------------------------------------- filter refinement

/// Refine the domains of rows that *survive* `pred` being TRUE, iterating
/// to a bounded local fixpoint so column↔column bounds propagate.
fn refine(pred: &BoundExpr, cols: &mut [ColDomain]) {
    let mut conjuncts = Vec::new();
    split_and(pred, &mut conjuncts);
    refine_conjuncts(&conjuncts, cols);
}

fn refine_conjuncts(conjuncts: &[&BoundExpr], cols: &mut [ColDomain]) {
    for _ in 0..REFINE_ROUNDS {
        let before = cols.to_vec();
        for c in conjuncts {
            refine_conjunct(c, cols);
        }
        if cols == before.as_slice() {
            break;
        }
    }
}

fn split_and<'e>(e: &'e BoundExpr, out: &mut Vec<&'e BoundExpr>) {
    match e {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            split_and(left, out);
            split_and(right, out);
        }
        other => out.push(other),
    }
}

fn refine_conjunct(c: &BoundExpr, cols: &mut [ColDomain]) {
    match c {
        BoundExpr::Binary { left, op, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Column(i), BoundExpr::Literal(v)) => {
                    if let Some(d) = cols.get_mut(*i) {
                        refine_cmp_lit(d, *op, v);
                    }
                }
                (BoundExpr::Literal(v), BoundExpr::Column(i)) => {
                    if let Some(d) = cols.get_mut(*i) {
                        refine_cmp_lit(d, mirror(*op), v);
                    }
                }
                (BoundExpr::Column(i), BoundExpr::Column(j)) if i != j => {
                    refine_cmp_cols(cols, *i, *j, *op);
                }
                _ => {}
            }
        }
        BoundExpr::IsNull { expr: e, negated } => {
            if let BoundExpr::Column(i) = e.as_ref() {
                if let Some(d) = cols.get_mut(*i) {
                    if *negated {
                        // survivors are non-NULL
                        if d.nullness == Nullness::AlwaysNull {
                            mark_unsat(d);
                        } else {
                            d.nullness = Nullness::NeverNull;
                        }
                    } else if d.nullness == Nullness::NeverNull {
                        mark_unsat(d);
                    } else {
                        d.nullness = Nullness::AlwaysNull;
                    }
                }
            }
        }
        BoundExpr::InList { expr: e, list, negated } => {
            if let BoundExpr::Column(i) = e.as_ref() {
                let Some(d) = cols.get_mut(*i) else { return };
                if *negated {
                    // NOT IN is only TRUE when the subject is non-NULL; a
                    // NULL item makes it never TRUE at all.
                    if list.iter().any(|it| matches!(it, BoundExpr::Literal(Value::Null))) {
                        mark_unsat(d);
                    } else {
                        d.nullness = Nullness::NeverNull;
                    }
                    return;
                }
                // IN is TRUE only by equality with a non-NULL item.
                d.nullness = Nullness::NeverNull;
                let lits: Option<Vec<&Value>> = list
                    .iter()
                    .map(|it| match it {
                        BoundExpr::Literal(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if let Some(lits) = lits {
                    let admissible: Vec<Value> = lits
                        .into_iter()
                        .filter(|v| !v.is_null() && d.contains(v))
                        .cloned()
                        .collect();
                    match &d.values {
                        Some(set) => {
                            let kept: Vec<Value> = set
                                .iter()
                                .filter(|x| admissible.iter().any(|v| value_eq(x, v)))
                                .cloned()
                                .collect();
                            d.values = Some(kept);
                        }
                        None => d.values = Some(admissible),
                    }
                }
            }
        }
        BoundExpr::Between { expr: e, low, high, negated: false } => {
            if let BoundExpr::Column(i) = e.as_ref() {
                if let Some(d) = cols.get_mut(*i) {
                    if let BoundExpr::Literal(v) = low.as_ref() {
                        refine_cmp_lit(d, BinaryOp::GtEq, v);
                    }
                    if let BoundExpr::Literal(v) = high.as_ref() {
                        refine_cmp_lit(d, BinaryOp::LtEq, v);
                    }
                }
            }
        }
        BoundExpr::Like { expr: e, pattern, negated: false } => {
            if let BoundExpr::Column(i) = e.as_ref() {
                if let Some(d) = cols.get_mut(*i) {
                    refine_like(d, pattern);
                }
            }
        }
        _ => {}
    }
}

fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Survivors of `col <op> lit` being TRUE: the column is non-NULL, its
/// comparable class matches the literal's, and its range/set shrinks.
fn refine_cmp_lit(d: &mut ColDomain, op: BinaryOp, lit: &Value) {
    if lit.is_null() {
        // col <op> NULL is NULL for every row.
        mark_unsat(d);
        return;
    }
    // A TRUE comparison needs a defined sql_cmp ⇒ same class as the literal.
    let lit_dom = ColDomain::from_value(lit);
    let lc = class_of(&lit_dom);
    match class_of(d) {
        Class::Unknown => {
            // Survivors provably share the literal's class; claim Str/Bool
            // exactly, and for numerics leave dtype open (Int vs Float).
            if lc == Class::Str {
                d.dtype = Some(DataType::Str);
            } else if lc == Class::Bool {
                d.dtype = Some(DataType::Bool);
            }
        }
        c if c != lc => {
            mark_unsat(d);
            return;
        }
        _ => {}
    }
    d.nullness = Nullness::NeverNull;
    match op {
        BinaryOp::Eq => {
            if let Some(set) = &d.values {
                let kept: Vec<Value> =
                    set.iter().filter(|x| value_eq(x, lit)).cloned().collect();
                d.values = Some(kept);
            } else {
                d.values = Some(vec![lit.clone()]);
            }
            if let Some(x) = lit.as_f64() {
                match d.range.intersect(&Interval::point(x)) {
                    Some(r) => d.range = r,
                    None => mark_unsat(d),
                }
            }
            if let Value::Str(s) = lit {
                if d.strs.contains(s) {
                    d.strs = StrDomain::point(s);
                } else {
                    mark_unsat(d);
                }
            }
        }
        BinaryOp::NotEq => {
            if let Some(set) = &d.values {
                d.values =
                    Some(set.iter().filter(|x| !value_eq(x, lit)).cloned().collect());
            }
        }
        BinaryOp::Lt | BinaryOp::LtEq => {
            if let Some(x) = lit.as_f64() {
                // closed superset of the open interval for Lt
                match d.range.intersect(&Interval { lo: f64::NEG_INFINITY, hi: x }) {
                    Some(r) => d.range = r,
                    None => mark_unsat(d),
                }
            }
        }
        BinaryOp::Gt | BinaryOp::GtEq => {
            if let Some(x) = lit.as_f64() {
                match d.range.intersect(&Interval { lo: x, hi: f64::INFINITY }) {
                    Some(r) => d.range = r,
                    None => mark_unsat(d),
                }
            }
        }
        _ => {}
    }
}

/// Survivors of `col_i <op> col_j` being TRUE: both non-NULL; ranges clip
/// against each other (closed supersets, NaN-safe — a NaN never survives a
/// comparison).
fn refine_cmp_cols(cols: &mut [ColDomain], i: usize, j: usize, op: BinaryOp) {
    if i >= cols.len() || j >= cols.len() {
        return;
    }
    let (li, rj) = (cols[i].clone(), cols[j].clone());
    // Cross-class comparison can never be TRUE.
    let (ci, cj) = (class_of(&li), class_of(&rj));
    if ci != Class::Unknown && cj != Class::Unknown && ci != cj {
        mark_unsat(&mut cols[i]);
        return;
    }
    for k in [i, j] {
        if cols[k].nullness == Nullness::AlwaysNull {
            mark_unsat(&mut cols[k]);
        } else {
            cols[k].nullness = Nullness::NeverNull;
        }
    }
    let numeric = ci == Class::Num && cj == Class::Num;
    match op {
        BinaryOp::Eq => {
            if numeric {
                match li.range.intersect(&rj.range) {
                    Some(r) => {
                        cols[i].range = r;
                        cols[j].range = r;
                    }
                    None => {
                        mark_unsat(&mut cols[i]);
                        mark_unsat(&mut cols[j]);
                    }
                }
            }
            if let (Some(a), Some(b)) = (&li.values, &rj.values) {
                let inter: Vec<Value> = a
                    .iter()
                    .filter(|x| b.iter().any(|y| value_eq(x, y)))
                    .cloned()
                    .collect();
                cols[i].values = Some(inter.clone());
                cols[j].values = Some(inter);
            }
        }
        BinaryOp::Lt | BinaryOp::LtEq if numeric => {
            cols[i].range = Interval::new(li.range.lo, li.range.hi.min(rj.range.hi));
            cols[j].range = Interval::new(rj.range.lo.max(li.range.lo), rj.range.hi);
        }
        BinaryOp::Gt | BinaryOp::GtEq if numeric => {
            cols[i].range = Interval::new(li.range.lo.max(rj.range.lo), li.range.hi);
            cols[j].range = Interval::new(rj.range.lo, rj.range.hi.min(li.range.hi));
        }
        _ => {}
    }
}

/// Survivors of `col LIKE pattern`: strings whose prefix matches the
/// pattern's literal prefix and whose length can reach the pattern's
/// minimum match length.
fn refine_like(d: &mut ColDomain, pattern: &str) {
    match class_of(d) {
        Class::Str => {}
        Class::Unknown => d.dtype = Some(DataType::Str),
        _ => {
            // LIKE on a non-string errors per row; no row survives as TRUE.
            mark_unsat(d);
            return;
        }
    }
    d.nullness = Nullness::NeverNull;
    let lit: String = pattern.chars().take_while(|c| *c != '%' && *c != '_').collect();
    if lit.starts_with(d.strs.prefix.as_str()) {
        d.strs.prefix = lit;
    } else if !d.strs.prefix.starts_with(lit.as_str()) {
        mark_unsat(d);
        return;
    }
    let min_len = pattern.chars().filter(|c| *c != '%').count();
    d.strs.len_lo = d.strs.len_lo.max(min_len);
    if !pattern.contains('%') {
        let exact = pattern.chars().count();
        d.strs.len_hi = d.strs.len_hi.min(exact);
    }
    if d.strs.is_empty() {
        mark_unsat(d);
    }
}

// ------------------------------------------------------------ the fixpoint

fn sat_mul(a: u64, b: u64) -> u64 {
    if a == u64::MAX || b == u64::MAX {
        if a == 0 || b == 0 {
            0
        } else {
            u64::MAX
        }
    } else {
        a.saturating_mul(b)
    }
}

/// Compute the abstract domain of every plan node, bottom-up, optionally
/// seeded from catalog statistics (omit them to get facts that hold on
/// *every* database with the plan's schemas).
pub fn domain_tree(plan: &Plan, stats: Option<&Statistics>) -> DomainTree {
    match plan {
        Plan::Scan { table, schema, projection } => {
            DomainTree::leaf(scan_domain(table, schema, projection, stats))
        }
        Plan::Filter { input, predicate } => {
            let child = domain_tree(input, stats);
            let truth = abs_truth(predicate, &child.node.cols);
            let mut cols = child.node.cols.clone();
            let mut conjuncts = Vec::new();
            split_and(predicate, &mut conjuncts);
            // A filter directly above an inner join shares the join's
            // column space, and every joined row satisfies `on`: folding
            // the join condition into the refinement loop lets the
            // fixpoint see cross-node contradictions (e.g. an equi-join
            // key forced into disjoint ranges by the WHERE clause).
            if let Plan::Join { kind: JoinKind::Inner, on, .. } = input.as_ref() {
                split_and(on, &mut conjuncts);
            }
            refine_conjuncts(&conjuncts, &mut cols);
            let unsat = cols.iter().any(ColDomain::is_unsatisfiable);
            let (rows_lo, rows_hi) = if truth == AbsTruth::NeverTrue || unsat {
                (0, 0)
            } else if truth == AbsTruth::AlwaysTrue {
                (child.node.rows_lo, child.node.rows_hi)
            } else {
                (0, child.node.rows_hi)
            };
            DomainTree {
                node: NodeDomain { cols, rows_lo, rows_hi },
                children: vec![child],
            }
        }
        Plan::Join { left, right, kind, on } => {
            let l = domain_tree(left, stats);
            let r = domain_tree(right, stats);
            let node = join_domain(&l.node, &r.node, *kind, on);
            DomainTree { node, children: vec![l, r] }
        }
        Plan::Project { input, exprs, .. } => {
            let child = domain_tree(input, stats);
            let cols = exprs
                .iter()
                .map(|e| sanitize_output(abs_eval(e, &child.node.cols)))
                .collect();
            let node =
                NodeDomain { cols, rows_lo: child.node.rows_lo, rows_hi: child.node.rows_hi };
            DomainTree { node, children: vec![child] }
        }
        Plan::Aggregate { input, group_exprs, aggs, .. } => {
            let child = domain_tree(input, stats);
            let node = aggregate_domain(&child.node, group_exprs, aggs);
            DomainTree { node, children: vec![child] }
        }
        Plan::Distinct { input } => {
            let child = domain_tree(input, stats);
            let rows_lo = child.node.rows_lo.min(1);
            // Distinct output is bounded by the product of the per-column
            // finite value-set sizes (plus a NULL slot each), when known.
            let mut combo: u64 = 1;
            for c in &child.node.cols {
                let per = match &c.values {
                    Some(vs) => {
                        (vs.len() as u64).saturating_add(u64::from(c.nullness.admits_null()))
                    }
                    None => u64::MAX,
                };
                combo = sat_mul(combo, per.max(1));
            }
            let rows_hi = child.node.rows_hi.min(combo);
            let node = NodeDomain { cols: child.node.cols.clone(), rows_lo, rows_hi };
            DomainTree { node, children: vec![child] }
        }
        Plan::Sort { input, .. } => {
            let child = domain_tree(input, stats);
            let node = child.node.clone();
            DomainTree { node, children: vec![child] }
        }
        Plan::Limit { input, limit, offset } => {
            let child = domain_tree(input, stats);
            let off = *offset as u64;
            let cap = limit.map(|l| l as u64).unwrap_or(u64::MAX);
            let rows_lo = child.node.rows_lo.saturating_sub(off).min(cap);
            let rows_hi = if child.node.rows_hi == u64::MAX {
                cap
            } else {
                child.node.rows_hi.saturating_sub(off).min(cap)
            };
            let node = NodeDomain { cols: child.node.cols.clone(), rows_lo, rows_hi };
            DomainTree { node, children: vec![child] }
        }
    }
}

/// The root row-count bounds of the abstract interpretation — intersected
/// into `cardest` estimates by the analyzer's cost pass.
pub fn row_bounds(plan: &Plan, stats: Option<&Statistics>) -> (u64, u64) {
    let t = domain_tree(plan, stats);
    (t.node.rows_lo, t.node.rows_hi)
}

fn scan_domain(
    table: &str,
    schema: &cda_dataframe::Schema,
    projection: &Option<Vec<usize>>,
    stats: Option<&Statistics>,
) -> NodeDomain {
    let ts = stats.and_then(|s| s.get(table));
    let positions: Vec<usize> = match projection {
        Some(p) => p.clone(),
        None => (0..schema.len()).collect(),
    };
    let (rows_lo, rows_hi) = match ts {
        Some(t) => (t.rows, t.rows),
        None => (0, u64::MAX),
    };
    let cols = positions
        .iter()
        .map(|&pos| {
            // Columnar storage is typed: a scan column only ever yields its
            // declared type or NULL.
            let dtype = schema.fields().get(pos).map(|f| f.data_type());
            let mut d = ColDomain { dtype, ..ColDomain::top() };
            if let Some(cs) = ts.and_then(|t| t.columns.get(pos)) {
                d.nullness = if cs.null_count == 0 {
                    Nullness::NeverNull
                } else if cs.null_count == cs.count {
                    Nullness::AlwaysNull
                } else {
                    Nullness::MaybeNull
                };
                match (&cs.min, &cs.max) {
                    (Some(mn), Some(mx)) => {
                        if let (Some(a), Some(b)) = (mn.as_f64(), mx.as_f64()) {
                            d.range = Interval::new(a, b);
                        }
                        if let (Value::Str(a), Value::Str(b)) = (mn, mx) {
                            // Every string between the min and max shares
                            // their common prefix.
                            d.strs.prefix = a
                                .chars()
                                .zip(b.chars())
                                .take_while(|(x, y)| x == y)
                                .map(|(x, _)| x)
                                .collect();
                        }
                        if cs.distinct_count == 1 {
                            d.values = Some(vec![mn.clone()]);
                        }
                    }
                    _ => {
                        // No non-NULL value was observed.
                        if cs.count > 0 {
                            d.nullness = Nullness::AlwaysNull;
                        }
                    }
                }
            }
            d
        })
        .collect();
    NodeDomain { cols, rows_lo, rows_hi }
}

fn join_domain(l: &NodeDomain, r: &NodeDomain, kind: JoinKind, on: &BoundExpr) -> NodeDomain {
    let mut cols: Vec<ColDomain> = l.cols.iter().chain(r.cols.iter()).cloned().collect();
    let truth = abs_truth(on, &cols);
    match kind {
        JoinKind::Inner => {
            refine(on, &mut cols);
            let unsat = cols.iter().any(ColDomain::is_unsatisfiable);
            let (rows_lo, rows_hi) = if truth == AbsTruth::NeverTrue || unsat {
                (0, 0)
            } else if truth == AbsTruth::AlwaysTrue {
                (sat_mul(l.rows_lo, r.rows_lo), sat_mul(l.rows_hi, r.rows_hi))
            } else {
                (0, sat_mul(l.rows_hi, r.rows_hi))
            };
            NodeDomain { cols, rows_lo, rows_hi }
        }
        JoinKind::Left => {
            // Unmatched left rows pad the right side with NULLs; matched
            // rows keep right values, so right columns only gain NULL-ness.
            let never_matches = truth == AbsTruth::NeverTrue;
            for c in cols.iter_mut().skip(l.cols.len()) {
                *c = if never_matches {
                    ColDomain {
                        nullness: Nullness::AlwaysNull,
                        dtype: c.dtype,
                        ..ColDomain::top()
                    }
                } else {
                    ColDomain { nullness: c.nullness.join(Nullness::AlwaysNull), ..c.clone() }
                };
            }
            let rows_hi = if never_matches {
                l.rows_hi
            } else {
                sat_mul(l.rows_hi, r.rows_hi.max(1))
            };
            NodeDomain { cols, rows_lo: l.rows_lo, rows_hi }
        }
    }
}

/// Widen an output-column domain the executors may coerce: when the value
/// type isn't provably uniform, `column_from_values` can rewrite values
/// (Int→Float, anything→Str), so only the NULL-ness claim survives.
fn sanitize_output(d: ColDomain) -> ColDomain {
    if d.dtype.is_some() {
        d
    } else {
        d.erase_to_nullness()
    }
}

/// Relative slack applied to float-folded aggregate bounds: the executor
/// sums in f64, so an exact interval bound can be off by rounding error.
fn slacken(r: Interval) -> Interval {
    let pad = |x: f64, up: bool| {
        if !x.is_finite() {
            return x;
        }
        let eps = x.abs().max(1.0) * 1e-9;
        if up {
            x + eps
        } else {
            x - eps
        }
    };
    Interval::new(pad(r.lo, false), pad(r.hi, true))
}

fn aggregate_domain(input: &NodeDomain, group_exprs: &[BoundExpr], aggs: &[AggExpr]) -> NodeDomain {
    let keyed = !group_exprs.is_empty();
    let (rows_lo, rows_hi) = if keyed {
        (input.rows_lo.min(1), input.rows_hi)
    } else {
        (1, 1)
    };
    let mut cols: Vec<ColDomain> = group_exprs
        .iter()
        .map(|e| sanitize_output(abs_eval(e, &input.cols)))
        .collect();
    // Every group is non-empty; a *global* aggregate's single group is
    // non-empty only when the input provably has rows.
    let group_non_empty = keyed || input.rows_lo >= 1;
    let n_max = if input.rows_hi == u64::MAX { f64::INFINITY } else { input.rows_hi as f64 };
    for agg in aggs {
        let arg = agg.arg.as_ref().map(|a| abs_eval(a, &input.cols));
        let fold_nullness = |a: &ColDomain| {
            if a.nullness == Nullness::AlwaysNull {
                Nullness::AlwaysNull
            } else if a.nullness == Nullness::NeverNull && group_non_empty {
                Nullness::NeverNull
            } else {
                Nullness::MaybeNull
            }
        };
        let d = match (agg.kind, &arg) {
            (AggKind::Count | AggKind::CountDistinct, _) => ColDomain {
                dtype: Some(DataType::Int),
                nullness: Nullness::NeverNull,
                range: Interval::new(0.0, n_max),
                strs: StrDomain::top(),
                values: None,
            },
            (AggKind::Min | AggKind::Max, Some(a)) => {
                // The fold picks one of the argument's values verbatim.
                ColDomain { nullness: fold_nullness(a), ..a.clone() }
            }
            (AggKind::Sum, Some(a)) if class_of(a) == Class::Num => ColDomain {
                dtype: match a.dtype {
                    Some(DataType::Int) => Some(DataType::Int),
                    _ => Some(DataType::Float),
                },
                nullness: fold_nullness(a),
                range: slacken(Interval::new(1.0, n_max).mul(&a.range)),
                strs: StrDomain::top(),
                values: None,
            },
            (AggKind::Avg, Some(a)) if class_of(a) == Class::Num => ColDomain {
                dtype: Some(DataType::Float),
                nullness: fold_nullness(a),
                range: slacken(a.range),
                strs: StrDomain::top(),
                values: None,
            },
            (AggKind::StdDev, Some(a)) if class_of(a) == Class::Num => ColDomain {
                dtype: Some(DataType::Float),
                nullness: fold_nullness(a),
                range: slacken(Interval::new(0.0, a.range.hi - a.range.lo)),
                strs: StrDomain::top(),
                values: None,
            },
            _ => ColDomain::top(),
        };
        cols.push(sanitize_output(d));
    }
    NodeDomain { cols, rows_lo, rows_hi }
}

// ------------------------------------------------------------ the findings

/// Everything the sqlcheck gate consumes from one abstract interpretation:
/// the domain tree (for the sanitizer) plus the provable facts behind codes
/// A015–A018.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node abstract domains mirroring the plan shape.
    pub tree: DomainTree,
    /// The plan's root provably produces no rows (→ A015). Carries a short
    /// explanation of the contradiction when one filter is responsible.
    pub provably_empty: Option<String>,
    /// Data-grounded tautological filter clauses (→ A016): predicates TRUE
    /// on every row of *this* catalog, excluding constant predicates (the
    /// optimizer's job). Each entry names the clause: `WHERE` or `HAVING`.
    pub tautologies: Vec<String>,
    /// Output columns that are provably NULL in every row (→ A017).
    pub null_columns: Vec<String>,
    /// Expressions that provably raise a runtime error on every execution
    /// (→ A018), rendered with column names.
    pub runtime_errors: Vec<String>,
}

/// Run the abstract interpreter and extract the gate-relevant facts.
pub fn analyze(plan: &Plan, stats: Option<&Statistics>) -> Analysis {
    let tree = domain_tree(plan, stats);
    let mut tautologies = Vec::new();
    let mut contradiction: Option<String> = None;
    let mut runtime_errors = Vec::new();
    walk(plan, &tree, stats.is_some(), &mut tautologies, &mut contradiction, &mut runtime_errors);

    let provably_empty = tree.node.is_provably_empty().then(|| {
        contradiction
            .clone()
            .unwrap_or_else(|| "no possible database row satisfies the plan".to_string())
    });
    let out_schema = plan.schema();
    let null_columns = if tree.node.is_provably_empty() {
        Vec::new() // an empty result has no rows to be NULL in
    } else {
        tree.node
            .cols
            .iter()
            .zip(out_schema.fields())
            .filter(|(d, _)| d.nullness == Nullness::AlwaysNull)
            .map(|(_, f)| f.name().to_string())
            .collect()
    };
    Analysis { tree, provably_empty, tautologies, null_columns, runtime_errors }
}

fn walk(
    plan: &Plan,
    tree: &DomainTree,
    has_stats: bool,
    tautologies: &mut Vec<String>,
    contradiction: &mut Option<String>,
    errors: &mut Vec<String>,
) {
    let in_cols = |k: usize| tree.children.get(k).map(|c| c.node.cols.as_slice()).unwrap_or(&[]);
    match plan {
        Plan::Filter { input, predicate } => {
            let cols = in_cols(0);
            let truth = abs_truth(predicate, cols);
            let clause =
                if matches!(input.as_ref(), Plan::Aggregate { .. }) { "HAVING" } else { "WHERE" };
            let names = schema_names(&input.schema());
            if truth == AbsTruth::AlwaysTrue && !predicate.is_constant() && has_stats {
                // Data-grounded only: TRUE on this catalog's domains but
                // not by constant folding alone.
                let top = vec![ColDomain::top(); cols.len()];
                if abs_truth(predicate, &top) != AbsTruth::AlwaysTrue {
                    tautologies.push(clause.to_string());
                }
            }
            if tree.node.is_provably_empty() && contradiction.is_none() {
                let input_live = tree
                    .children
                    .first()
                    .map(|c| !c.node.is_provably_empty())
                    .unwrap_or(false);
                if input_live {
                    *contradiction = Some(format!(
                        "the {clause} predicate {} selects no row",
                        render_expr(predicate, &names)
                    ));
                }
            }
            find_errors(predicate, cols, tree.node.rows_lo.max(child_rows_lo(tree)), &names, errors);
        }
        Plan::Project { exprs, input, .. } => {
            let names = schema_names(&input.schema());
            for e in exprs {
                find_errors(e, in_cols(0), child_rows_lo(tree), &names, errors);
            }
        }
        Plan::Aggregate { group_exprs, aggs, input, .. } => {
            let names = schema_names(&input.schema());
            for e in group_exprs {
                find_errors(e, in_cols(0), child_rows_lo(tree), &names, errors);
            }
            for a in aggs {
                if let Some(e) = &a.arg {
                    find_errors(e, in_cols(0), child_rows_lo(tree), &names, errors);
                }
            }
        }
        Plan::Join { left, right, on, .. } => {
            let mut names = schema_names(&left.schema());
            names.extend(schema_names(&right.schema()));
            let cols: Vec<ColDomain> = tree
                .children
                .iter()
                .flat_map(|c| c.node.cols.iter().cloned())
                .collect();
            // Join conditions run over candidate pairs; a pair is only
            // guaranteed when both sides provably have a row.
            let pairs_lo = tree
                .children
                .iter()
                .map(|c| c.node.rows_lo)
                .fold(1u64, sat_mul);
            find_errors(on, &cols, pairs_lo, &names, errors);
        }
        _ => {}
    }
    let children: Vec<&Plan> = match plan {
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => vec![input],
        Plan::Join { left, right, .. } => vec![left, right],
        Plan::Scan { .. } => vec![],
    };
    for (child_plan, child_tree) in children.into_iter().zip(&tree.children) {
        walk(child_plan, child_tree, has_stats, tautologies, contradiction, errors);
    }
}

fn child_rows_lo(tree: &DomainTree) -> u64 {
    tree.children.first().map(|c| c.node.rows_lo).unwrap_or(0)
}

fn schema_names(schema: &cda_dataframe::Schema) -> Vec<String> {
    schema.fields().iter().map(|f| f.name().to_string()).collect()
}

/// Scan an expression for division/modulo that provably errors: divisor
/// domain exactly `{0}`, both operands `NeverNull` (NULL propagates
/// *before* the zero check), at least one guaranteed evaluation
/// (`rows_lo ≥ 1`), and an unconditionally-evaluated position (the
/// executors short-circuit `AND`/`OR` and `CASE`).
fn find_errors(
    e: &BoundExpr,
    cols: &[ColDomain],
    rows_lo: u64,
    names: &[String],
    out: &mut Vec<String>,
) {
    if rows_lo == 0 {
        return;
    }
    let mut hit = |expr: &BoundExpr| {
        if let BoundExpr::Binary { left, op: op @ (BinaryOp::Div | BinaryOp::Mod), right } = expr {
            let num = abs_eval(left, cols);
            let den = abs_eval(right, cols);
            let zero = den.range == Interval::point(0.0)
                || matches!(&den.values, Some(vs) if !vs.is_empty()
                    && vs.iter().all(|v| v.as_f64() == Some(0.0)));
            if zero
                && class_of(&den) == Class::Num
                && num.nullness == Nullness::NeverNull
                && den.nullness == Nullness::NeverNull
                && class_of(&num) == Class::Num
            {
                out.push(format!(
                    "{} (the divisor is provably 0)",
                    render_expr_op(left, *op, right, names)
                ));
            }
        }
    };
    always_evaluated(e, &mut hit);
}

/// Visit `e` and every sub-expression the executor is guaranteed to
/// evaluate whenever `e` is evaluated.
fn always_evaluated<'e>(e: &'e BoundExpr, f: &mut impl FnMut(&'e BoundExpr)) {
    f(e);
    match e {
        BoundExpr::Binary { left, op: BinaryOp::And | BinaryOp::Or, .. } => {
            // the right arm may be short-circuited away
            always_evaluated(left, f);
        }
        BoundExpr::Binary { left, right, .. } => {
            always_evaluated(left, f);
            always_evaluated(right, f);
        }
        BoundExpr::Neg(x) | BoundExpr::Not(x) => always_evaluated(x, f),
        BoundExpr::IsNull { expr, .. } | BoundExpr::Like { expr, .. } => {
            always_evaluated(expr, f);
        }
        BoundExpr::InList { expr, .. } => always_evaluated(expr, f),
        BoundExpr::Between { expr, low, high, .. } => {
            always_evaluated(expr, f);
            always_evaluated(low, f);
            always_evaluated(high, f);
        }
        BoundExpr::Case { branches, .. } => {
            // only the first condition is unconditionally evaluated
            if let Some((cond, _)) = branches.first() {
                always_evaluated(cond, f);
            }
        }
        BoundExpr::Literal(_) | BoundExpr::Column(_) => {}
    }
}

// ------------------------------------------------------------ NL rendering

fn render_expr_op(l: &BoundExpr, op: BinaryOp, r: &BoundExpr, names: &[String]) -> String {
    format!("{} {} {}", render_expr(l, names), op.sql(), render_expr(r, names))
}

/// Compact SQL-ish rendering of a bound expression with column names, for
/// finding messages.
pub fn render_expr(e: &BoundExpr, names: &[String]) -> String {
    match e {
        BoundExpr::Literal(Value::Str(s)) => format!("'{s}'"),
        BoundExpr::Literal(v) => v.to_string(),
        BoundExpr::Column(i) => {
            names.get(*i).cloned().unwrap_or_else(|| format!("col{i}"))
        }
        BoundExpr::Binary { left, op, right } => {
            format!("({})", render_expr_op(left, *op, right, names))
        }
        BoundExpr::Neg(x) => format!("-{}", render_expr(x, names)),
        BoundExpr::Not(x) => format!("NOT {}", render_expr(x, names)),
        BoundExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr, names),
            if *negated { "NOT " } else { "" }
        ),
        BoundExpr::InList { expr, list, negated } => format!(
            "{} {}IN ({})",
            render_expr(expr, names),
            if *negated { "NOT " } else { "" },
            list.iter().map(|i| render_expr(i, names)).collect::<Vec<_>>().join(", ")
        ),
        BoundExpr::Between { expr, low, high, negated } => format!(
            "{} {}BETWEEN {} AND {}",
            render_expr(expr, names),
            if *negated { "NOT " } else { "" },
            render_expr(low, names),
            render_expr(high, names)
        ),
        BoundExpr::Like { expr, pattern, negated } => format!(
            "{} {}LIKE '{pattern}'",
            render_expr(expr, names),
            if *negated { "NOT " } else { "" }
        ),
        BoundExpr::Case { .. } => "CASE ... END".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, Field, Schema, Table};
    use cda_sql::planner::plan_select;
    use cda_sql::parser::parse;
    use cda_sql::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let emp = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("sector", DataType::Str),
                Field::new("jobs", DataType::Int),
                Field::new("rate", DataType::Float),
            ]),
            vec![
                Column::from_strs(&["ZH", "BE", "ZH", "GE"]),
                Column::from_strs(&["it", "it", "finance", "health"]),
                Column::from_opt_ints(&[Some(120), Some(0), Some(340), None]),
                Column::from_floats(&[1.5, 0.0, 2.25, 3.5]),
            ],
        )
        .unwrap();
        c.register("emp", emp).unwrap();
        c
    }

    fn plan(c: &Catalog, sql: &str) -> Plan {
        plan_select(c, &parse(sql).unwrap()).unwrap()
    }

    fn stats(c: &Catalog) -> Statistics {
        Statistics::from_catalog(c)
    }

    #[test]
    fn scan_seeds_from_statistics() {
        let c = catalog();
        let s = stats(&c);
        let t = domain_tree(&plan(&c, "SELECT canton, jobs FROM emp"), Some(&s));
        // Project over Scan: canton NeverNull Str, jobs MaybeNull in [0,340]
        assert_eq!(t.node.rows_lo, 4);
        assert_eq!(t.node.rows_hi, 4);
        let jobs = &t.node.cols[1];
        assert_eq!(jobs.nullness, Nullness::MaybeNull);
        assert_eq!(jobs.range, Interval::new(0.0, 340.0));
        let canton = &t.node.cols[0];
        assert_eq!(canton.nullness, Nullness::NeverNull);
        assert_eq!(canton.dtype, Some(DataType::Str));
    }

    #[test]
    fn contradictory_equalities_prove_empty() {
        let c = catalog();
        let a = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs = 5 AND jobs = 6"), None);
        assert!(a.provably_empty.is_some(), "{a:?}");
    }

    #[test]
    fn comparison_with_null_literal_proves_empty() {
        let c = catalog();
        let a = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs = NULL"), None);
        assert!(a.provably_empty.is_some());
    }

    #[test]
    fn not_in_with_null_item_proves_empty() {
        let c = catalog();
        let a = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs NOT IN (1, NULL)"), None);
        assert!(a.provably_empty.is_some());
    }

    #[test]
    fn stats_grounded_range_contradiction() {
        let c = catalog();
        let s = stats(&c);
        let a = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs > 1000"), Some(&s));
        assert!(a.provably_empty.is_some(), "max(jobs)=340 refutes jobs>1000");
        // ...but without statistics nothing can be proven.
        let b = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs > 1000"), None);
        assert!(b.provably_empty.is_none());
    }

    #[test]
    fn data_grounded_tautology_detected_but_not_constant_folds() {
        let c = catalog();
        let s = stats(&c);
        // canton is NeverNull per stats, so IS NOT NULL is a tautology on
        // this catalog — but not a constant one.
        let a = analyze(&plan(&c, "SELECT canton FROM emp WHERE canton IS NOT NULL"), Some(&s));
        assert_eq!(a.tautologies, vec!["WHERE".to_string()]);
        // 1 = 1 is constant: the optimizer's territory, not A016's.
        let b = analyze(&plan(&c, "SELECT canton FROM emp WHERE 1 = 1"), Some(&s));
        assert!(b.tautologies.is_empty());
        // jobs ≥ 0 holds on this catalog but jobs is nullable → NOT a
        // tautology (NULL rows are unselected).
        let d = analyze(&plan(&c, "SELECT canton FROM emp WHERE jobs >= 0"), Some(&s));
        assert!(d.tautologies.is_empty());
        // rate is a NeverNull float: NaN can't be ruled out, so no
        // AlwaysTrue claim even though stats say rate ≥ 0.
        let e = analyze(&plan(&c, "SELECT canton FROM emp WHERE rate >= 0.0"), Some(&s));
        assert!(e.tautologies.is_empty());
    }

    #[test]
    fn provably_null_output_column() {
        let c = catalog();
        let a = analyze(&plan(&c, "SELECT jobs + NULL FROM emp"), None);
        assert_eq!(a.null_columns.len(), 1, "{a:?}");
    }

    #[test]
    fn provable_division_by_zero_needs_never_null() {
        let c = catalog();
        let s = stats(&c);
        // jobs is nullable: NULL / 0 is NULL, not an error → no A018.
        let a = analyze(&plan(&c, "SELECT jobs / 0 FROM emp"), Some(&s));
        assert!(a.runtime_errors.is_empty(), "{a:?}");
        // canton is NeverNull but a string: arithmetic errors are not the
        // divide-by-zero proof (class mismatch) → no claim.
        let b = analyze(&plan(&c, "SELECT 1 / (jobs - jobs) FROM emp"), Some(&s));
        assert!(b.runtime_errors.is_empty(), "jobs-jobs is NULL when jobs is");
        // A literal divisor 0 with a NeverNull numeric numerator and a
        // guaranteed row fires.
        let d = analyze(&plan(&c, "SELECT 1 / 0 FROM emp"), Some(&s));
        assert_eq!(d.runtime_errors.len(), 1, "{d:?}");
        // ...but not when the table might be empty (no stats).
        let e = analyze(&plan(&c, "SELECT 1 / 0 FROM emp"), None);
        assert!(e.runtime_errors.is_empty());
    }

    #[test]
    fn short_circuit_positions_do_not_fire_a018() {
        let c = catalog();
        let s = stats(&c);
        // the division is in the right arm of an AND: may be skipped
        let a = analyze(
            &plan(&c, "SELECT canton FROM emp WHERE canton = 'ZH' AND 1 / 0 > 1"),
            Some(&s),
        );
        assert!(a.runtime_errors.is_empty(), "{a:?}");
        // in the left arm it is always evaluated
        let b = analyze(
            &plan(&c, "SELECT canton FROM emp WHERE 1 / 0 > 1 AND canton = 'ZH'"),
            Some(&s),
        );
        assert_eq!(b.runtime_errors.len(), 1, "{b:?}");
    }

    #[test]
    fn join_with_disjoint_keys_proves_empty() {
        let mut c = catalog();
        let regions = Table::from_columns(
            Schema::new(vec![
                Field::new("canton", DataType::Str),
                Field::new("population", DataType::Int),
            ]),
            vec![
                Column::from_strs(&["ZH", "BE"]),
                Column::from_ints(&[1_500_000, 1_000_000]),
            ],
        )
        .unwrap();
        c.register("regions", regions).unwrap();
        let a = analyze(
            &plan(
                &c,
                "SELECT e.canton FROM emp e JOIN regions r ON e.jobs = r.population \
                 WHERE e.jobs < 10 AND r.population > 100",
            ),
            None,
        );
        assert!(a.provably_empty.is_some(), "{a:?}");
    }

    #[test]
    fn limit_and_offset_row_arithmetic() {
        let c = catalog();
        let s = stats(&c);
        let (lo, hi) =
            row_bounds(&plan(&c, "SELECT canton FROM emp LIMIT 2 OFFSET 1"), Some(&s));
        assert_eq!((lo, hi), (2, 2), "4 rows, skip 1, take 2");
        let (lo, hi) = row_bounds(&plan(&c, "SELECT canton FROM emp LIMIT 100"), Some(&s));
        assert_eq!((lo, hi), (4, 4));
    }

    #[test]
    fn global_aggregate_is_exactly_one_row() {
        let c = catalog();
        let (lo, hi) = row_bounds(&plan(&c, "SELECT COUNT(*) FROM emp"), None);
        assert_eq!((lo, hi), (1, 1));
    }

    #[test]
    fn refinement_is_a_reduction() {
        // refined domains must stay inside the input domains (soundness of
        // refinement as intersection)
        let c = catalog();
        let s = stats(&c);
        let t = domain_tree(
            &plan(&c, "SELECT canton FROM emp WHERE jobs BETWEEN 10 AND 200"),
            Some(&s),
        );
        // root is Project(Filter(Scan)); filter's jobs col is child 0's col 2
        let filter = &t.children[0];
        let jobs = &filter.node.cols[2];
        assert_eq!(jobs.nullness, Nullness::NeverNull);
        assert_eq!(jobs.range, Interval::new(10.0, 200.0));
    }

    #[test]
    fn join_monotone_on_samples() {
        // join(a, b) must contain everything a and b contain
        let vals =
            [Value::Int(3), Value::Str("zh".into()), Value::Null, Value::Float(2.5)];
        for x in &vals {
            for y in &vals {
                let j = ColDomain::from_value(x).join(&ColDomain::from_value(y));
                assert!(j.contains(x), "{x:?} ∉ join({x:?},{y:?})");
                assert!(j.contains(y), "{y:?} ∉ join({x:?},{y:?})");
            }
        }
    }
}
