//! Vectorized compute kernels: sort, group, aggregate primitives.
//!
//! Kernels operate on whole tables/columns and return index vectors or masks,
//! which callers feed to [`Table::take`] / [`Table::filter`]. Keeping the
//! kernels index-based preserves lineage for free (P3) and avoids copying
//! string payloads during intermediate steps (perf-book: avoid allocations on
//! hot paths).

use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (NULLs first, per `Value::total_cmp`).
    Asc,
    /// Descending.
    Desc,
}

/// One sort key: column index + direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column position in the table.
    pub column: usize,
    /// Direction.
    pub order: SortOrder,
}

/// Compute the row permutation that sorts `table` by the given keys
/// (stable; later keys break ties left to right as in SQL `ORDER BY`).
pub fn sort_indices(table: &Table, keys: &[SortKey]) -> Result<Vec<usize>> {
    // Materialize key values once; O(n·k) Values but avoids re-extracting
    // per comparison.
    let mut key_cols: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
    for k in keys {
        let col = table.column(k.column)?;
        key_cols.push(col.iter().collect());
    }
    let mut idx: Vec<usize> = (0..table.num_rows()).collect();
    idx.sort_by(|&a, &b| {
        for (k, col) in keys.iter().zip(&key_cols) {
            let ord = col[a].total_cmp(&col[b]);
            let ord = match k.order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(idx)
}

/// Distinct key tuples in first-seen order, one per group.
pub type GroupKeys = Vec<Vec<Value>>;
/// Row indices belonging to each group, parallel to [`GroupKeys`].
pub type GroupRows = Vec<Vec<usize>>;

/// Hash-partition rows by the values of `key_columns`.
///
/// Returns `(group_keys, group_rows)` where `group_rows[g]` lists the row
/// indices belonging to group `g`, in first-seen order (deterministic).
pub fn group_indices(
    table: &Table,
    key_columns: &[usize],
) -> Result<(GroupKeys, GroupRows)> {
    let mut map: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for row in 0..table.num_rows() {
        let mut key = Vec::with_capacity(key_columns.len());
        for &c in key_columns {
            key.push(table.value(row, c)?);
        }
        let g = *map.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(row);
    }
    Ok((keys, groups))
}

/// Aggregate function kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// COUNT(*) or COUNT(col) (nulls excluded when a column is given).
    Count,
    /// SUM of a numeric column (nulls skipped).
    Sum,
    /// Arithmetic mean (nulls skipped).
    Avg,
    /// Minimum (SQL semantics: nulls skipped).
    Min,
    /// Maximum.
    Max,
    /// Population standard deviation.
    StdDev,
    /// COUNT(DISTINCT col): number of distinct non-null values.
    CountDistinct,
}

impl AggKind {
    /// SQL name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::StdDev => "STDDEV",
            AggKind::CountDistinct => "COUNT_DISTINCT",
        }
    }
}

/// Apply an aggregate over the rows `rows` of column `col` in `table`.
/// `col = None` means `COUNT(*)`.
pub fn aggregate(table: &Table, rows: &[usize], kind: AggKind, col: Option<usize>) -> Result<Value> {
    let Some(c) = col else {
        return Ok(Value::Int(rows.len() as i64));
    };
    let column = table.column(c)?;
    match kind {
        AggKind::Count => {
            let n = rows.iter().filter(|&&r| column.is_valid(r)).count();
            Ok(Value::Int(n as i64))
        }
        AggKind::CountDistinct => {
            let mut distinct = std::collections::HashSet::new();
            for &r in rows {
                let v = column.value(r)?;
                if !v.is_null() {
                    distinct.insert(v);
                }
            }
            Ok(Value::Int(distinct.len() as i64))
        }
        AggKind::Sum | AggKind::Avg | AggKind::StdDev => {
            let mut vals: Vec<f64> = Vec::new();
            let mut all_int = true;
            for &r in rows {
                let v = column.value(r)?;
                if v.is_null() {
                    continue;
                }
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                match v.as_f64() {
                    Some(x) => vals.push(x),
                    None => {
                        return Err(crate::DataFrameError::UnsupportedType {
                            op: kind.name(),
                            ty: column.data_type().to_string(),
                        })
                    }
                }
            }
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = vals.iter().sum();
            Ok(match kind {
                AggKind::Sum => {
                    if all_int {
                        Value::Int(sum as i64)
                    } else {
                        Value::Float(sum)
                    }
                }
                AggKind::Avg => Value::Float(sum / vals.len() as f64),
                AggKind::StdDev => {
                    let mean = sum / vals.len() as f64;
                    let var =
                        vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / vals.len() as f64;
                    Value::Float(var.sqrt())
                }
                other => {
                    return Err(crate::DataFrameError::UnsupportedType {
                        op: other.name(),
                        ty: column.data_type().to_string(),
                    })
                }
            })
        }
        AggKind::Min | AggKind::Max => {
            let mut best: Option<Value> = None;
            for &r in rows {
                let v = column.value(r)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match kind {
                            AggKind::Min => v.total_cmp(&b) == std::cmp::Ordering::Less,
                            _ => v.total_cmp(&b) == std::cmp::Ordering::Greater,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Distinct row indices of `table` over `key_columns` (first occurrence kept).
pub fn distinct_indices(table: &Table, key_columns: &[usize]) -> Result<Vec<usize>> {
    let (_, groups) = group_indices(table, key_columns)?;
    Ok(groups.into_iter().map(|g| g[0]).collect())
}

// ---------------------------------------------------------------------------
// Vectorized kernels over `batch::Vector` (columnar batch execution engine).
//
// Every slot-level predicate below deliberately mirrors a `Value` method so
// the vectorized path is byte-identical to the row-at-a-time reference:
//   * `slot_sql_cmp`   ≡ `Value::sql_cmp`   (SQL 3VL comparison),
//   * `slot_total_cmp` ≡ `Value::total_cmp` (sort order),
//   * `slot_group_eq`  ≡ `Value::eq`        (group-by/distinct keys),
//   * the group hash   ≡ `Value::hash`      (same tag bytes, same f64 bits).
// ---------------------------------------------------------------------------

use crate::batch::{Slot, SlotAccess, Vector};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Comparison operator for the vectorized [`compare`] kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// SQL three-valued comparison of two slots (`None` = unknown), mirroring
/// [`Value::sql_cmp`] exactly: NULL compares unknown, strings and booleans
/// compare within their class, everything else through `f64` (`partial_cmp`,
/// so NaN is unknown).
pub fn slot_sql_cmp(a: Slot<'_>, b: Slot<'_>) -> Option<Ordering> {
    match (a, b) {
        (Slot::Null, _) | (_, Slot::Null) => None,
        (Slot::Str(x), Slot::Str(y)) => Some(x.cmp(y)),
        (Slot::Bool(x), Slot::Bool(y)) => Some(x.cmp(&y)),
        (x, y) => {
            let (x, y) = (x.as_f64()?, y.as_f64()?);
            x.partial_cmp(&y)
        }
    }
}

fn slot_rank(s: Slot<'_>) -> u8 {
    match s {
        Slot::Null => 0,
        Slot::Bool(_) => 1,
        Slot::Int(_) | Slot::Float(_) | Slot::Timestamp(_) => 2,
        Slot::Str(_) => 3,
    }
}

/// Total order over slots mirroring [`Value::total_cmp`]: NULL first, type
/// rank `Null < Bool < numeric < Str`, numerics by `f64::total_cmp` (NaN
/// last, `-0.0 < 0.0`).
pub fn slot_total_cmp(a: Slot<'_>, b: Slot<'_>) -> Ordering {
    let rank = slot_rank(a).cmp(&slot_rank(b));
    if rank != Ordering::Equal {
        return rank;
    }
    match (a, b) {
        (Slot::Null, Slot::Null) => Ordering::Equal,
        (Slot::Str(x), Slot::Str(y)) => x.cmp(y),
        (Slot::Bool(x), Slot::Bool(y)) => x.cmp(&y),
        (x, y) => {
            let x = x.as_f64().unwrap_or(f64::NAN);
            let y = y.as_f64().unwrap_or(f64::NAN);
            x.total_cmp(&y)
        }
    }
}

/// Structural (group-by key) equality, mirroring `Value::eq`: `NULL = NULL`,
/// numerics equal when their `f64` images are bit-identical, no cross-class
/// equality outside the numeric family.
pub fn slot_group_eq(a: Slot<'_>, b: Slot<'_>) -> bool {
    slot_total_cmp(a, b) == Ordering::Equal
        && match (a, b) {
            (Slot::Str(_), Slot::Str(_))
            | (Slot::Bool(_), Slot::Bool(_))
            | (Slot::Null, Slot::Null) => true,
            (x, y) => x.as_f64().is_some() && y.as_f64().is_some(),
        }
}

fn hash_slot_group<H: Hasher>(s: Slot<'_>, state: &mut H) {
    match s {
        Slot::Null => 0u8.hash(state),
        Slot::Str(v) => {
            1u8.hash(state);
            v.hash(state);
        }
        Slot::Bool(b) => {
            2u8.hash(state);
            b.hash(state);
        }
        v => {
            3u8.hash(state);
            let x = v.as_f64().unwrap_or(f64::NAN);
            x.to_bits().hash(state);
        }
    }
}

/// Hash of a group key (`keys[k].slot(row)` for every key vector), consistent
/// with [`slot_group_eq`] and with [`values_group_hash`].
pub fn group_key_hash<S: SlotAccess>(keys: &[S], row: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for k in keys {
        hash_slot_group(k.slot_at(row), &mut h);
    }
    h.finish()
}

/// Hash of a materialized group key, consistent with [`group_key_hash`]
/// (used when merging per-morsel group tables into the global one).
pub fn values_group_hash(key: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in key {
        hash_slot_group(Slot::from_value(v), &mut h);
    }
    h.finish()
}

/// True when the materialized key equals row `row` of the key vectors under
/// [`slot_group_eq`].
pub fn group_key_matches<S: SlotAccess>(key: &[Value], keys: &[S], row: usize) -> bool {
    key.len() == keys.len()
        && key.iter().zip(keys).all(|(v, k)| slot_group_eq(Slot::from_value(v), k.slot_at(row)))
}

/// Vectorized three-valued comparison: element-wise [`slot_sql_cmp`] mapped
/// through `op`. Never errors (comparison is total); unknown → NULL slot.
pub fn compare(l: &Vector, r: &Vector, op: CmpOp) -> Vector {
    let n = l.len().max(r.len());
    let mut data = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    for i in 0..n {
        match slot_sql_cmp(l.slot(i), r.slot(i)) {
            None => {
                data.push(false);
                validity.push(false);
            }
            Some(ord) => {
                let b = match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::NotEq => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::LtEq => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::GtEq => ord != Ordering::Less,
                };
                data.push(b);
                validity.push(true);
            }
        }
    }
    Vector::Bools { data, validity }
}

/// Hash-partition `len` rows by their key slots, first-seen order (the same
/// deterministic order `group_indices` produces row-at-a-time). Group keys
/// are materialized once per group, not once per row.
pub fn group_rows<S: SlotAccess>(keys: &[S], len: usize) -> (GroupKeys, GroupRows) {
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut out_keys: GroupKeys = Vec::new();
    let mut rows: GroupRows = Vec::new();
    for i in 0..len {
        let h = group_key_hash(keys, i);
        let candidates = buckets.entry(h).or_default();
        let found = candidates
            .iter()
            .copied()
            .find(|&g| group_key_matches(&out_keys[g], keys, i));
        let g = match found {
            Some(g) => g,
            None => {
                let g = out_keys.len();
                out_keys.push(keys.iter().map(|k| k.slot_at(i).to_value()).collect());
                rows.push(Vec::new());
                candidates.push(g);
                g
            }
        };
        rows[g].push(i);
    }
    (out_keys, rows)
}

/// A build-side hash table for vectorized equi-joins, keyed under SQL
/// equality semantics: rows whose key contains NULL (or a NaN numeric, which
/// `sql_eq` can never match) are excluded at build time; `-0.0` and `0.0`
/// normalize to the same key; `Int`/`Float`/`Timestamp` key through their
/// `f64` image so cross-type equi-keys match as `sql_cmp` does.
#[derive(Debug, Default)]
pub struct JoinHashTable {
    buckets: HashMap<u64, Vec<usize>>,
}

fn hash_slot_join<H: Hasher>(s: Slot<'_>, state: &mut H) -> bool {
    match s {
        Slot::Null => false,
        Slot::Str(v) => {
            1u8.hash(state);
            v.hash(state);
            true
        }
        Slot::Bool(b) => {
            2u8.hash(state);
            b.hash(state);
            true
        }
        v => match v.as_f64() {
            Some(x) if !x.is_nan() => {
                3u8.hash(state);
                let x = if x == 0.0 { 0.0 } else { x };
                x.to_bits().hash(state);
                true
            }
            _ => false,
        },
    }
}

/// Join-key hash of one row, or `None` when the row can never equi-match
/// (NULL or NaN in the key).
pub fn join_key_hash<S: SlotAccess>(keys: &[S], row: usize) -> Option<u64> {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for k in keys {
        if !hash_slot_join(k.slot_at(row), &mut h) {
            return None;
        }
    }
    Some(h.finish())
}

/// Build the hash table over `len` build-side rows.
pub fn build_join_table<S: SlotAccess>(keys: &[S], len: usize) -> JoinHashTable {
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for row in 0..len {
        if let Some(h) = join_key_hash(keys, row) {
            buckets.entry(h).or_default().push(row);
        }
    }
    JoinHashTable { buckets }
}

impl JoinHashTable {
    /// Candidate build rows for a probe hash, in ascending build-row order
    /// (insertion order — what makes hash-join output order deterministic).
    pub fn candidates(&self, hash: u64) -> &[usize] {
        self.buckets.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// Total number of indexed build rows.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when no build row was indexed.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// True when every key pair compares `sql_eq`-equal between build row `brow`
/// and probe row `prow` (verification after the hash lookup).
pub fn join_keys_match<B: SlotAccess, P: SlotAccess>(
    build: &[B],
    brow: usize,
    probe: &[P],
    prow: usize,
) -> bool {
    build
        .iter()
        .zip(probe)
        .all(|(b, p)| slot_sql_cmp(b.slot_at(brow), p.slot_at(prow)) == Some(Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn demo() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ]);
        Table::from_columns(
            schema,
            vec![
                Column::from_strs(&["a", "b", "a", "b", "a"]),
                Column::from_ints(&[3, 1, 2, 5, 4]),
                Column::from_opt_floats(&[Some(1.0), None, Some(3.0), Some(2.0), None]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sort_single_key_asc_desc() {
        let t = demo();
        let idx = sort_indices(&t, &[SortKey { column: 1, order: SortOrder::Asc }]).unwrap();
        assert_eq!(idx, vec![1, 2, 0, 4, 3]);
        let idx = sort_indices(&t, &[SortKey { column: 1, order: SortOrder::Desc }]).unwrap();
        assert_eq!(idx, vec![3, 4, 0, 2, 1]);
    }

    #[test]
    fn sort_multi_key_breaks_ties() {
        let t = demo();
        let idx = sort_indices(
            &t,
            &[
                SortKey { column: 0, order: SortOrder::Asc },
                SortKey { column: 1, order: SortOrder::Desc },
            ],
        )
        .unwrap();
        // group "a" first (rows 0,2,4 by x desc: 4,0,2), then "b" (3,1)
        assert_eq!(idx, vec![4, 0, 2, 3, 1]);
    }

    #[test]
    fn sort_nulls_first_ascending() {
        let t = demo();
        let idx = sort_indices(&t, &[SortKey { column: 2, order: SortOrder::Asc }]).unwrap();
        // rows 1 and 4 are NULL, stable order
        assert_eq!(&idx[..2], &[1, 4]);
    }

    #[test]
    fn grouping_is_deterministic_first_seen() {
        let t = demo();
        let (keys, groups) = group_indices(&t, &[0]).unwrap();
        assert_eq!(keys, vec![vec![Value::from("a")], vec![Value::from("b")]]);
        assert_eq!(groups, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn count_star_vs_count_col() {
        let t = demo();
        assert_eq!(aggregate(&t, &[0, 1, 2, 3, 4], AggKind::Count, None).unwrap(), Value::Int(5));
        // y has 2 nulls
        assert_eq!(aggregate(&t, &[0, 1, 2, 3, 4], AggKind::Count, Some(2)).unwrap(), Value::Int(3));
    }

    #[test]
    fn sum_avg_min_max_stddev() {
        let t = demo();
        let all = [0usize, 1, 2, 3, 4];
        assert_eq!(aggregate(&t, &all, AggKind::Sum, Some(1)).unwrap(), Value::Int(15));
        assert_eq!(aggregate(&t, &all, AggKind::Avg, Some(1)).unwrap(), Value::Float(3.0));
        assert_eq!(aggregate(&t, &all, AggKind::Min, Some(1)).unwrap(), Value::Int(1));
        assert_eq!(aggregate(&t, &all, AggKind::Max, Some(1)).unwrap(), Value::Int(5));
        let sd = aggregate(&t, &all, AggKind::StdDev, Some(1)).unwrap();
        let sd = sd.as_f64().unwrap();
        assert!((sd - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregates_skip_nulls_and_handle_empty() {
        let t = demo();
        let all = [0usize, 1, 2, 3, 4];
        // y sums over non-null {1,3,2}
        assert_eq!(aggregate(&t, &all, AggKind::Sum, Some(2)).unwrap(), Value::Float(6.0));
        // empty row set → SUM NULL, COUNT 0
        assert_eq!(aggregate(&t, &[], AggKind::Sum, Some(1)).unwrap(), Value::Null);
        assert_eq!(aggregate(&t, &[], AggKind::Count, Some(1)).unwrap(), Value::Int(0));
        assert_eq!(aggregate(&t, &[], AggKind::Min, Some(1)).unwrap(), Value::Null);
    }

    #[test]
    fn sum_of_strings_is_an_error() {
        let t = demo();
        assert!(aggregate(&t, &[0], AggKind::Sum, Some(0)).is_err());
    }

    #[test]
    fn min_max_work_on_strings() {
        let t = demo();
        assert_eq!(aggregate(&t, &[0, 1], AggKind::Min, Some(0)).unwrap(), Value::from("a"));
        assert_eq!(aggregate(&t, &[0, 1], AggKind::Max, Some(0)).unwrap(), Value::from("b"));
    }

    #[test]
    fn count_distinct_kernel() {
        let t = demo();
        let all = [0usize, 1, 2, 3, 4];
        // g column has values a,b,a,b,a → 2 distinct
        assert_eq!(aggregate(&t, &all, AggKind::CountDistinct, Some(0)).unwrap(), Value::Int(2));
        // y has nulls at rows 1 and 4; distinct over {1.0, 3.0, 2.0} = 3
        assert_eq!(aggregate(&t, &all, AggKind::CountDistinct, Some(2)).unwrap(), Value::Int(3));
        assert_eq!(aggregate(&t, &[], AggKind::CountDistinct, Some(0)).unwrap(), Value::Int(0));
    }

    #[test]
    fn distinct_keeps_first_occurrence() {
        let t = demo();
        let idx = distinct_indices(&t, &[0]).unwrap();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn agg_kind_names() {
        assert_eq!(AggKind::Sum.name(), "SUM");
        assert_eq!(AggKind::StdDev.name(), "STDDEV");
    }

    // -- vectorized kernels -------------------------------------------------

    fn ints(vals: &[Option<i64>]) -> Vector {
        Vector::from_values(vals.iter().map(|v| Value::from(*v)).collect())
    }

    #[test]
    fn slot_cmp_mirrors_value_cmp() {
        use crate::batch::Slot;
        for (a, b) in [
            (Value::Null, Value::Int(1)),
            (Value::Int(2), Value::Float(2.0)),
            (Value::from("a"), Value::Int(1)),
            (Value::Float(f64::NAN), Value::Float(1.0)),
            (Value::Bool(true), Value::Bool(false)),
            (Value::from("x"), Value::from("y")),
            (Value::Timestamp(5), Value::Int(4)),
        ] {
            assert_eq!(
                slot_sql_cmp(Slot::from_value(&a), Slot::from_value(&b)),
                a.sql_cmp(&b),
                "sql_cmp mismatch for {a:?} vs {b:?}"
            );
            assert_eq!(
                slot_total_cmp(Slot::from_value(&a), Slot::from_value(&b)),
                a.total_cmp(&b),
                "total_cmp mismatch for {a:?} vs {b:?}"
            );
            assert_eq!(
                slot_group_eq(Slot::from_value(&a), Slot::from_value(&b)),
                a == b,
                "group eq mismatch for {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn compare_kernel_three_valued() {
        let l = ints(&[Some(1), None, Some(3)]);
        let r = ints(&[Some(2), Some(2), Some(3)]);
        let out = compare(&l, &r, CmpOp::Lt);
        assert_eq!(out.value(0), Value::Bool(true));
        assert_eq!(out.value(1), Value::Null);
        assert_eq!(out.value(2), Value::Bool(false));
        let eq = compare(&l, &r, CmpOp::GtEq);
        assert_eq!(eq.value(2), Value::Bool(true));
    }

    #[test]
    fn group_rows_first_seen_and_numeric_conflation() {
        // Int(1) and Float(1.0) are the same group key (Value::eq semantics);
        // NULL groups with NULL.
        let k = Vector::from_values(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::Null,
            Value::Int(2),
            Value::Null,
        ]);
        let (keys, rows) = group_rows(&[k], 5);
        assert_eq!(keys.len(), 3);
        assert_eq!(rows, vec![vec![0, 1], vec![2, 4], vec![3]]);
        assert_eq!(keys[0], vec![Value::Int(1)]);
        assert_eq!(keys[1], vec![Value::Null]);
    }

    #[test]
    fn group_hashes_consistent_between_slots_and_values() {
        let k = Vector::from_values(vec![Value::Float(2.0)]);
        assert_eq!(group_key_hash(&[k], 0), values_group_hash(&[Value::Int(2)]));
    }

    #[test]
    fn join_table_skips_null_and_nan_keys() {
        let build = Vector::from_values(vec![
            Value::Int(1),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Int(1),
        ]);
        let t = build_join_table(std::slice::from_ref(&build), 4);
        assert_eq!(t.len(), 2);
        let probe = Vector::from_values(vec![Value::Float(1.0), Value::Null]);
        let h = join_key_hash(std::slice::from_ref(&probe), 0).unwrap();
        let cands = t.candidates(h);
        assert_eq!(cands, &[0, 3]);
        assert!(join_keys_match(&[build], 0, std::slice::from_ref(&probe), 0));
        assert_eq!(join_key_hash(&[probe], 1), None);
    }

    #[test]
    fn join_hash_normalizes_signed_zero() {
        let a = Vector::from_values(vec![Value::Float(-0.0)]);
        let b = Vector::from_values(vec![Value::Float(0.0)]);
        assert_eq!(
            join_key_hash(std::slice::from_ref(&a), 0),
            join_key_hash(std::slice::from_ref(&b), 0)
        );
        assert!(join_keys_match(&[a], 0, &[b], 0));
    }
}
