//! Clock-replacement buffer pool.
//!
//! A fixed set of frames caches page images between the [`FileBackend`]'s
//! logical operations and the disk manager. Pages are pinned while a caller
//! holds a frame index, given a second chance via a reference bit when the
//! clock hand sweeps past, and written back on eviction only when dirty.
//! `flush_all` writes dirty frames in ascending page order, which keeps the
//! physical write sequence of a commit deterministic — the crash-recovery
//! sweep depends on that to enumerate every page-write boundary.
//!
//! [`FileBackend`]: crate::file::FileBackend

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::{Result, StorageError};
use std::collections::HashMap;

/// Buffer pool counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the disk.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back (eviction + flush).
    pub writebacks: u64,
}

impl PoolStats {
    /// Fraction of fetches served from memory (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    pid: PageId,
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// A fixed-capacity page cache with clock replacement.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool with `capacity` frames (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::new(),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Number of frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Pin page `pid`, reading (and checksum-verifying) it from disk on a
    /// miss. Returns the frame index.
    pub fn fetch(&mut self, disk: &mut DiskManager, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            if let Some(f) = self.frames[idx].as_mut() {
                f.pins += 1;
                f.referenced = true;
            }
            return Ok(idx);
        }
        self.stats.misses += 1;
        let page = disk.read_page(pid)?;
        page.verify(pid)?;
        self.install(disk, pid, page, false)
    }

    /// Pin a zeroed frame for a freshly allocated page without touching the
    /// disk. Any stale frame for `pid` (a previous life of a recycled page)
    /// is discarded.
    pub fn create(&mut self, disk: &mut DiskManager, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&pid) {
            if let Some(f) = self.frames[idx].as_mut() {
                f.page = Page::zeroed();
                f.dirty = false;
                f.pins += 1;
                f.referenced = true;
            }
            return Ok(idx);
        }
        self.install(disk, pid, Page::zeroed(), false)
    }

    fn install(&mut self, disk: &mut DiskManager, pid: PageId, page: Page, dirty: bool) -> Result<usize> {
        let idx = self.victim(disk)?;
        if let Some(old) = self.frames[idx].take() {
            self.map.remove(&old.pid);
        }
        self.map.insert(pid, idx);
        self.frames[idx] = Some(Frame { pid, page, dirty, pins: 1, referenced: true });
        Ok(idx)
    }

    /// Clock sweep: skip pinned frames, clear one reference bit per pass,
    /// evict the first unreferenced unpinned frame (writing it back if
    /// dirty).
    fn victim(&mut self, disk: &mut DiskManager) -> Result<usize> {
        let cap = self.frames.len();
        for _ in 0..2 * cap + 1 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % cap;
            match self.frames[idx].as_mut() {
                None => return Ok(idx),
                Some(f) if f.pins > 0 => continue,
                Some(f) if f.referenced => f.referenced = false,
                Some(f) => {
                    if f.dirty {
                        disk.write_page(f.pid, &f.page)?;
                        self.stats.writebacks += 1;
                    }
                    self.stats.evictions += 1;
                    let old = self.frames[idx].take();
                    if let Some(old) = old {
                        self.map.remove(&old.pid);
                    }
                    return Ok(idx);
                }
            }
        }
        Err(StorageError::Io("buffer pool exhausted: every frame is pinned".into()))
    }

    /// Immutable view of a pinned frame's page.
    #[must_use]
    pub fn page(&self, idx: usize) -> &Page {
        match self.frames[idx].as_ref() {
            Some(f) => &f.page,
            None => unreachable_page(),
        }
    }

    /// Mutable view of a pinned frame's page. Callers seal the page and
    /// pass `dirty = true` to [`BufferPool::unpin`].
    pub fn page_mut(&mut self, idx: usize) -> &mut Page {
        match self.frames[idx].as_mut() {
            Some(f) => &mut f.page,
            None => unreachable_page_mut(),
        }
    }

    /// Release a pin, optionally marking the frame dirty.
    pub fn unpin(&mut self, idx: usize, dirty: bool) {
        if let Some(f) = self.frames[idx].as_mut() {
            f.pins = f.pins.saturating_sub(1);
            f.dirty |= dirty;
        }
    }

    /// Discard any frame caching `pid` without writing it back. Used when a
    /// page is logically freed: its bytes are garbage by definition.
    pub fn drop_page(&mut self, pid: PageId) {
        if let Some(idx) = self.map.remove(&pid) {
            self.frames[idx] = None;
        }
    }

    /// Write every dirty frame back, in ascending page order (deterministic
    /// physical write sequence), leaving all frames resident and clean.
    pub fn flush_all(&mut self, disk: &mut DiskManager) -> Result<()> {
        let mut dirty: Vec<usize> = self
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().filter(|f| f.dirty).map(|_| i))
            .collect();
        dirty.sort_by_key(|&i| self.frames[i].as_ref().map(|f| f.pid));
        for idx in dirty {
            if let Some(f) = self.frames[idx].as_mut() {
                disk.write_page(f.pid, &f.page)?;
                self.stats.writebacks += 1;
                f.dirty = false;
            }
        }
        Ok(())
    }
}

/// Accessing an unpinned frame index is a caller bug; surface it loudly in
/// debug builds and as an empty page reference never exposed on product
/// paths (indices are handed out pinned and used immediately).
fn unreachable_page() -> &'static Page {
    debug_assert!(false, "frame index used after eviction");
    static EMPTY: std::sync::OnceLock<Page> = std::sync::OnceLock::new();
    EMPTY.get_or_init(Page::zeroed)
}

fn unreachable_page_mut<'a>() -> &'a mut Page {
    debug_assert!(false, "frame index used after eviction");
    Box::leak(Box::new(Page::zeroed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use std::path::{Path, PathBuf};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cda-storage-pool-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn seeded_disk(path: &Path, pages: u64) -> DiskManager {
        let mut d = DiskManager::open(path).unwrap();
        for pid in 0..pages {
            let p = Page::from_payload(format!("page {pid}").as_bytes()).unwrap();
            d.write_page(pid, &p).unwrap();
        }
        d
    }

    #[test]
    fn repeated_fetch_hits_memory() {
        let path = tmp("hits");
        let mut d = seeded_disk(&path, 3);
        let mut pool = BufferPool::new(4);
        for _ in 0..5 {
            let idx = pool.fetch(&mut d, 1).unwrap();
            assert_eq!(&pool.page(idx).payload()[..6], b"page 1");
            pool.unpin(idx, false);
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (4, 1));
        assert!(s.hit_rate() > 0.7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let path = tmp("dirty");
        let mut d = seeded_disk(&path, 6);
        let mut pool = BufferPool::new(2);
        let idx = pool.fetch(&mut d, 0).unwrap();
        let page = pool.page_mut(idx);
        page.payload_mut()[..7].copy_from_slice(b"edited!");
        page.seal();
        pool.unpin(idx, true);
        // Two more distinct fetches force page 0 out of the 2-frame pool.
        for pid in 1..=4 {
            let i = pool.fetch(&mut d, pid).unwrap();
            pool.unpin(i, false);
        }
        assert!(pool.stats().writebacks >= 1);
        let back = d.read_page(0).unwrap();
        back.verify(0).unwrap();
        assert_eq!(&back.payload()[..7], b"edited!");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_frames_survive_the_clock() {
        let path = tmp("pin");
        let mut d = seeded_disk(&path, 8);
        let mut pool = BufferPool::new(2);
        let pinned = pool.fetch(&mut d, 7).unwrap();
        for pid in 0..6 {
            let i = pool.fetch(&mut d, pid).unwrap();
            pool.unpin(i, false);
        }
        assert_eq!(&pool.page(pinned).payload()[..6], b"page 7");
        pool.unpin(pinned, false);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let path = tmp("full");
        let mut d = seeded_disk(&path, 4);
        let mut pool = BufferPool::new(2);
        let _a = pool.fetch(&mut d, 0).unwrap();
        let _b = pool.fetch(&mut d, 1).unwrap();
        assert!(pool.fetch(&mut d, 2).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_all_clears_dirt_in_page_order() {
        let path = tmp("flush");
        let mut d = seeded_disk(&path, 4);
        let mut pool = BufferPool::new(4);
        for pid in [3u64, 1, 2] {
            let i = pool.fetch(&mut d, pid).unwrap();
            let pg = pool.page_mut(i);
            pg.payload_mut()[0] = b'D';
            pg.seal();
            pool.unpin(i, true);
        }
        let before = d.writes_done();
        pool.flush_all(&mut d).unwrap();
        assert_eq!(d.writes_done() - before, 3);
        pool.flush_all(&mut d).unwrap();
        assert_eq!(d.writes_done() - before, 3, "second flush writes nothing");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_page_discards_without_writeback() {
        let path = tmp("drop");
        let mut d = seeded_disk(&path, 2);
        let mut pool = BufferPool::new(2);
        let i = pool.fetch(&mut d, 1).unwrap();
        let pg = pool.page_mut(i);
        pg.payload_mut()[0] = b'X';
        pg.seal();
        pool.unpin(i, true);
        pool.drop_page(1);
        let before = d.writes_done();
        pool.flush_all(&mut d).unwrap();
        assert_eq!(d.writes_done(), before);
        let back = d.read_page(1).unwrap();
        assert_eq!(&back.payload()[..6], b"page 1", "disk keeps the old bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_resets_recycled_page_ids() {
        let path = tmp("create");
        let mut d = seeded_disk(&path, 2);
        let mut pool = BufferPool::new(2);
        let i = pool.fetch(&mut d, 1).unwrap();
        pool.unpin(i, false);
        let j = pool.create(&mut d, 1).unwrap();
        assert_eq!(pool.page(j).payload(), &[0u8; PAGE_SIZE - 8][..]);
        pool.unpin(j, false);
        let _ = std::fs::remove_file(&path);
    }
}
