//! Exact brute-force kNN — the correctness baseline of experiment E1 and the
//! ground-truth generator for recall computation.

use crate::metrics::Distance;
use crate::{Neighbor, SearchStats, VectorIndex, VectorSet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A max-heap entry so `BinaryHeap` keeps the *worst* current neighbor on top.
#[derive(Debug, PartialEq)]
struct HeapEntry(Neighbor);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.dist.total_cmp(&other.0.dist).then(self.0.id.cmp(&other.0.id))
    }
}

/// Maintain the k nearest seen so far with a bounded max-heap.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// New collector for `k` results.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offer a candidate; kept only if it improves the top-k.
    pub fn push(&mut self, n: Neighbor) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(n));
        } else if let Some(worst) = self.heap.peek() {
            if n.dist < worst.0.dist {
                self.heap.pop();
                self.heap.push(HeapEntry(n));
            }
        }
    }

    /// Current k-th (worst retained) distance, or `INFINITY` while unfilled.
    pub fn kth_dist(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |e| e.0.dist)
        }
    }

    /// Number of retained neighbors.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Extract results sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out
    }
}

/// Brute-force index (no preprocessing — the "build" is a no-op, kept for
/// interface symmetry).
#[derive(Debug, Clone)]
pub struct ExactIndex {
    metric: Distance,
}

impl ExactIndex {
    /// Build (trivially) over a dataset with the default metric.
    pub fn build(_data: &VectorSet) -> Self {
        Self { metric: Distance::default() }
    }

    /// Build with an explicit metric.
    pub fn with_metric(metric: Distance) -> Self {
        Self { metric }
    }

    /// Search with statistics.
    pub fn search_with_stats(
        &self,
        data: &VectorSet,
        query: &[f32],
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        for (i, v) in data.iter().enumerate() {
            top.push(Neighbor::new(i, self.metric.compute(query, v)));
        }
        let stats = SearchStats { distance_evals: data.len(), visited: data.len(), early_stop: false };
        (top.into_sorted(), stats)
    }
}

impl VectorIndex for ExactIndex {
    fn search(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(data, query, k).0
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn finds_nearest_in_order() {
        let idx = ExactIndex::build(&data());
        let hits = idx.search(&data(), &[0.9, 0.1], 3);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0, 2]);
        assert!(hits[0].dist <= hits[1].dist && hits[1].dist <= hits[2].dist);
    }

    #[test]
    fn k_larger_than_data_returns_all() {
        let idx = ExactIndex::build(&data());
        let hits = idx.search(&data(), &[0.0, 0.0], 10);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let idx = ExactIndex::build(&data());
        assert!(idx.search(&data(), &[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn stats_count_all_evals() {
        let idx = ExactIndex::build(&data());
        let (_, stats) = idx.search_with_stats(&data(), &[0.0, 0.0], 2);
        assert_eq!(stats.distance_evals, 4);
        assert!(!stats.early_stop);
    }

    #[test]
    fn cosine_metric_changes_ranking() {
        let d = VectorSet::from_rows(vec![vec![10.0, 0.0], vec![0.2, 0.2]]).unwrap();
        let l2 = ExactIndex::with_metric(Distance::SquaredEuclidean);
        let cos = ExactIndex::with_metric(Distance::Cosine);
        let q = [1.0, 1.0];
        assert_eq!(l2.search(&d, &q, 1)[0].id, 1);
        assert_eq!(cos.search(&d, &q, 1)[0].id, 1);
        let q = [1.0, 0.0];
        assert_eq!(cos.search(&d, &q, 1)[0].id, 0); // same direction
    }

    #[test]
    fn topk_kth_dist_transitions() {
        let mut t = TopK::new(2);
        assert_eq!(t.kth_dist(), f32::INFINITY);
        t.push(Neighbor::new(0, 5.0));
        assert_eq!(t.kth_dist(), f32::INFINITY); // not full yet
        t.push(Neighbor::new(1, 3.0));
        assert_eq!(t.kth_dist(), 5.0);
        t.push(Neighbor::new(2, 1.0));
        assert_eq!(t.kth_dist(), 3.0);
        assert_eq!(t.len(), 2);
        let sorted = t.into_sorted();
        assert_eq!(sorted.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 1]);
    }
}
