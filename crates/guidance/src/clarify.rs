//! Active clarification by expected information gain.
//!
//! The user's analytical goal is latent. The system maintains a belief (a
//! distribution over candidate goals), and each candidate clarification
//! question partitions the goals by its possible answers. The question with
//! the highest **expected information gain** — prior entropy minus expected
//! posterior entropy — is asked first, which is the formal version of the
//! paper's "actively probe the next question to ask with the goal of
//! improving the answer certainty" (its active-search citation \[29\]).

use crate::{GuidanceError, Result};
use std::collections::HashMap;

/// A belief over candidate user goals.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalBelief {
    /// (goal id, probability), kept normalized.
    probs: Vec<(String, f64)>,
}

impl GoalBelief {
    /// Uniform belief over goals.
    pub fn uniform(goals: &[&str]) -> Result<Self> {
        if goals.is_empty() {
            return Err(GuidanceError::NoCandidates);
        }
        let p = 1.0 / goals.len() as f64;
        Ok(Self { probs: goals.iter().map(|g| ((*g).to_owned(), p)).collect() })
    }

    /// Belief with explicit weights (normalized; non-positive total is an
    /// error).
    pub fn weighted(goals: Vec<(String, f64)>) -> Result<Self> {
        let total: f64 = goals.iter().map(|(_, w)| w.max(0.0)).sum();
        if goals.is_empty() || total <= 0.0 {
            return Err(GuidanceError::NoCandidates);
        }
        Ok(Self {
            probs: goals.into_iter().map(|(g, w)| (g, w.max(0.0) / total)).collect(),
        })
    }

    /// Probability of a goal (0 if unknown).
    pub fn prob(&self, goal: &str) -> f64 {
        self.probs.iter().find(|(g, _)| g == goal).map_or(0.0, |(_, p)| *p)
    }

    /// Shannon entropy (bits).
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(_, p)| p * p.log2())
            .sum::<f64>()
    }

    /// The goals (with probabilities), most likely first.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut out = self.probs.clone();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// The maximum-probability goal.
    pub fn map_goal(&self) -> &str {
        self.probs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or("", |top| top.0.as_str())
    }

    /// Condition on "the answer to `question` was `answer`": goals whose
    /// mapped answer differs are zeroed; the rest renormalized.
    pub fn condition(&self, question: &ClarificationQuestion, answer: &str) -> Result<GoalBelief> {
        let kept: Vec<(String, f64)> = self
            .probs
            .iter()
            .filter(|(g, _)| question.answer_for(g) == Some(answer))
            .cloned()
            .collect();
        GoalBelief::weighted(kept).map_err(|_| GuidanceError::UnknownGoal(answer.to_owned()))
    }
}

/// A clarification question: maps each goal to the answer the user would
/// give if that goal were theirs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClarificationQuestion {
    /// The question text.
    pub text: String,
    /// goal id → answer label.
    answers: HashMap<String, String>,
}

impl ClarificationQuestion {
    /// Build from `(goal, answer)` pairs.
    pub fn new(text: impl Into<String>, answers: Vec<(&str, &str)>) -> Self {
        Self {
            text: text.into(),
            answers: answers
                .into_iter()
                .map(|(g, a)| (g.to_owned(), a.to_owned()))
                .collect(),
        }
    }

    /// The answer a user with `goal` would give.
    pub fn answer_for(&self, goal: &str) -> Option<&str> {
        self.answers.get(goal).map(String::as_str)
    }

    /// Expected information gain of asking this question under `belief`.
    pub fn information_gain(&self, belief: &GoalBelief) -> f64 {
        // P(answer) = Σ_goals with that answer P(goal)
        let mut by_answer: HashMap<&str, f64> = HashMap::new();
        for (goal, p) in &belief.probs {
            if let Some(a) = self.answer_for(goal) {
                *by_answer.entry(a).or_insert(0.0) += p;
            }
        }
        let h_prior = belief.entropy();
        let mut expected_posterior = 0.0;
        for (answer, p_answer) in &by_answer {
            if *p_answer <= 0.0 {
                continue;
            }
            if let Ok(post) = belief.condition(self, answer) {
                expected_posterior += p_answer * post.entropy();
            }
        }
        (h_prior - expected_posterior).max(0.0)
    }
}

/// Choose the question with the highest expected information gain.
pub fn best_question<'q>(
    belief: &GoalBelief,
    questions: &'q [ClarificationQuestion],
) -> Result<(&'q ClarificationQuestion, f64)> {
    questions
        .iter()
        .map(|q| (q, q.information_gain(belief)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .ok_or(GuidanceError::NoCandidates)
}

/// Simulate a clarification dialogue: a user with `true_goal` answers EIG-
/// selected questions until the belief concentrates above `confidence` on a
/// single goal or questions run out. Returns (turns used, final MAP goal).
/// With `eig_policy = false`, questions are asked in the given (arbitrary)
/// order — the passive baseline of experiment E8.
pub fn simulate_dialogue(
    belief: &GoalBelief,
    questions: &[ClarificationQuestion],
    true_goal: &str,
    confidence: f64,
    eig_policy: bool,
) -> (usize, String) {
    let mut belief = belief.clone();
    let mut remaining: Vec<&ClarificationQuestion> = questions.iter().collect();
    let mut turns = 0usize;
    while belief.prob(belief.map_goal()) < confidence && !remaining.is_empty() {
        let idx = if eig_policy {
            let mut best = 0usize;
            let mut best_gain = f64::NEG_INFINITY;
            for (i, q) in remaining.iter().enumerate() {
                let g = q.information_gain(&belief);
                if g > best_gain {
                    best_gain = g;
                    best = i;
                }
            }
            best
        } else {
            0
        };
        let q = remaining.remove(idx);
        turns += 1;
        if let Some(answer) = q.answer_for(true_goal) {
            if let Ok(next) = belief.condition(q, answer) {
                belief = next;
            }
        }
    }
    (turns, belief.map_goal().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goals() -> Vec<&'static str> {
        vec!["employment_stats", "barometer_trend", "wage_analysis", "unemployment_rate"]
    }

    fn questions() -> Vec<ClarificationQuestion> {
        vec![
            // splits 2/2 — one bit
            ClarificationQuestion::new(
                "Are you interested in levels or trends?",
                vec![
                    ("employment_stats", "levels"),
                    ("wage_analysis", "levels"),
                    ("barometer_trend", "trends"),
                    ("unemployment_rate", "trends"),
                ],
            ),
            // splits 1/3 — less informative under uniform prior
            ClarificationQuestion::new(
                "Is this about wages specifically?",
                vec![
                    ("employment_stats", "no"),
                    ("wage_analysis", "yes"),
                    ("barometer_trend", "no"),
                    ("unemployment_rate", "no"),
                ],
            ),
            // second binary split, orthogonal to the first
            ClarificationQuestion::new(
                "Monthly indicator or yearly statistics?",
                vec![
                    ("employment_stats", "yearly"),
                    ("wage_analysis", "yearly"),
                    ("barometer_trend", "monthly"),
                    ("unemployment_rate", "monthly"),
                ],
            ),
            // distinguishes within the trends branch
            ClarificationQuestion::new(
                "Survey-based or registry-based?",
                vec![
                    ("employment_stats", "registry"),
                    ("wage_analysis", "survey"),
                    ("barometer_trend", "survey"),
                    ("unemployment_rate", "registry"),
                ],
            ),
        ]
    }

    #[test]
    fn uniform_entropy() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        assert!((b.entropy() - 2.0).abs() < 1e-12);
        assert!(GoalBelief::uniform(&[]).is_err());
    }

    #[test]
    fn balanced_question_gains_one_bit() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        let qs = questions();
        let gain = qs[0].information_gain(&b);
        assert!((gain - 1.0).abs() < 1e-9, "gain {gain}");
        // the 1/3 split gains less
        assert!(qs[1].information_gain(&b) < gain);
    }

    #[test]
    fn best_question_is_the_balanced_one() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        let qs = questions();
        let (q, gain) = best_question(&b, &qs).unwrap();
        // three of the questions are perfect one-bit splits; any may win
        assert!(!q.text.contains("wages specifically"), "1/3 split must not win: {}", q.text);
        assert!((gain - 1.0).abs() < 1e-9);
        assert!(best_question(&b, &[]).is_err());
    }

    #[test]
    fn conditioning_renormalizes() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        let qs = questions();
        let post = b.condition(&qs[0], "trends").unwrap();
        assert_eq!(post.prob("barometer_trend"), 0.5);
        assert_eq!(post.prob("employment_stats"), 0.0);
        assert!((post.entropy() - 1.0).abs() < 1e-12);
        // impossible answer is an error
        assert!(b.condition(&qs[0], "purple").is_err());
    }

    #[test]
    fn eig_dialogue_identifies_goal_in_two_turns() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        let qs = questions();
        for goal in goals() {
            let (turns, found) = simulate_dialogue(&b, &qs, goal, 0.95, true);
            assert_eq!(found, goal);
            assert!(turns <= 2, "goal {goal} took {turns} turns");
        }
    }

    #[test]
    fn eig_policy_is_no_slower_than_fixed_order() {
        let b = GoalBelief::uniform(&goals()).unwrap();
        let qs = questions();
        let mut eig_total = 0usize;
        let mut fixed_total = 0usize;
        for goal in goals() {
            eig_total += simulate_dialogue(&b, &qs, goal, 0.95, true).0;
            fixed_total += simulate_dialogue(&b, &qs, goal, 0.95, false).0;
        }
        assert!(eig_total <= fixed_total, "eig {eig_total} vs fixed {fixed_total}");
    }

    #[test]
    fn weighted_belief_and_map() {
        let b = GoalBelief::weighted(vec![
            ("a".into(), 3.0),
            ("b".into(), 1.0),
        ])
        .unwrap();
        assert_eq!(b.prob("a"), 0.75);
        assert_eq!(b.map_goal(), "a");
        assert_eq!(b.ranked()[0].0, "a");
        assert!(GoalBelief::weighted(vec![("a".into(), 0.0)]).is_err());
    }
}
