//! Recursive-descent SQL parser.
//!
//! Grammar (classic precedence climbing for expressions):
//!
//! ```text
//! select     := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
//!               [GROUP BY expr_list] [HAVING expr]
//!               [ORDER BY order_list] [LIMIT int [OFFSET int]] [;]
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | predicate
//! predicate  := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
//! additive   := multiplicative ((+|-) multiplicative)*
//! mult       := unary ((*|/|%) unary)*
//! unary      := - unary | primary
//! primary    := literal | column | aggregate | CASE | ( expr )
//! ```

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};
use crate::Result;
use cda_dataframe::kernels::AggKind;
use cda_dataframe::Value;

/// Parse a single SELECT statement.
pub fn parse(sql: &str) -> Result<Select> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.parse_select()?;
    p.eat_symbol(";");
    if !p.at_end() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(select)
}

/// Parse any supported statement: SELECT, INSERT, UPDATE, or DELETE.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.peek_keyword("SELECT") {
        Statement::Select(p.parse_select()?)
    } else if p.peek_keyword("INSERT") {
        Statement::Insert(p.parse_insert()?)
    } else if p.peek_keyword("UPDATE") {
        Statement::Update(p.parse_update()?)
    } else if p.peek_keyword("DELETE") {
        Statement::Delete(p.parse_delete()?)
    } else {
        return Err(p.error(format!(
            "expected SELECT, INSERT, UPDATE, or DELETE, found {}",
            p.describe_current()
        )));
    };
    p.eat_symbol(";");
    if !p.at_end() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse { position: self.pos, message: message.into() }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {}", self.describe_current())))
        }
    }

    fn peek_symbol(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.peek_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}, found {}", self.describe_current())))
        }
    }

    fn describe_current(&self) -> String {
        self.peek().map_or_else(|| "end of input".to_owned(), |t| format!("{t}"))
    }

    fn parse_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                Err(self.error(format!("expected identifier, found {}", self.describe_current())))
            }
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(",") {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("LEFT") {
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join { table, kind, on });
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_symbol(",") {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let direction = if self.eat_keyword("DESC") {
                    OrderDirection::Desc
                } else {
                    self.eat_keyword("ASC");
                    OrderDirection::Asc
                };
                order_by.push(OrderByItem { expr, direction });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") { Some(self.parse_usize()?) } else { None };
        let offset = if self.eat_keyword("OFFSET") { Some(self.parse_usize()?) } else { None };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_insert(&mut self) -> Result<Insert> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.parse_ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol("(") {
            loop {
                columns.push(self.parse_ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Insert { table, columns, rows })
    }

    fn parse_update(&mut self) -> Result<Update> {
        self.expect_keyword("UPDATE")?;
        let table = self.parse_ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let column = self.parse_ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_expr()?;
            sets.push((column, value));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Update { table, sets, filter })
    }

    fn parse_delete(&mut self) -> Result<Delete> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.parse_ident()?;
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Delete { table, filter })
    }

    fn parse_usize(&mut self) -> Result<usize> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as usize),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected a non-negative integer"))
            }
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.parse_ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // bare alias: SELECT a b FROM ...
            Some(self.parse_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.parse_ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(_)) => Some(self.parse_ident()?),
            Some(Token::Keyword(k)) if k == "AS" => {
                self.pos += 1;
                Some(self.parse_ident()?)
            }
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    /// Entry point for expressions.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let expr = self.parse_additive()?;
        // optional postfix predicates
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(",") {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { expr: Box::new(expr), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(expr),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("LIKE expects a string literal pattern"));
                }
            };
            return Ok(Expr::Like { expr: Box::new(expr), pattern, negated });
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN, or LIKE after NOT"));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(expr), negated });
        }
        // comparisons
        let op = if self.eat_symbol("=") {
            Some(BinaryOp::Eq)
        } else if self.eat_symbol("<>") || self.eat_symbol("!=") {
            Some(BinaryOp::NotEq)
        } else if self.eat_symbol("<=") {
            Some(BinaryOp::LtEq)
        } else if self.eat_symbol(">=") {
            Some(BinaryOp::GtEq)
        } else if self.eat_symbol("<") {
            Some(BinaryOp::Lt)
        } else if self.eat_symbol(">") {
            Some(BinaryOp::Gt)
        } else {
            None
        };
        if let Some(op) = op {
            let right = self.parse_additive()?;
            return Ok(Expr::binary(expr, op, right));
        }
        Ok(expr)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinaryOp::Add
            } else if self.eat_symbol("-") {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinaryOp::Mul
            } else if self.eat_symbol("/") {
                BinaryOp::Div
            } else if self.eat_symbol("%") {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if k == "CASE" => self.parse_case(),
            Some(Token::Keyword(k)) if is_aggregate(&k) => self.parse_aggregate(&k),
            Some(Token::Symbol("(")) => {
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Ident(first)) => {
                if self.eat_symbol(".") {
                    let name = self.parse_ident()?;
                    Ok(Expr::Column { table: Some(first), name })
                } else {
                    Ok(Expr::Column { table: None, name: first })
                }
            }
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                Err(self.error(format!("expected expression, found {}", self.describe_current())))
            }
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let val = self.parse_expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr =
            if self.eat_keyword("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { branches, else_expr })
    }

    fn parse_aggregate(&mut self, kw: &str) -> Result<Expr> {
        let kind = match kw {
            "COUNT" => AggKind::Count,
            "SUM" => AggKind::Sum,
            "AVG" => AggKind::Avg,
            "MIN" => AggKind::Min,
            "MAX" => AggKind::Max,
            "STDDEV" => AggKind::StdDev,
            _ => return Err(self.error("unknown aggregate")),
        };
        self.expect_symbol("(")?;
        let arg = if self.eat_symbol("*") {
            if kind != AggKind::Count {
                return Err(self.error("only COUNT accepts *"));
            }
            None
        } else {
            let distinct = self.eat_keyword("DISTINCT");
            if distinct && kind != AggKind::Count {
                return Err(self.error("DISTINCT inside an aggregate is only supported for COUNT"));
            }
            let kind_changed = distinct;
            let inner = Box::new(self.parse_expr()?);
            if kind_changed {
                self.expect_symbol(")")?;
                return Ok(Expr::Aggregate { kind: AggKind::CountDistinct, arg: Some(inner) });
            }
            Some(inner)
        };
        self.expect_symbol(")")?;
        Ok(Expr::Aggregate { kind, arg })
    }
}

fn is_aggregate(kw: &str) -> bool {
    matches!(kw, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "STDDEV")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse("SELECT a FROM t").unwrap();
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.name, "t");
        assert!(!s.distinct);
    }

    #[test]
    fn select_distinct_wildcard() {
        let s = parse("SELECT DISTINCT * FROM t;").unwrap();
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn aliases_as_and_bare() {
        let s = parse("SELECT a AS x, b y FROM t u").unwrap();
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            _ => panic!(),
        }
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("y")),
            _ => panic!(),
        }
        assert_eq!(s.from.alias.as_deref(), Some("u"));
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT a FROM t WHERE a + b * 2 > 10 AND c = 'x' OR d").unwrap();
        let w = s.where_clause.unwrap().to_string();
        assert_eq!(w, "((((a + (b * 2)) > 10) AND (c = 'x')) OR d)");
    }

    #[test]
    fn comparison_chain_and_unary_minus() {
        let s = parse("SELECT a FROM t WHERE -a <= -2.5").unwrap();
        assert_eq!(s.where_clause.unwrap().to_string(), "((-a) <= (-2.5))");
    }

    #[test]
    fn in_between_like_is_null() {
        let s = parse(
            "SELECT a FROM t WHERE a IN (1, 2) AND b NOT IN (3) AND c BETWEEN 1 AND 5 \
             AND d LIKE 'Z%' AND e IS NOT NULL AND f IS NULL",
        )
        .unwrap();
        let w = s.where_clause.unwrap().to_string();
        assert!(w.contains("a IN (1, 2)"));
        assert!(w.contains("b NOT IN (3)"));
        assert!(w.contains("c BETWEEN 1 AND 5"));
        assert!(w.contains("d LIKE 'Z%'"));
        assert!(w.contains("e IS NOT NULL"));
        assert!(w.contains("f IS NULL"));
    }

    #[test]
    fn not_between() {
        let s = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2").unwrap();
        assert!(s.where_clause.unwrap().to_string().contains("NOT BETWEEN"));
    }

    #[test]
    fn aggregates_and_group_by_having() {
        let s = parse(
            "SELECT g, COUNT(*), SUM(x) AS s FROM t GROUP BY g HAVING COUNT(*) > 1",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.unwrap().contains_aggregate());
        match &s.items[1] {
            SelectItem::Expr { expr: Expr::Aggregate { kind: AggKind::Count, arg: None }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star_only_for_count() {
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn count_distinct_parses_and_renders() {
        let s = parse("SELECT COUNT(DISTINCT a) FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: e @ Expr::Aggregate { kind: AggKind::CountDistinct, arg: Some(_) }, .. } => {
                assert_eq!(e.to_string(), "COUNT(DISTINCT a)");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("SELECT AVG(DISTINCT a) FROM t").is_err());
        // rendered form re-parses
        let again = parse(&s.to_string()).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn joins_inner_and_left() {
        let s = parse(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c x ON b.id = x.id WHERE a.v > 0",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert_eq!(s.joins[1].table.alias.as_deref(), Some("x"));
    }

    #[test]
    fn order_limit_offset() {
        let s = parse("SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5").unwrap();
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].direction, OrderDirection::Desc);
        assert_eq!(s.order_by[1].direction, OrderDirection::Asc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn order_by_ordinal() {
        let s = parse("SELECT a, b FROM t ORDER BY 2").unwrap();
        assert_eq!(s.order_by[0].expr, Expr::lit(2i64));
    }

    #[test]
    fn case_expression() {
        let s = parse(
            "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END FROM t",
        )
        .unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Case { branches, else_expr }, .. } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("SELECT CASE END FROM t").is_err());
    }

    #[test]
    fn literals() {
        let s = parse("SELECT TRUE, FALSE, NULL, 'str', 1, 2.5 FROM t").unwrap();
        assert_eq!(s.items.len(), 6);
    }

    #[test]
    fn error_messages_are_positioned() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }));
        let e = parse("SELECT a t").unwrap_err();
        assert!(e.to_string().contains("expected FROM"));
        assert!(parse("SELECT a FROM t extra junk +").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT a FROM t; SELECT b FROM u").is_err());
    }

    #[test]
    fn qualified_columns() {
        let s = parse("SELECT t.a FROM t WHERE t.b = u.c").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Column { table: Some(t), name }, .. } => {
                assert_eq!(t, "t");
                assert_eq!(name, "a");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_boolean_grouping() {
        let s = parse("SELECT a FROM t WHERE (a OR b) AND c").unwrap();
        assert_eq!(s.where_clause.unwrap().to_string(), "((a OR b) AND c)");
    }

    #[test]
    fn nested_aggregate_arg_expression() {
        let s = parse("SELECT SUM(x * 2 + 1) FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Aggregate { arg: Some(a), .. }, .. } => {
                assert_eq!(a.to_string(), "((x * 2) + 1)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
