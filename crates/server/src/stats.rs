//! Aggregate server statistics: admission counters, queue depth, and turn
//! latency percentiles. This is the *only* way the server reports on
//! itself — the library never writes to stdio.

/// A point-in-time snapshot of a [`Server`](crate::Server)'s counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Epoch of the currently installed world snapshot.
    pub epoch: u64,
    /// Sessions in the registry.
    pub sessions: usize,
    /// Turns that passed the submit-time quota gate.
    pub turns_submitted: u64,
    /// Turns that executed to completion.
    pub turns_completed: u64,
    /// Submissions refused by the quota gate.
    pub rejected_quota: u64,
    /// Queued turns refused by the drain-time row-budget governor.
    pub rejected_budget: u64,
    /// Turns queued and not yet drained.
    pub queue_depth: usize,
    /// Median turn latency in microseconds (0 until a turn completes).
    pub p50_us: u64,
    /// 99th-percentile turn latency in microseconds.
    pub p99_us: u64,
}

impl ServerStats {
    /// Total admission rejections across both gates.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_quota + self.rejected_budget
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute(
        epoch: u64,
        sessions: usize,
        turns_submitted: u64,
        turns_completed: u64,
        rejected_quota: u64,
        rejected_budget: u64,
        queue_depth: usize,
        latencies_us: &[u64],
    ) -> Self {
        Self {
            epoch,
            sessions,
            turns_submitted,
            turns_completed,
            rejected_quota,
            rejected_budget,
            queue_depth,
            p50_us: percentile(latencies_us, 50.0),
            p99_us: percentile(latencies_us, 99.0),
        }
    }
}

/// Nearest-rank percentile over an unsorted sample (0 when empty).
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn rejected_total_sums_both_gates() {
        let s = ServerStats::compute(0, 1, 10, 7, 2, 1, 0, &[5, 6, 7]);
        assert_eq!(s.rejected_total(), 3);
        assert_eq!(s.p50_us, 6);
    }
}
