//! The paged on-disk backend with a shadow-meta-page commit protocol.
//!
//! ## File layout
//!
//! * **Pages 0 and 1** are the two *meta slots*. A meta payload carries a
//!   magic number, a monotonically increasing commit version, the world
//!   epoch of the commit, the head of the directory chain, and the file's
//!   page count. Version `v` always lives in slot `v % 2`, so a commit
//!   overwrites the *older* slot and the newest fully written meta is never
//!   touched while its successor is in flight.
//! * **Directory pages** form a singly linked chain. Each page lists
//!   `(store, key, blob head, blob length)` entries; the chain is rewritten
//!   copy-on-write at every commit.
//! * **Blob pages** hold values as singly linked segment chains
//!   (`next`, `seg_len`, bytes). Blobs are immutable once written: an
//!   overwrite allocates a fresh chain and the old one is reclaimed only
//!   *after* the commit that unlinks it.
//!
//! ## Commit protocol
//!
//! 1. flush dirty blob pages (ascending page order) and `fsync`;
//! 2. write the new directory chain to freshly allocated pages and `fsync`;
//! 3. write the meta page for `version + 1` into the old slot and `fsync`.
//!
//! Allocation never hands out a page reachable from the last committed
//! meta, so steps 1–2 cannot damage the committed state; recovery reads
//! both meta slots, discards any that fail their checksum (a torn step 3),
//! and resumes from the highest valid version. Every crash therefore lands
//! on exactly the pre-commit or the post-commit state — the property the
//! fault-injection suite in `tests/recovery.rs` checks at every page-write
//! boundary.

use crate::backend::{StorageBackend, StorageStats, StoreId};
use crate::buffer::BufferPool;
use crate::codec::{ByteReader, ByteWriter};
use crate::disk::{DiskManager, FaultPlan};
use crate::page::{Page, PageId, PAGE_PAYLOAD};
use crate::{Result, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const META_MAGIC: u64 = 0x4344_4153_544f_5247; // "CDASTORG"
const N_STORES: usize = StoreId::ALL.len();
/// Chain page header: next page id (u64) + segment length (u32).
const CHAIN_HDR: usize = 12;
/// Payload bytes of one blob or directory page after the chain header.
const SEG_CAP: usize = PAGE_PAYLOAD - CHAIN_HDR;
/// Default buffer-pool capacity in frames.
pub const DEFAULT_POOL_FRAMES: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    version: u64,
    epoch: Option<u64>,
    dir_head: PageId,
    pages: u64,
}

impl Meta {
    fn encode(&self) -> Result<Page> {
        let mut w = ByteWriter::new();
        w.u64(META_MAGIC);
        w.u64(self.version);
        match self.epoch {
            Some(e) => {
                w.u8(1);
                w.u64(e);
            }
            None => {
                w.u8(0);
                w.u64(0);
            }
        }
        w.u64(self.dir_head);
        w.u64(self.pages);
        Page::from_payload(&w.finish())
    }

    fn decode(page: &Page) -> Option<Meta> {
        if !page.is_sealed() {
            return None;
        }
        let mut r = ByteReader::new(page.payload());
        if r.u64().ok()? != META_MAGIC {
            return None;
        }
        let version = r.u64().ok()?;
        let has_epoch = r.u8().ok()? == 1;
        let epoch_raw = r.u64().ok()?;
        let dir_head = r.u64().ok()?;
        let pages = r.u64().ok()?;
        Some(Meta {
            version,
            epoch: has_epoch.then_some(epoch_raw),
            dir_head,
            pages,
        })
    }

    fn slot(&self) -> PageId {
        self.version % 2
    }
}

/// A value's location: head of its page chain and total byte length.
/// `head == 0` encodes the empty blob (page 0 is a meta slot, so the id is
/// unambiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlobRef {
    head: PageId,
    len: u64,
}

#[derive(Debug)]
struct FileInner {
    disk: DiskManager,
    pool: BufferPool,
    /// Live (read-your-writes) view: per-store key → blob location.
    tables: [BTreeMap<Vec<u8>, BlobRef>; N_STORES],
    committed: Meta,
    /// Pages of the committed directory chain.
    dir_pages: Vec<PageId>,
    /// Allocatable pages: unreachable from the committed state.
    free: BTreeSet<PageId>,
    /// Pages unlinked by uncommitted operations; reusable only after the
    /// next successful commit proves the committed state no longer needs
    /// them.
    pending_free: Vec<PageId>,
    /// File-extension watermark.
    next_page: PageId,
    commits: u64,
    /// Set when an aborted commit may have diverged memory from disk.
    poisoned: bool,
}

/// The durable paged backend. See the module docs for the on-disk format
/// and crash-safety argument.
#[derive(Debug)]
pub struct FileBackend {
    inner: Mutex<FileInner>,
    path: PathBuf,
}

impl FileBackend {
    /// Open (creating or recovering) the file at `path` with the default
    /// buffer-pool size.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_pool(path, DEFAULT_POOL_FRAMES)
    }

    /// Open with an explicit buffer-pool capacity (frames).
    pub fn open_with_pool(path: impl AsRef<Path>, pool_frames: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut disk = DiskManager::open(&path)?;
        let mut pool = BufferPool::new(pool_frames);

        if disk.num_pages() < 2 {
            init_fresh(&mut disk)?;
        }
        let committed = match read_best_meta(&mut disk) {
            Some(m) => m,
            None => {
                // Both slots invalid: the file never survived its first
                // commit. Nothing durable can have existed; re-initialise.
                init_fresh(&mut disk)?;
                read_best_meta(&mut disk)
                    .ok_or_else(|| StorageError::Corrupt("meta slots unwritable".into()))?
            }
        };

        let mut tables: [BTreeMap<Vec<u8>, BlobRef>; N_STORES] = Default::default();
        let mut used: BTreeSet<PageId> = BTreeSet::new();
        let mut dir_pages = Vec::new();
        let limit = disk.num_pages() + 2;

        // Replay the committed directory chain.
        let mut pid = committed.dir_head;
        let mut steps = 0u64;
        while pid != 0 {
            steps += 1;
            if steps > limit {
                return Err(StorageError::Corrupt("directory chain cycle".into()));
            }
            let idx = pool.fetch(&mut disk, pid)?;
            let payload = pool.page(idx).payload().to_vec();
            pool.unpin(idx, false);
            dir_pages.push(pid);
            used.insert(pid);
            let mut r = ByteReader::new(&payload);
            let next = r.u64()?;
            let count = r.u32()?;
            for _ in 0..count {
                let store = StoreId::from_tag(r.u8()?)?;
                let key = r.bytes()?.to_vec();
                let head = r.u64()?;
                let len = r.u64()?;
                tables[store.index()].insert(key, BlobRef { head, len });
            }
            pid = next;
        }

        // Walk every live blob chain: verifies checksums and lengths, and
        // tells us which pages the committed state owns.
        for table in &tables {
            for blob in table.values() {
                let mut pid = blob.head;
                let mut total = 0u64;
                let mut steps = 0u64;
                while pid != 0 {
                    steps += 1;
                    if steps > limit {
                        return Err(StorageError::Corrupt("blob chain cycle".into()));
                    }
                    used.insert(pid);
                    let idx = pool.fetch(&mut disk, pid)?;
                    let payload = pool.page(idx).payload();
                    let mut r = ByteReader::new(payload);
                    let next = r.u64()?;
                    let seg_len = r.u32()? as u64;
                    pool.unpin(idx, false);
                    total += seg_len;
                    pid = next;
                }
                if total != blob.len {
                    return Err(StorageError::Corrupt(format!(
                        "blob length mismatch: directory says {}, chain holds {total}",
                        blob.len
                    )));
                }
            }
        }

        // Everything else — including garbage from a crashed commit — is
        // allocatable.
        let next_page = disk.num_pages().max(2);
        let free: BTreeSet<PageId> = (2..next_page).filter(|p| !used.contains(p)).collect();

        Ok(Self {
            inner: Mutex::new(FileInner {
                disk,
                pool,
                tables,
                committed,
                dir_pages,
                free,
                pending_free: Vec::new(),
                next_page,
                commits: 0,
                poisoned: false,
            }),
            path,
        })
    }

    /// The backing file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arm (or disarm) the crash simulation on the underlying disk
    /// manager. Test hook for the recovery suite; write counting restarts
    /// when the plan is armed.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.lock().disk.set_fault_plan(plan);
    }

    /// Physical page writes since open (or since the last plan was armed).
    #[must_use]
    pub fn writes_done(&self) -> u64 {
        self.lock().disk.writes_done()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FileInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn init_fresh(disk: &mut DiskManager) -> Result<()> {
    let meta = Meta { version: 0, epoch: None, dir_head: 0, pages: 2 };
    disk.write_page(0, &meta.encode()?)?;
    // Slot 1 starts as an unsealed zero page: detectably invalid.
    disk.write_page(1, &Page::zeroed())?;
    disk.sync()
}

fn read_best_meta(disk: &mut DiskManager) -> Option<Meta> {
    let mut best: Option<Meta> = None;
    for slot in 0..2u64 {
        if let Ok(page) = disk.read_page(slot) {
            if let Some(m) = Meta::decode(&page) {
                let newer = match best {
                    Some(b) => m.version > b.version,
                    None => true,
                };
                if m.slot() == slot && newer {
                    best = Some(m);
                }
            }
        }
    }
    best
}

impl FileInner {
    fn guard(&self) -> Result<()> {
        if self.poisoned {
            Err(StorageError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Lowest free page, else extend the file.
    fn alloc(&mut self) -> PageId {
        let pid = match self.free.iter().next().copied() {
            Some(p) => {
                self.free.remove(&p);
                p
            }
            None => {
                let p = self.next_page;
                self.next_page += 1;
                p
            }
        };
        // A recycled id may still be cached from its previous life.
        self.pool.drop_page(pid);
        pid
    }

    fn read_blob(&mut self, blob: BlobRef) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(blob.len as usize);
        let mut pid = blob.head;
        let limit = self.next_page + 2;
        let mut steps = 0u64;
        while pid != 0 {
            steps += 1;
            if steps > limit {
                return Err(StorageError::Corrupt("blob chain cycle".into()));
            }
            let idx = self.pool.fetch(&mut self.disk, pid)?;
            let payload = self.pool.page(idx).payload();
            let mut r = ByteReader::new(payload);
            let next = r.u64()?;
            let seg_len = r.u32()? as usize;
            if seg_len > SEG_CAP {
                self.pool.unpin(idx, false);
                return Err(StorageError::Corrupt(format!("segment of {seg_len} bytes")));
            }
            let seg = r.raw(seg_len)?.to_vec();
            self.pool.unpin(idx, false);
            out.extend_from_slice(&seg);
            pid = next;
        }
        if out.len() as u64 != blob.len {
            return Err(StorageError::Corrupt(format!(
                "blob length mismatch: directory says {}, chain holds {}",
                blob.len,
                out.len()
            )));
        }
        Ok(out)
    }

    /// Write `value` as a fresh page chain; returns its blob ref.
    fn write_blob(&mut self, value: &[u8]) -> Result<BlobRef> {
        if value.is_empty() {
            return Ok(BlobRef { head: 0, len: 0 });
        }
        let n = value.len().div_ceil(SEG_CAP);
        let pids: Vec<PageId> = (0..n).map(|_| self.alloc()).collect();
        for (i, pid) in pids.iter().enumerate() {
            let start = i * SEG_CAP;
            let seg = &value[start..(start + SEG_CAP).min(value.len())];
            let next = pids.get(i + 1).copied().unwrap_or(0);
            let mut w = ByteWriter::new();
            w.u64(next);
            w.u32(seg.len() as u32);
            w.raw(seg);
            let encoded = w.finish();
            let idx = self.pool.create(&mut self.disk, *pid)?;
            let page = self.pool.page_mut(idx);
            page.payload_mut()[..encoded.len()].copy_from_slice(&encoded);
            page.seal();
            self.pool.unpin(idx, true);
        }
        Ok(BlobRef { head: pids[0], len: value.len() as u64 })
    }

    /// Unlink a blob's pages into `pending_free` (reusable after the next
    /// commit) and discard any cached frames.
    fn release_blob(&mut self, blob: BlobRef) -> Result<()> {
        let mut pid = blob.head;
        let limit = self.next_page + 2;
        let mut steps = 0u64;
        while pid != 0 {
            steps += 1;
            if steps > limit {
                return Err(StorageError::Corrupt("blob chain cycle".into()));
            }
            let idx = self.pool.fetch(&mut self.disk, pid)?;
            let mut r = ByteReader::new(self.pool.page(idx).payload());
            let next = r.u64()?;
            self.pool.unpin(idx, false);
            self.pool.drop_page(pid);
            self.pending_free.push(pid);
            pid = next;
        }
        Ok(())
    }

    fn do_commit(&mut self, epoch: u64) -> Result<()> {
        // 1. Blob pages first.
        self.pool.flush_all(&mut self.disk)?;
        self.disk.sync()?;

        // 2. Copy-on-write directory chain.
        let mut encoded: Vec<Vec<u8>> = Vec::new();
        for store in StoreId::ALL {
            for (key, blob) in &self.tables[store.index()] {
                let mut w = ByteWriter::new();
                w.u8(store.tag());
                w.bytes(key);
                w.u64(blob.head);
                w.u64(blob.len);
                if w.len() > SEG_CAP {
                    return Err(StorageError::Corrupt(format!(
                        "directory entry of {} bytes exceeds page capacity",
                        w.len()
                    )));
                }
                encoded.push(w.finish());
            }
        }
        let mut chunks: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut cur: Vec<Vec<u8>> = Vec::new();
        let mut cur_len = 0usize;
        for e in encoded {
            if cur_len + e.len() > SEG_CAP && !cur.is_empty() {
                chunks.push(std::mem::take(&mut cur));
                cur_len = 0;
            }
            cur_len += e.len();
            cur.push(e);
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        let new_dir: Vec<PageId> = (0..chunks.len()).map(|_| self.alloc()).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            let mut w = ByteWriter::new();
            w.u64(new_dir.get(i + 1).copied().unwrap_or(0));
            w.u32(chunk.len() as u32);
            for e in chunk {
                w.raw(e);
            }
            let page = Page::from_payload(&w.finish())?;
            self.disk.write_page(new_dir[i], &page)?;
        }
        self.disk.sync()?;

        // 3. Shadow meta flip.
        let meta = Meta {
            version: self.committed.version + 1,
            epoch: Some(epoch),
            dir_head: new_dir.first().copied().unwrap_or(0),
            pages: self.next_page,
        };
        self.disk.write_page(meta.slot(), &meta.encode()?)?;
        self.disk.sync()?;

        // Success: the old directory and every unlinked blob page are now
        // unreachable from disk — reclaim them.
        let old_dir = std::mem::replace(&mut self.dir_pages, new_dir);
        self.free.extend(old_dir);
        self.free.extend(self.pending_free.drain(..));
        self.committed = meta;
        self.commits += 1;
        Ok(())
    }
}

impl StorageBackend for FileBackend {
    fn get(&self, store: StoreId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut g = self.lock();
        g.guard()?;
        match g.tables[store.index()].get(key).copied() {
            Some(blob) => Ok(Some(g.read_blob(blob)?)),
            None => Ok(None),
        }
    }

    fn put(&self, store: StoreId, key: &[u8], value: &[u8]) -> Result<()> {
        let mut g = self.lock();
        g.guard()?;
        let result = (|| -> Result<()> {
            let blob = g.write_blob(value)?;
            if let Some(old) = g.tables[store.index()].insert(key.to_vec(), blob) {
                g.release_blob(old)?;
            }
            Ok(())
        })();
        if result.is_err() {
            g.poisoned = true;
        }
        result
    }

    fn remove(&self, store: StoreId, key: &[u8]) -> Result<bool> {
        let mut g = self.lock();
        g.guard()?;
        match g.tables[store.index()].remove(key) {
            Some(old) => {
                if let Err(e) = g.release_blob(old) {
                    g.poisoned = true;
                    return Err(e);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn clear(&self, store: StoreId) -> Result<()> {
        let mut g = self.lock();
        g.guard()?;
        let blobs: Vec<BlobRef> = g.tables[store.index()].values().copied().collect();
        g.tables[store.index()].clear();
        for blob in blobs {
            if let Err(e) = g.release_blob(blob) {
                g.poisoned = true;
                return Err(e);
            }
        }
        Ok(())
    }

    fn scan(&self, store: StoreId) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut g = self.lock();
        g.guard()?;
        let entries: Vec<(Vec<u8>, BlobRef)> =
            g.tables[store.index()].iter().map(|(k, b)| (k.clone(), *b)).collect();
        let mut out = Vec::with_capacity(entries.len());
        for (key, blob) in entries {
            let value = g.read_blob(blob)?;
            out.push((key, value));
        }
        Ok(out)
    }

    fn len(&self, store: StoreId) -> Result<usize> {
        let g = self.lock();
        g.guard()?;
        Ok(g.tables[store.index()].len())
    }

    fn committed_epoch(&self) -> Result<Option<u64>> {
        let g = self.lock();
        g.guard()?;
        Ok(g.committed.epoch)
    }

    fn commit(&self, epoch: u64) -> Result<()> {
        let mut g = self.lock();
        g.guard()?;
        let result = g.do_commit(epoch);
        if result.is_err() {
            g.poisoned = true;
        }
        result
    }

    fn stats(&self) -> StorageStats {
        let g = self.lock();
        StorageStats {
            pages: g.next_page,
            free_pages: (g.free.len() + g.pending_free.len()) as u64,
            pool: g.pool.stats(),
            commits: g.commits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cda-storage-file-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_get_round_trip_and_read_your_writes() {
        let path = tmp("rt");
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(StoreId::Datasets, b"k").unwrap(), None);
        b.put(StoreId::Datasets, b"k", b"value one").unwrap();
        assert_eq!(b.get(StoreId::Datasets, b"k").unwrap().unwrap(), b"value one");
        b.put(StoreId::Datasets, b"k", b"value two").unwrap();
        assert_eq!(b.get(StoreId::Datasets, b"k").unwrap().unwrap(), b"value two");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn committed_state_survives_reopen() {
        let path = tmp("reopen");
        {
            let b = FileBackend::open(&path).unwrap();
            b.put(StoreId::Datasets, b"a", b"alpha").unwrap();
            b.put(StoreId::KgTriples, b"kg", &vec![7u8; 10_000]).unwrap();
            b.put(StoreId::SemanticCache, b"fp", b"answer").unwrap();
            b.commit(5).unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.committed_epoch().unwrap(), Some(5));
        assert_eq!(b.get(StoreId::Datasets, b"a").unwrap().unwrap(), b"alpha");
        assert_eq!(b.get(StoreId::KgTriples, b"kg").unwrap().unwrap(), vec![7u8; 10_000]);
        assert_eq!(b.get(StoreId::SemanticCache, b"fp").unwrap().unwrap(), b"answer");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_writes_vanish_on_reopen() {
        let path = tmp("uncommitted");
        {
            let b = FileBackend::open(&path).unwrap();
            b.put(StoreId::Datasets, b"a", b"committed").unwrap();
            b.commit(0).unwrap();
            b.put(StoreId::Datasets, b"a", b"in flight").unwrap();
            b.put(StoreId::Datasets, b"b", b"also in flight").unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(StoreId::Datasets, b"a").unwrap().unwrap(), b"committed");
        assert_eq!(b.get(StoreId::Datasets, b"b").unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_page_blobs_chain_correctly() {
        let path = tmp("chain");
        let b = FileBackend::open(&path).unwrap();
        let big: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        b.put(StoreId::SemanticCache, b"big", &big).unwrap();
        b.commit(1).unwrap();
        drop(b);
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(StoreId::SemanticCache, b"big").unwrap().unwrap(), big);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_values_are_present_but_empty() {
        let path = tmp("empty");
        let b = FileBackend::open(&path).unwrap();
        b.put(StoreId::Meta, b"flag", b"").unwrap();
        b.commit(0).unwrap();
        drop(b);
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(StoreId::Meta, b"flag").unwrap().unwrap(), Vec::<u8>::new());
        assert_eq!(b.len(StoreId::Meta).unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overwrites_reclaim_pages_after_commit() {
        let path = tmp("reclaim");
        let b = FileBackend::open(&path).unwrap();
        let big = vec![1u8; 40_000];
        for round in 0..8 {
            b.put(StoreId::Datasets, b"big", &big).unwrap();
            b.commit(round).unwrap();
        }
        let stats = b.stats();
        // One live chain (~10 pages) plus bounded slack — not 8 chains.
        assert!(
            stats.pages < 40,
            "pages grew unboundedly: {} total, {} free",
            stats.pages,
            stats.free_pages
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn epoch_bump_is_visible_after_reopen() {
        let path = tmp("epoch");
        {
            let b = FileBackend::open(&path).unwrap();
            b.put(StoreId::SemanticCache, b"fp", b"old world").unwrap();
            b.commit(0).unwrap();
            b.commit(1).unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.committed_epoch().unwrap(), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_fault_poisons_and_reopen_recovers() {
        let path = tmp("poison");
        {
            let b = FileBackend::open(&path).unwrap();
            b.put(StoreId::Datasets, b"a", b"stable").unwrap();
            b.commit(0).unwrap();
            b.put(StoreId::Datasets, b"a", b"doomed").unwrap();
            b.set_fault_plan(Some(FaultPlan { fail_after_writes: 0, torn_bytes: 0 }));
            assert!(matches!(b.commit(1), Err(StorageError::InjectedFault { .. })));
            assert!(matches!(b.get(StoreId::Datasets, b"a"), Err(StorageError::Poisoned)));
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(StoreId::Datasets, b"a").unwrap().unwrap(), b"stable");
        assert_eq!(b.committed_epoch().unwrap(), Some(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scan_is_key_ordered_and_store_scoped() {
        let path = tmp("scan");
        let b = FileBackend::open(&path).unwrap();
        b.put(StoreId::Datasets, &[2], b"two").unwrap();
        b.put(StoreId::Datasets, &[1], b"one").unwrap();
        b.put(StoreId::KgTriples, &[0], b"other store").unwrap();
        let scan = b.scan(StoreId::Datasets).unwrap();
        assert_eq!(scan, vec![(vec![1], b"one".to_vec()), (vec![2], b"two".to_vec())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffer_pool_reports_hits_on_hot_reads() {
        let path = tmp("pool");
        let b = FileBackend::open_with_pool(&path, 8).unwrap();
        b.put(StoreId::Datasets, b"k", &vec![9u8; 5000]).unwrap();
        b.commit(0).unwrap();
        for _ in 0..10 {
            b.get(StoreId::Datasets, b"k").unwrap();
        }
        assert!(b.stats().pool.hit_rate() > 0.5);
        let _ = std::fs::remove_file(&path);
    }
}
