//! Integration-test host crate; see `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
