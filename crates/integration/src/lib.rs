//! Integration-test host crate; see `tests/`.
