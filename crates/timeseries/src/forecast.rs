//! Baseline forecasters: seasonal-naive and drift.
//!
//! These are the sanity baselines for the insight-quality experiment (E10):
//! a CDA system that claims a seasonal period should beat the non-seasonal
//! drift baseline when forecasting held-out data — a cheap, quantitative
//! *verification* of the claimed insight (P4 verification-by-execution).

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// Seasonal-naive forecast: `ŷ[t] = y[t − period]` continued for `horizon`.
pub fn seasonal_naive(series: &TimeSeries, period: usize, horizon: usize) -> Result<Vec<f64>> {
    if period == 0 {
        return Err(TsError::InvalidParameter("period must be ≥ 1".into()));
    }
    series.require(period)?;
    let values = series.values();
    let n = values.len();
    Ok((0..horizon).map(|h| values[n - period + (h % period)]).collect())
}

/// Drift forecast: continue the line through the first and last observation.
pub fn drift(series: &TimeSeries, horizon: usize) -> Result<Vec<f64>> {
    series.require(2)?;
    let values = series.values();
    let n = values.len();
    let slope = (values[n - 1] - values[0]) / (n - 1) as f64;
    Ok((1..=horizon).map(|h| values[n - 1] + slope * h as f64).collect())
}

/// Mean absolute error between forecasts and actuals.
pub fn mae(forecast: &[f64], actual: &[f64]) -> f64 {
    let n = forecast.len().min(actual.len());
    if n == 0 {
        return 0.0;
    }
    forecast.iter().zip(actual).take(n).map(|(f, a)| (f - a).abs()).sum::<f64>() / n as f64
}

/// Mean squared error (one of the paper's named prediction metrics).
pub fn mse(forecast: &[f64], actual: &[f64]) -> f64 {
    let n = forecast.len().min(actual.len());
    if n == 0 {
        return 0.0;
    }
    forecast.iter().zip(actual).take(n).map(|(f, a)| (f - a) * (f - a)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_naive_repeats_last_period() {
        let ts = TimeSeries::from_values(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        let f = seasonal_naive(&ts, 3, 5).unwrap();
        assert_eq!(f, vec![10.0, 20.0, 30.0, 10.0, 20.0]);
    }

    #[test]
    fn seasonal_naive_validates() {
        let ts = TimeSeries::from_values(vec![1.0, 2.0]);
        assert!(seasonal_naive(&ts, 0, 3).is_err());
        assert!(seasonal_naive(&ts, 5, 3).is_err());
    }

    #[test]
    fn drift_extends_line() {
        let ts = TimeSeries::from_values(vec![0.0, 1.0, 2.0, 3.0]);
        let f = drift(&ts, 3).unwrap();
        assert_eq!(f, vec![4.0, 5.0, 6.0]);
        assert!(drift(&TimeSeries::from_values(vec![1.0]), 2).is_err());
    }

    #[test]
    fn error_metrics() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
        assert_eq!(mse(&[1.0, 2.0], &[2.0, 4.0]), 2.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn seasonal_naive_beats_drift_on_seasonal_data() {
        let full = TimeSeries::synthetic_seasonal(132, 12, 10.0, 0.0, 0.5, 4);
        let train = full.slice(0, 120);
        let actual = &full.values()[120..];
        let f_seasonal = seasonal_naive(&train, 12, 12).unwrap();
        let f_drift = drift(&train, 12).unwrap();
        assert!(
            mae(&f_seasonal, actual) < mae(&f_drift, actual),
            "seasonal {} vs drift {}",
            mae(&f_seasonal, actual),
            mae(&f_drift, actual)
        );
    }
}
