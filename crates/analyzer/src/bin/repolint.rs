//! Repo-convention lint binary (DESIGN.md §6), run by `ci.sh`.
//!
//! Usage: `repolint [ROOT]` — lints every `.rs` file under `ROOT/crates`
//! (default: the current directory) and exits non-zero when any convention
//! violation is found. See [`cda_analyzer::repolint`] for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(|| PathBuf::from("."), PathBuf::from);
    let tree = root.join("crates");
    let scan_root = if tree.is_dir() { root } else { std::env::current_dir().unwrap_or(root) };
    match cda_analyzer::repolint::lint_tree(&scan_root) {
        Ok(violations) if violations.is_empty() => {
            println!("repolint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("repolint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("repolint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
