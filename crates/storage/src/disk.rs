//! Positional page I/O over a single file, with fault injection.
//!
//! The disk manager is the only code in the workspace that touches the
//! filesystem on a product path (repolint R009 enforces this). It reads and
//! writes whole [`Page`]s at `page_id * PAGE_SIZE` offsets and exposes a
//! [`FaultPlan`] hook that kills a chosen physical page write — optionally
//! leaving a torn prefix — so the crash-recovery suite can simulate a power
//! cut at every page boundary of a commit.

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A simulated crash: the `fail_after_writes + 1`-th physical page write
/// (counted from when the plan is armed) fails with
/// [`StorageError::InjectedFault`] after persisting only `torn_bytes` of the
/// page. All subsequent writes fail too, as a killed process would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// How many physical page writes complete before the kill.
    pub fail_after_writes: u64,
    /// Bytes of the killed page actually persisted (0 = clean kill,
    /// `1..PAGE_SIZE` = torn page).
    pub torn_bytes: usize,
}

/// Page-granular file I/O with write accounting.
#[derive(Debug)]
pub struct DiskManager {
    file: File,
    pages: u64,
    fault: Option<FaultPlan>,
    writes_done: u64,
    reads_done: u64,
}

impl DiskManager {
    /// Open (or create) the backing file.
    pub fn open(path: &Path) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            pages: len / PAGE_SIZE as u64,
            fault: None,
            writes_done: 0,
            reads_done: 0,
        })
    }

    /// Whole pages currently in the file (a torn trailing fragment does not
    /// count; it is overwritten when its page is next allocated).
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.pages
    }

    /// Physical page writes performed so far.
    #[must_use]
    pub fn writes_done(&self) -> u64 {
        self.writes_done
    }

    /// Physical page reads performed so far.
    #[must_use]
    pub fn reads_done(&self) -> u64 {
        self.reads_done
    }

    /// Arm (or disarm) the crash simulation. Write counting for the plan
    /// starts at the moment it is armed.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
        self.writes_done = 0;
    }

    /// Read page `pid`. The image is returned unverified — callers decide
    /// whether a bad checksum is corruption (data page) or merely a stale
    /// shadow slot (meta page).
    pub fn read_page(&mut self, pid: PageId) -> Result<Page> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, pid * PAGE_SIZE as u64)
            .map_err(|e| StorageError::Io(format!("read page {pid}: {e}")))?;
        self.reads_done += 1;
        Page::from_bytes(buf)
    }

    /// Write page `pid`, honouring the armed [`FaultPlan`].
    pub fn write_page(&mut self, pid: PageId, page: &Page) -> Result<()> {
        if let Some(plan) = self.fault {
            if self.writes_done >= plan.fail_after_writes {
                let torn = plan.torn_bytes.min(PAGE_SIZE);
                if torn > 0 {
                    self.file
                        .write_all_at(&page.as_bytes()[..torn], pid * PAGE_SIZE as u64)
                        .map_err(|e| StorageError::Io(format!("torn write page {pid}: {e}")))?;
                    let _ = self.file.sync_all();
                }
                return Err(StorageError::InjectedFault { writes_done: self.writes_done });
            }
        }
        self.file
            .write_all_at(page.as_bytes(), pid * PAGE_SIZE as u64)
            .map_err(|e| StorageError::Io(format!("write page {pid}: {e}")))?;
        self.writes_done += 1;
        self.pages = self.pages.max(pid + 1);
        Ok(())
    }

    /// Flush file contents and metadata to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| StorageError::Io(format!("fsync: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cda-storage-disk-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("rt");
        let mut d = DiskManager::open(&path).unwrap();
        let p = Page::from_payload(b"page three").unwrap();
        d.write_page(3, &p).unwrap();
        assert_eq!(d.num_pages(), 4);
        let back = d.read_page(3).unwrap();
        back.verify(3).unwrap();
        assert_eq!(back, p);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_plan_kills_the_chosen_write_and_all_later_ones() {
        let path = tmp("fault");
        let mut d = DiskManager::open(&path).unwrap();
        d.set_fault_plan(Some(FaultPlan { fail_after_writes: 1, torn_bytes: 0 }));
        let p = Page::from_payload(b"x").unwrap();
        d.write_page(0, &p).unwrap();
        assert!(matches!(
            d.write_page(1, &p),
            Err(StorageError::InjectedFault { writes_done: 1 })
        ));
        assert!(d.write_page(2, &p).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_leaves_a_detectably_invalid_page() {
        let path = tmp("torn");
        let mut d = DiskManager::open(&path).unwrap();
        let good = Page::from_payload(&[0xAA; 300]).unwrap();
        d.write_page(0, &good).unwrap();
        d.set_fault_plan(Some(FaultPlan { fail_after_writes: 0, torn_bytes: 100 }));
        let next = Page::from_payload(&[0xBB; 300]).unwrap();
        assert!(d.write_page(0, &next).is_err());
        d.set_fault_plan(None);
        let back = d.read_page(0).unwrap();
        assert!(!back.is_sealed(), "torn page must fail its checksum");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reading_past_eof_is_an_io_error() {
        let path = tmp("eof");
        let mut d = DiskManager::open(&path).unwrap();
        assert!(matches!(d.read_page(9), Err(StorageError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }
}
