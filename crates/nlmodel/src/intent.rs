//! Intent classification with confidence.
//!
//! The conversational layer needs to decide what the user wants before any
//! translation happens: discover datasets, describe one, run an analytical
//! query, request a time-series insight, or continue/clarify. The classifier
//! is a transparent rule scorer (interpretable-by-design, per the paper's
//! preference for "inherently interpretable models over post-hoc
//! explanations of opaque-box models" \[48\]); its normalized score doubles as
//! the grounding confidence surfaced to the user.

use cda_kg::vocab::tokenize;

/// The user's intent for one utterance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Find relevant datasets ("overview of X", "what data do you have").
    DatasetDiscovery,
    /// Describe a specific dataset ("what is the barometer?").
    DatasetDescription,
    /// Run an aggregate/analytic query ("total jobs per canton").
    Analysis,
    /// Time-series insight ("trend", "seasonality", "forecast").
    TimeSeriesInsight,
    /// Pick one of the options the system just offered.
    Selection,
    /// None of the above — the system should ask for clarification.
    Unclear,
}

impl Intent {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Intent::DatasetDiscovery => "dataset-discovery",
            Intent::DatasetDescription => "dataset-description",
            Intent::Analysis => "analysis",
            Intent::TimeSeriesInsight => "timeseries-insight",
            Intent::Selection => "selection",
            Intent::Unclear => "unclear",
        }
    }
}

/// A classification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentResult {
    /// The winning intent.
    pub intent: Intent,
    /// Normalized confidence over all scored intents.
    pub confidence: f64,
    /// The full score distribution (intent label → normalized score).
    pub distribution: Vec<(Intent, f64)>,
}

const DISCOVERY_CUES: &[&str] = &[
    "overview", "data", "datasets", "sources", "available", "about", "information", "find",
    "looking",
];
const DESCRIPTION_CUES: &[&str] =
    &["what", "describe", "explain", "mean", "definition", "tell"];
const ANALYSIS_CUES: &[&str] = &[
    "total", "sum", "average", "count", "number", "per", "group", "maximum", "minimum", "top",
    "highest", "lowest", "how", "many", "much", "variability", "entries", "records",
];
const TS_CUES: &[&str] = &[
    "trend", "seasonality", "seasonal", "forecast", "over", "time", "monthly", "yearly",
    "insights", "pattern", "residual", "decomposition",
];
const SELECTION_CUES: &[&str] =
    &["interested", "first", "second", "former", "latter", "that", "one", "prefer", "choose",
      "pick", "yes"];

fn score(tokens: &[String], cues: &[&str]) -> f64 {
    tokens.iter().filter(|t| cues.contains(&t.as_str())).count() as f64
}

/// Classify an utterance, optionally biased by whether the system just
/// offered options (`offered_options` strengthens Selection).
pub fn classify_intent(utterance: &str, offered_options: bool) -> IntentResult {
    let tokens = tokenize(utterance);
    let mut raw = [
        (Intent::DatasetDiscovery, score(&tokens, DISCOVERY_CUES)),
        (Intent::DatasetDescription, score(&tokens, DESCRIPTION_CUES)),
        // aggregate vocabulary is the most specific signal → highest weight
        (Intent::Analysis, score(&tokens, ANALYSIS_CUES) * 1.75),
        (Intent::TimeSeriesInsight, score(&tokens, TS_CUES) * 1.5),
        (
            Intent::Selection,
            score(&tokens, SELECTION_CUES) * if offered_options { 2.0 } else { 0.5 },
        ),
    ];
    // "what is X?" outweighs generic discovery when both fire — but an
    // aggregate question ("what is the total … per …") stays Analysis
    if tokens.first().map(String::as_str) == Some("what")
        && tokens.get(1).map(String::as_str) == Some("is")
        && raw[2].1 == 0.0
    {
        raw[1].1 += 2.0;
    }
    let total: f64 = raw.iter().map(|(_, s)| s).sum();
    if total == 0.0 {
        return IntentResult {
            intent: Intent::Unclear,
            confidence: 0.0,
            distribution: vec![(Intent::Unclear, 1.0)],
        };
    }
    let mut distribution: Vec<(Intent, f64)> =
        raw.iter().map(|&(i, s)| (i, s / total)).collect();
    distribution.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (intent, confidence) = distribution[0];
    IntentResult { intent, confidence, distribution }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_turn1_is_discovery() {
        let r = classify_intent("Give me an overview of the working force in Switzerland", false);
        assert_eq!(r.intent, Intent::DatasetDiscovery);
        assert!(r.confidence > 0.3);
    }

    #[test]
    fn figure1_turn2_is_description() {
        let r = classify_intent("What is the Swiss workforce barometer?", false);
        assert_eq!(r.intent, Intent::DatasetDescription);
    }

    #[test]
    fn figure1_turn3_is_selection() {
        let r = classify_intent("I am interested in the barometer", true);
        assert_eq!(r.intent, Intent::Selection);
        // without offered options the same words lean elsewhere
        let r2 = classify_intent("I am interested in the barometer", false);
        assert!(r2.confidence <= r.confidence || r2.intent != Intent::Selection);
    }

    #[test]
    fn figure1_turn4_is_timeseries() {
        let r = classify_intent(
            "Can you please give me the seasonality insights, such as overall trend",
            false,
        );
        assert_eq!(r.intent, Intent::TimeSeriesInsight);
    }

    #[test]
    fn aggregate_question_is_analysis() {
        let r = classify_intent("total jobs per canton, highest first", false);
        assert_eq!(r.intent, Intent::Analysis);
    }

    #[test]
    fn gibberish_is_unclear_with_zero_confidence() {
        let r = classify_intent("qwerty zxcvb", false);
        assert_eq!(r.intent, Intent::Unclear);
        assert_eq!(r.confidence, 0.0);
    }

    #[test]
    fn distribution_is_normalized_and_sorted() {
        let r = classify_intent("show me the trend of the average number over time", false);
        let total: f64 = r.distribution.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in r.distribution.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Intent::Analysis.label(), "analysis");
        assert_eq!(Intent::Unclear.label(), "unclear");
    }
}
