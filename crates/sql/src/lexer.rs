//! SQL lexer.
//!
//! Turns SQL text into a token stream. Keywords are case-insensitive;
//! identifiers may be double-quoted to preserve case or escape keywords;
//! string literals use single quotes with `''` escaping.

use crate::error::SqlError;
use crate::Result;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (stored uppercase).
    Keyword(String),
    /// Identifier (table, column, alias).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Single-char or two-char operator / punctuation.
    Symbol(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// All recognized SQL keywords of the supported subset.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "JOIN",
    "INNER", "LEFT", "ON", "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE", "END", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "STDDEV", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
];

fn is_keyword(word: &str) -> bool {
    KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(sql, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted_ident(sql, i)?;
                tokens.push(Token::Ident(s));
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(sql, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &sql[start..i];
                if is_keyword(word) {
                    tokens.push(Token::Keyword(word.to_ascii_uppercase()));
                } else {
                    tokens.push(Token::Ident(word.to_owned()));
                }
            }
            _ => {
                let two = sql.get(i..i + 2).unwrap_or("");
                let sym: Option<&'static str> = match two {
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "<>" => Some("<>"),
                    "!=" => Some("!="),
                    _ => None,
                };
                if let Some(s) = sym {
                    tokens.push(Token::Symbol(s));
                    i += 2;
                    continue;
                }
                let sym: &'static str = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    ';' => ";",
                    other => {
                        return Err(SqlError::Lex {
                            position: i,
                            message: format!("unexpected character {other:?}"),
                        })
                    }
                };
                tokens.push(Token::Symbol(sym));
                i += 1;
            }
        }
    }
    Ok(tokens)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Safe for ASCII; pull full chars for multi-byte.
            let Some(ch) = sql[i..].chars().next() else { break };
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::Lex { position: start, message: "unterminated string literal".into() })
}

fn lex_quoted_ident(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((out, i + 1));
        }
        let Some(ch) = sql[i..].chars().next() else { break };
        out.push(ch);
        i += ch.len_utf8();
    }
    Err(SqlError::Lex { position: start, message: "unterminated quoted identifier".into() })
}

fn lex_number(sql: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()
    {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    let tok = if is_float {
        Token::Float(text.parse::<f64>().map_err(|e| SqlError::Lex {
            position: start,
            message: e.to_string(),
        })?)
    } else {
        Token::Int(text.parse::<i64>().map_err(|e| SqlError::Lex {
            position: start,
            message: e.to_string(),
        })?)
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select From WHERE").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into())
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case() {
        let toks = tokenize("myTable _col2").unwrap();
        assert_eq!(toks, vec![Token::Ident("myTable".into()), Token::Ident("_col2".into())]);
    }

    #[test]
    fn numbers_int_float_exponent() {
        let toks = tokenize("42 3.25 1e3 2.5E-2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(42), Token::Float(3.25), Token::Float(1000.0), Token::Float(0.025)]
        );
    }

    #[test]
    fn trailing_dot_is_projection_not_float() {
        // "t.x" must lex as ident dot ident, not a float
        let toks = tokenize("t.x 1.a").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol("."),
                Token::Ident("x".into()),
                Token::Int(1),
                Token::Symbol("."),
                Token::Ident("a".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"Group\"").unwrap();
        assert_eq!(toks, vec![Token::Ident("Group".into())]);
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn two_char_operators() {
        let toks = tokenize("<= >= <> !=").unwrap();
        assert_eq!(
            toks,
            vec![Token::Symbol("<="), Token::Symbol(">="), Token::Symbol("<>"), Token::Symbol("!=")]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- comment here\n 1").unwrap();
        assert_eq!(toks, vec![Token::Keyword("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn unexpected_character() {
        assert!(matches!(tokenize("SELECT @"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn full_query_token_stream() {
        let toks =
            tokenize("SELECT a, SUM(b) FROM t WHERE c >= 10 GROUP BY a ORDER BY 2 DESC LIMIT 5")
                .unwrap();
        assert_eq!(toks.len(), 22);
    }
}
