//! # cda-vector
//!
//! High-dimensional vector similarity search — the efficiency substrate
//! (property **P1**) of the CDA reproduction.
//!
//! The paper's P1 argument is that existing retrieval methods are *either*
//! fast without quality guarantees *or* guaranteed but slow, and calls for
//! "novel high-dimensional vector similarity search indexes able to provide
//! a precise bound to the quality of approximation … while achieving shorter
//! query answering times", including the ability to "return an empty set
//! when no answer exists with a given expected relevance", plus
//! "learning-augmented algorithms \[that\] make smart pruning decisions".
//! This crate implements that whole spectrum from scratch:
//!
//! | Module | Method | Guarantee |
//! |---|---|---|
//! | [`exact`] | brute-force scan | exact |
//! | [`ivf`] | IVF-Flat (k-means coarse quantizer + inverted lists) | none (recall depends on `nprobe`) |
//! | [`hnsw`] | hierarchical navigable small-world graph | none (recall depends on `ef`) |
//! | [`lsh`] | random-hyperplane LSH | probabilistic, collision-based |
//! | [`progressive`] | cluster-ordered progressive scan (ProS-style) | **deterministic or (δ)-probabilistic early stop** |
//! | [`learned`] | learned adaptive early termination on HNSW (Li et al.) | calibrated to a target recall |
//!
//! All indexes answer through the common [`VectorIndex`] trait so the bench
//! harness (experiment E1/E2) can sweep them uniformly.
//!
//! ## Example
//!
//! ```
//! use cda_vector::{VectorSet, exact::ExactIndex, VectorIndex};
//!
//! let data = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 3.0]]).unwrap();
//! let index = ExactIndex::build(&data);
//! let hits = index.search(&data, &[0.9, 0.1], 2);
//! assert_eq!(hits[0].id, 1);
//! assert_eq!(hits[1].id, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod eval;
pub mod exact;
pub mod hnsw;
pub mod ivf;
pub mod learned;
pub mod lsh;
pub mod metrics;
pub mod progressive;

pub use dataset::VectorSet;
pub use error::VectorError;
pub use metrics::Distance;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, VectorError>;

/// One search hit: vector id + distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the vector in the [`VectorSet`].
    pub id: usize,
    /// Distance to the query (smaller is closer).
    pub dist: f32,
}

impl Neighbor {
    /// Construct a neighbor.
    pub fn new(id: usize, dist: f32) -> Self {
        Self { id, dist }
    }
}

/// Common interface implemented by every index in this crate.
pub trait VectorIndex {
    /// Return the `k` (approximately) nearest neighbors of `query`,
    /// sorted by ascending distance.
    fn search(&self, data: &VectorSet, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Search statistics shared by the instrumented search paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of full distance computations performed.
    pub distance_evals: usize,
    /// Number of candidate partitions / nodes visited.
    pub visited: usize,
    /// Whether the search stopped early under a guarantee.
    pub early_stop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_constructor() {
        let n = Neighbor::new(3, 0.5);
        assert_eq!(n.id, 3);
        assert_eq!(n.dist, 0.5);
    }
}
