//! Snapshot tests for `Plan::explain` over representative demo-workload
//! queries, so analyzer/optimizer changes cannot silently alter plan shape.
//!
//! If a change legitimately improves plans, update the expected text here —
//! the diff then documents the plan change in review, which is the point.

use cda_sql::parser::parse;
use cda_sql::planner::plan_select;
use cda_sql::{optimizer, OptimizerRules};

fn explain(sql: &str) -> String {
    let cat = cda_core::demo::demo_catalog(7);
    let select = parse(sql).expect("query parses");
    let plan = plan_select(cat.sql(), &select).expect("query plans");
    optimizer::optimize(plan, OptimizerRules::all()).explain()
}

fn assert_snapshot(sql: &str, expected: &str) {
    let got = explain(sql);
    let expected = expected.trim_start_matches('\n');
    assert_eq!(
        got.trim_end(),
        expected.trim_end(),
        "plan shape changed for: {sql}\n--- expected ---\n{expected}\n--- got ---\n{got}"
    );
    // Cross-check: every pinned workload query is clean under the static
    // analyzer (the E13 zero-false-reject property, at the unit level),
    // including its cost pass over registration-time statistics.
    let cat = cda_core::demo::demo_catalog(7);
    let report = cda_analyzer::Analyzer::new(cat.sql())
        .with_stats(cat.stats())
        .with_row_budget(1_000_000)
        .analyze(sql);
    assert!(report.is_clean(), "{sql}: {:?}", report.findings);
    assert!(report.estimate.is_some(), "{sql}: cost pass produced no estimate");
}

#[test]
fn grouped_sum_with_filter_and_order() {
    assert_snapshot(
        "SELECT canton, SUM(employees) AS result FROM employment_by_type WHERE year = 2023 \
         GROUP BY canton ORDER BY result DESC",
        "
Sort [SortSpec { column: 1, descending: true }]
  Project [2 exprs]
    Aggregate [1 keys, 1 aggs]
      Filter Binary { left: Column(1), op: Eq, right: Literal(Int(2023)) }
        Scan employment_by_type (cols [0, 2, 3])",
    );
}

#[test]
fn grouped_avg_with_limit() {
    assert_snapshot(
        "SELECT type, AVG(employees) AS result FROM employment_by_type GROUP BY type \
         ORDER BY result DESC LIMIT 3",
        "
Limit Some(3) offset 0
  Sort [SortSpec { column: 1, descending: true }]
    Project [2 exprs]
      Aggregate [1 keys, 1 aggs]
        Scan employment_by_type (cols [1, 3])",
    );
}

#[test]
fn projection_filter_sort() {
    assert_snapshot(
        "SELECT canton, sector, median_wage FROM wage_stats WHERE median_wage > 6000 \
         ORDER BY median_wage DESC",
        "
Sort [SortSpec { column: 2, descending: true }]
  Project [3 exprs]
    Filter Binary { left: Column(2), op: Gt, right: Literal(Int(6000)) }
      Scan wage_stats (cols [0, 1, 2])",
    );
}

#[test]
fn global_count_with_conjunction() {
    assert_snapshot(
        "SELECT COUNT(*) AS result FROM employment_by_type WHERE canton = 'ZH' AND year >= 2020",
        "
Project [1 exprs]
  Aggregate [0 keys, 1 aggs]
    Filter Binary { left: Binary { left: Column(0), op: Eq, right: Literal(Str(\"ZH\")) }, \
         op: And, right: Binary { left: Column(1), op: GtEq, right: Literal(Int(2020)) } }
      Scan employment_by_type (cols [0, 2])",
    );
}

#[test]
fn join_with_grouping() {
    assert_snapshot(
        "SELECT e.canton, SUM(e.employees) AS result FROM employment_by_type e \
         JOIN wage_stats w ON e.canton = w.canton GROUP BY e.canton",
        "
Project [2 exprs]
  Aggregate [1 keys, 1 aggs]
    Join Inner on Binary { left: Column(0), op: Eq, right: Column(2) }
      Scan employment_by_type (cols [0, 3])
      Scan wage_stats (cols [0])",
    );
}

#[test]
fn distinct_with_sort() {
    assert_snapshot(
        "SELECT DISTINCT canton FROM wage_stats ORDER BY canton",
        "
Sort [SortSpec { column: 0, descending: false }]
  Distinct
    Project [1 exprs]
      Scan wage_stats (cols [0])",
    );
}

#[test]
fn optimizer_rules_change_shape_visibly() {
    // The unoptimized plan keeps the full-width scan: pinning both shapes
    // documents exactly what the optimizer buys on this workload.
    let cat = cda_core::demo::demo_catalog(7);
    let sql = "SELECT canton FROM wage_stats WHERE median_wage > 6000";
    let select = parse(sql).expect("query parses");
    let naive = plan_select(cat.sql(), &select).expect("query plans").explain();
    let optimized = explain(sql);
    assert!(naive.contains("Scan wage_stats") && !naive.contains("cols ["), "{naive}");
    assert!(optimized.contains("Scan wage_stats (cols ["), "{optimized}");
}
