//! Cross-crate pipeline tests: the full NL→SQL→execution→provenance→
//! soundness path, exercised outside the dialogue loop.

use cda_dataframe::kernels::AggKind;
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_nlmodel::constrained::{Decoder, DecodingStrategy};
use cda_nlmodel::lm::{Nl2SqlPrompt, SimLm, SimLmConfig};
use cda_nlmodel::nl2sql::{parse_question, Workload, WorkloadTable};
use cda_provenance::checks::{check_invertibility, check_losslessness};
use cda_soundness::consistency::consistency_confidence;
use cda_soundness::verify::execution_accuracy;
use cda_soundness::{auroc, expected_calibration_error};
use cda_sql::{execute, Catalog};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let t = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("jobs", DataType::Int),
            Field::new("rate", DataType::Float),
        ]),
        vec![
            Column::from_strs(&["ZH", "ZH", "GE", "GE", "VD", "VD", "BE", "BE"]),
            Column::from_strs(&["it", "fin", "it", "gov", "it", "fin", "gov", "it"]),
            Column::from_ints(&[100, 200, 50, 80, 30, 60, 40, 70]),
            Column::from_floats(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]),
        ],
    )
    .unwrap();
    c.register("emp", t).unwrap();
    c
}

fn workload_tables() -> Vec<WorkloadTable> {
    vec![WorkloadTable {
        name: "emp".into(),
        schema: Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("jobs", DataType::Int),
            Field::new("rate", DataType::Float),
        ]),
        string_values: vec![
            ("canton".into(), vec!["ZH".into(), "GE".into(), "VD".into()]),
            ("sector".into(), vec!["it".into(), "fin".into()]),
        ],
    }]
}

#[test]
fn nl_to_sql_to_execution_to_provenance_round_trip() {
    let catalog = catalog();
    let tables = workload_tables();
    let question = "What is the total jobs in emp per canton where sector is it, highest first?";
    let task = parse_question(question, &tables).expect("parseable");
    let sql = task.to_sql();
    let result = execute(&catalog, &sql).expect("gold executes");
    assert!(result.table.num_rows() >= 3);
    // every aggregate row is lossless and invertible
    for row in 0..result.table.num_rows() {
        assert!(check_losslessness(&catalog, &sql, &result.table, row).unwrap().lossless);
        assert!(
            check_invertibility(&catalog, &result.table, row, 1, AggKind::Sum, "emp", "jobs")
                .unwrap()
                .invertible
        );
    }
}

#[test]
fn consistency_uq_tracks_true_correctness_better_than_naive_confidence() {
    // the E5 headline, in miniature: sweep a workload at a high hallucination
    // rate, grade with execution accuracy, compare AUROC of the two signals
    let catalog = catalog();
    let tables = workload_tables();
    let workload = Workload::generate(&tables, 60, 9);
    // a badly unreliable model: small sample count so wrong majorities occur
    let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.85, overconfidence: 1.0, seed: 4 });
    let mut consistency = Vec::new();
    let mut naive = Vec::new();
    let mut correct = Vec::new();
    for t in &workload.tasks {
        let prompt = Nl2SqlPrompt {
            task: t.task.clone(),
            schema: tables[0].schema.clone(),
            other_tables: vec![],
        };
        let report = consistency_confidence(&lm, &prompt, &catalog, 5, 1.0).unwrap();
        let Some(sql) = report.chosen_sql else { continue };
        consistency.push(report.confidence);
        naive.push(report.naive_confidence);
        correct.push(execution_accuracy(&catalog, &sql, &t.gold_sql));
    }
    assert!(correct.len() >= 40, "enough graded samples");
    let wrong = correct.iter().filter(|c| !**c).count();
    assert!(wrong >= 5, "stress level produced only {wrong} wrong answers");
    let ece_naive = expected_calibration_error(&naive, &correct, 10).unwrap_or(1.0);
    let ece_consistency = expected_calibration_error(&consistency, &correct, 10).unwrap_or(1.0);
    // The overconfident naive signal must be visibly worse calibrated.
    assert!(
        ece_consistency < ece_naive,
        "consistency ECE {ece_consistency} vs naive {ece_naive}"
    );
    // Consistency confidence should discriminate above chance when both
    // outcome classes are present.
    let auroc_consistency = auroc(&consistency, &correct).unwrap();
    assert!(auroc_consistency > 0.55, "consistency AUROC {auroc_consistency}");
}

#[test]
fn constrained_decoding_improves_validity_and_accuracy() {
    // the E7 headline: validity/accuracy rates ordered free ≤ constrained ≤
    // rejection across a workload with a very unreliable model
    let catalog = catalog();
    let tables = workload_tables();
    let workload = Workload::generate(&tables, 25, 2);
    let lm = SimLm::new(SimLmConfig { hallucination_rate: 0.8, overconfidence: 0.9, seed: 8 });
    let mut rates = std::collections::HashMap::new();
    for strategy in [
        DecodingStrategy::Free,
        DecodingStrategy::Constrained,
        DecodingStrategy::Rejection,
        DecodingStrategy::Reranked,
    ] {
        let mut valid = 0usize;
        let mut accurate = 0usize;
        for t in &workload.tasks {
            let prompt = Nl2SqlPrompt {
                task: t.task.clone(),
                schema: tables[0].schema.clone(),
                other_tables: vec![],
            };
            let decoder = Decoder::new(&lm, &catalog)
                .with_strategy(strategy)
                .with_temperature(1.0)
                .with_budget(12);
            if let Ok(r) = decoder.decode(&prompt) {
                if cda_sql::parser::parse(&r.generation.sql).is_ok() {
                    valid += 1;
                }
                if execution_accuracy(&catalog, &r.generation.sql, &t.gold_sql) {
                    accurate += 1;
                }
            }
        }
        rates.insert(strategy.label(), (valid, accurate));
    }
    let (free_valid, free_acc) = rates["free"];
    let (con_valid, _) = rates["constrained"];
    let (rej_valid, rej_acc) = rates["rejection"];
    let (_, rer_acc) = rates["reranked"];
    assert!(con_valid >= free_valid);
    assert!(rej_valid >= con_valid);
    assert!(rej_acc >= free_acc);
    assert!(rer_acc >= free_acc, "reranked {rer_acc} vs free {free_acc}");
}

#[test]
fn csv_ingestion_feeds_sql_and_timeseries() {
    // ⓓ → ⓑ: ingest CSV, query it, run seasonality on the queried column
    let csv = {
        let series = cda_timeseries::TimeSeries::synthetic_seasonal(96, 12, 6.0, 0.0, 0.3, 5);
        let mut s = String::from("month,value\n");
        for (t, v) in series.timestamps().iter().zip(series.values()) {
            s.push_str(&format!("{t},{v}\n"));
        }
        s
    };
    let table = cda_dataframe::csv::parse_csv(&csv, &Default::default()).unwrap();
    let mut catalog = Catalog::new();
    catalog.register("metrics", table).unwrap();
    let result = execute(&catalog, "SELECT value FROM metrics ORDER BY month").unwrap();
    let values: Vec<f64> = (0..result.table.num_rows())
        .map(|i| result.table.value(i, 0).unwrap().as_f64().unwrap())
        .collect();
    let ts = cda_timeseries::TimeSeries::from_values(values);
    let season = cda_timeseries::seasonality::detect_seasonality(&ts, 24).unwrap();
    assert_eq!(season.period, 12);
    assert!(season.confidence > 0.5);
}
