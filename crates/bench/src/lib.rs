//! Shared harness utilities for the experiment binaries (`src/bin/exp_*`)
//! and Criterion benches. Each binary regenerates one experiment from the
//! index in DESIGN.md §4 and prints a fixed-width table whose rows are
//! recorded in EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Print an experiment header.
pub fn header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Print a table row of already-formatted cells with fixed column width.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:<16}")).collect();
    println!("{}", line.join(" "));
}

/// Convenience: format a float with 3 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Convenience: format a duration in microseconds.
pub fn us(d: Duration) -> String {
    format!("{:.1}us", d.as_secs_f64() * 1e6)
}

/// Time a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Time a closure averaged over `n` runs (result of the last run returned).
pub fn timed_avg<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n > 0);
    let start = Instant::now();
    let mut out = None;
    for _ in 0..n {
        out = Some(f());
    }
    (out.expect("n > 0"), start.elapsed() / n as u32)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.235");
        assert!(us(Duration::from_micros(1500)).starts_with("1500.0"));
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let (v, _) = timed_avg(3, || 7);
        assert_eq!(v, 7);
    }
}
