//! Static effect analysis: per-statement read/write sets over bound plans.
//!
//! An [`EffectSet`] records, at `(table, column)` granularity, what a
//! statement *reads* and what it *writes*, plus whether it changes the
//! catalog's shape (`schema_effects`). Read sets come from a plan traversal
//! that mirrors planner semantics — every `Scan` contributes its table and
//! the columns its (pruned) projection keeps. Write sets come from the bound
//! [`DmlPlan`]: the SET targets for UPDATE, every column for INSERT/DELETE.
//! The PR 7 abstract interpreter sharpens the result: a provably-empty WHERE
//! makes an UPDATE/DELETE a provable no-op, and interval analysis bounds the
//! affected-row count for the A013 governor.
//!
//! Four consumers:
//!
//! 1. the DML soundness gate (`sqlcheck` A019–A023) runs next to it;
//! 2. **precise cache invalidation** — on commit of a write, only cached
//!    answers whose read set intersects the write set are dropped
//!    ([`EffectSet::invalidates`]); schema changes still purge by epoch;
//! 3. server write admission — sessions whose queued writes have overlapping
//!    effect sets are serialized into one drain task, disjoint writers run
//!    in parallel ([`EffectSet::conflicts_with`]);
//! 4. the runtime effect sanitizer — [`EffectSet::write_guard`] converts the
//!    static write set into a `cda_sql::WriteGuard` that execution must stay
//!    inside (`CdaConfig::effect_check`).

use crate::cardest::Statistics;
use cda_sql::ast::Statement;
use cda_sql::dml::{plan_dml, DmlKind, DmlPlan};
use cda_sql::plan::Plan;
use cda_sql::{Catalog, OptimizerRules, WriteGuard};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// `table → columns`, all lowercased; the carrier of read and write sets.
pub type ColumnSet = BTreeMap<String, BTreeSet<String>>;

/// The statically-derived effects of one statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSet {
    /// `(table, columns)` the statement reads.
    pub reads: ColumnSet,
    /// `(table, columns)` the statement writes. Empty for SELECT.
    pub writes: ColumnSet,
    /// True when the statement changes catalog shape (registration, schema
    /// change). DML never sets this — it rewrites data, not shape.
    pub schema_effects: bool,
    /// Sound `[lo, hi]` bound on the number of written rows, sharpened by
    /// interval analysis over the statement's read side when available.
    pub affected_rows: Option<(u64, u64)>,
    /// The write is a provable no-op: its WHERE clause is provably empty.
    pub provable_noop: bool,
}

/// Do two column sets share any `(table, column)` pair?
fn intersects(a: &ColumnSet, b: &ColumnSet) -> bool {
    a.iter().any(|(t, cols)| {
        b.get(t).is_some_and(|other| cols.intersection(other).next().is_some())
    })
}

impl EffectSet {
    /// A read-only effect set (what a SELECT has).
    pub fn read_only(reads: ColumnSet) -> Self {
        Self { reads, ..Self::default() }
    }

    /// The effect set of a catalog-shape change: invalidates everything.
    pub fn schema_change() -> Self {
        Self { schema_effects: true, ..Self::default() }
    }

    /// True when the statement writes anything (data or schema).
    pub fn is_write(&self) -> bool {
        self.schema_effects || !self.writes.is_empty()
    }

    /// Must a cached answer with read set `reads` be dropped when this
    /// effect commits? Schema changes invalidate everything; data writes
    /// invalidate exactly the readers they intersect. A provable no-op
    /// still invalidates conservatively — commit decides, not the proof.
    pub fn invalidates(&self, reads: &ColumnSet) -> bool {
        self.schema_effects || intersects(&self.writes, reads)
    }

    /// Do two statements conflict (one's writes touch the other's reads or
    /// writes)? Used by the server to serialize conflicting writers while
    /// disjoint ones drain in parallel.
    pub fn conflicts_with(&self, other: &EffectSet) -> bool {
        self.schema_effects
            || other.schema_effects
            || intersects(&self.writes, &other.writes)
            || intersects(&self.writes, &other.reads)
            || intersects(&self.reads, &other.writes)
    }

    /// Fold another statement's effects into this one (for grouping a
    /// session's queued writes).
    pub fn union(&mut self, other: &EffectSet) {
        for (t, cols) in &other.reads {
            self.reads.entry(t.clone()).or_default().extend(cols.iter().cloned());
        }
        for (t, cols) in &other.writes {
            self.writes.entry(t.clone()).or_default().extend(cols.iter().cloned());
        }
        self.schema_effects |= other.schema_effects;
        self.provable_noop &= other.provable_noop;
        self.affected_rows = match (self.affected_rows, other.affected_rows) {
            (Some((a, b)), Some((c, d))) => Some((a.saturating_add(c), b.saturating_add(d))),
            (x, None) | (None, x) => x,
        };
    }

    /// The runtime half of the effect sanitizer: a [`WriteGuard`] for the
    /// single written table, or `None` when the statement writes nothing
    /// (or, defensively, more than one table — DML never does).
    pub fn write_guard(&self) -> Option<WriteGuard> {
        if self.writes.len() != 1 {
            return None;
        }
        self.writes
            .iter()
            .next()
            .map(|(t, cols)| WriteGuard::new(t.clone(), cols.iter().cloned()))
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_set = |s: &ColumnSet| {
            s.iter()
                .map(|(t, cols)| {
                    format!("{t}({})", cols.iter().cloned().collect::<Vec<_>>().join(","))
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        write!(f, "reads[{}] writes[{}]", fmt_set(&self.reads), fmt_set(&self.writes))?;
        if self.schema_effects {
            f.write_str(" schema")?;
        }
        if self.provable_noop {
            f.write_str(" noop")?;
        }
        Ok(())
    }
}

/// The read set of a bound plan: every `Scan`'s table with the columns its
/// projection keeps (all columns when unpruned). Traversal mirrors planner
/// semantics — no other node introduces base-table reads.
pub fn plan_reads(plan: &Plan) -> ColumnSet {
    let mut out = ColumnSet::new();
    collect_reads(plan, &mut out);
    out
}

fn collect_reads(plan: &Plan, out: &mut ColumnSet) {
    match plan {
        Plan::Scan { table, schema, projection } => {
            let cols = out.entry(table.to_ascii_lowercase()).or_default();
            match projection {
                Some(keep) => {
                    for &i in keep {
                        if let Some(f) = schema.field_at(i) {
                            cols.insert(f.name().to_ascii_lowercase());
                        }
                    }
                }
                None => {
                    for f in schema.fields() {
                        cols.insert(f.name().to_ascii_lowercase());
                    }
                }
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => collect_reads(input, out),
        Plan::Join { left, right, .. } => {
            collect_reads(left, out);
            collect_reads(right, out);
        }
    }
}

/// The effects of a read-only plan.
pub fn plan_effects(plan: &Plan) -> EffectSet {
    EffectSet::read_only(plan_reads(plan))
}

/// The effects of a bound DML statement, sharpened by abstract
/// interpretation over its read side when `stats` grounding is available.
pub fn dml_effects(plan: &DmlPlan, stats: Option<&Statistics>) -> EffectSet {
    let mut reads = ColumnSet::new();
    let read_cols: BTreeSet<String> = plan
        .read_columns()
        .into_iter()
        .filter_map(|i| plan.schema.field_at(i).map(|f| f.name().to_ascii_lowercase()))
        .collect();
    if !read_cols.is_empty() {
        reads.insert(plan.table.clone(), read_cols);
    }
    let mut writes = ColumnSet::new();
    writes.insert(
        plan.table.clone(),
        plan.written_columns().into_iter().map(|c| c.to_ascii_lowercase()).collect(),
    );
    let (affected_rows, provable_noop) = match (&plan.kind, plan.read_plan()) {
        (DmlKind::Insert { rows }, _) => {
            (Some((rows.len() as u64, rows.len() as u64)), rows.is_empty())
        }
        (_, Some(read)) => {
            let bounds = crate::absint::row_bounds(&read, stats);
            let empty = crate::absint::analyze(&read, stats).provably_empty.is_some();
            (Some(bounds), empty || bounds == (0, 0))
        }
        (_, None) => (None, false),
    };
    EffectSet { reads, writes, schema_effects: false, affected_rows, provable_noop }
}

/// The effects of any parsed statement against a catalog. SELECTs get the
/// read set of their *optimized* plan (the plan that executes and is
/// cached); DML statements get [`dml_effects`]. Binding errors bubble up —
/// the soundness gate reports them first.
pub fn statement_effects(
    catalog: &Catalog,
    stmt: &Statement,
    stats: Option<&Statistics>,
) -> cda_sql::Result<EffectSet> {
    match stmt {
        Statement::Select(s) => {
            let plan = cda_sql::planner::plan_select(catalog, s)?;
            let plan = cda_sql::optimizer::optimize(plan, OptimizerRules::all());
            Ok(plan_effects(&plan))
        }
        _ => Ok(dml_effects(&plan_dml(catalog, stmt)?, stats)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cda_dataframe::{Column, DataType, Field, Schema, Table};
    use cda_sql::parser::parse_statement;

    fn catalog() -> Catalog {
        let emp = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("salary", DataType::Float),
            ]),
            vec![
                Column::from_ints(&[1, 2, 3]),
                Column::from_strs(&["ada", "bob", "cyd"]),
                Column::from_floats(&[100.0, 200.0, 300.0]),
            ],
        )
        .unwrap();
        let dept = Table::from_columns(
            Schema::new(vec![Field::new("d", DataType::Int)]),
            vec![Column::from_ints(&[7])],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("emp", emp).unwrap();
        c.register("dept", dept).unwrap();
        c
    }

    fn effects(c: &Catalog, sql: &str) -> EffectSet {
        statement_effects(c, &parse_statement(sql).unwrap(), None).unwrap()
    }

    #[test]
    fn select_reads_only_projected_columns_after_pruning() {
        let c = catalog();
        let e = effects(&c, "SELECT name FROM emp WHERE id > 1");
        assert!(e.writes.is_empty() && !e.is_write());
        let cols = e.reads.get("emp").unwrap();
        assert!(cols.contains("name") && cols.contains("id"));
        assert!(!cols.contains("salary"), "pruned column must not appear in the read set");
    }

    #[test]
    fn update_reads_filter_and_rhs_writes_set_targets() {
        let c = catalog();
        let e = effects(&c, "UPDATE emp SET salary = salary * 2 WHERE id = 1");
        assert_eq!(
            e.writes.get("emp").unwrap().iter().cloned().collect::<Vec<_>>(),
            vec!["salary".to_owned()]
        );
        let reads = e.reads.get("emp").unwrap();
        assert!(reads.contains("id") && reads.contains("salary"));
        assert!(!e.schema_effects);
    }

    #[test]
    fn insert_and_delete_write_every_column() {
        let c = catalog();
        for sql in ["INSERT INTO emp (id) VALUES (9)", "DELETE FROM emp WHERE id = 1"] {
            let e = effects(&c, sql);
            assert_eq!(e.writes.get("emp").unwrap().len(), 3, "{sql}");
        }
        let ins = effects(&c, "INSERT INTO emp (id) VALUES (9)");
        assert_eq!(ins.affected_rows, Some((1, 1)));
    }

    #[test]
    fn provably_empty_where_is_a_provable_noop() {
        let c = catalog();
        let e = effects(&c, "UPDATE emp SET salary = 0 WHERE 1 = 2");
        assert!(e.provable_noop);
        assert_eq!(e.affected_rows, Some((0, 0)));
        let live = effects(&c, "UPDATE emp SET salary = 0 WHERE id = 1");
        assert!(!live.provable_noop);
    }

    #[test]
    fn invalidation_is_precise_at_table_and_column_level() {
        let c = catalog();
        let write = effects(&c, "UPDATE emp SET salary = 0");
        let reads_emp_salary = effects(&c, "SELECT salary FROM emp").reads;
        let reads_emp_name = effects(&c, "SELECT name FROM emp").reads;
        let reads_dept = effects(&c, "SELECT d FROM dept").reads;
        assert!(write.invalidates(&reads_emp_salary));
        assert!(!write.invalidates(&reads_emp_name), "column-disjoint reader survives");
        assert!(!write.invalidates(&reads_dept), "table-disjoint reader survives");
        assert!(EffectSet::schema_change().invalidates(&reads_dept));
    }

    #[test]
    fn conflict_grouping_matches_overlap() {
        let c = catalog();
        let w1 = effects(&c, "UPDATE emp SET salary = 0");
        let w2 = effects(&c, "UPDATE emp SET salary = 1 WHERE id = 2");
        let w3 = effects(&c, "DELETE FROM dept");
        assert!(w1.conflicts_with(&w2));
        assert!(!w1.conflicts_with(&w3));
        let mut grouped = w1.clone();
        grouped.union(&w3);
        assert!(grouped.conflicts_with(&w2) && grouped.conflicts_with(&w3));
    }

    #[test]
    fn write_guard_covers_exactly_the_write_set() {
        let c = catalog();
        let g = effects(&c, "UPDATE emp SET name = 'x' WHERE id = 1").write_guard().unwrap();
        assert_eq!(g.table, "emp");
        assert!(g.columns.contains("name") && !g.columns.contains("salary"));
        assert!(effects(&c, "SELECT 1 FROM emp").write_guard().is_none());
    }
}
