//! # cda-core
//!
//! The compound **Conversational Data Analytics** system — the paper's
//! primary contribution, assembled from the substrate crates exactly along
//! the architecture of Figure 1 (right):
//!
//! * ⓐ *Conversational Data Exploration*: [`dialogue`] (multi-turn state,
//!   routing, clarification) and [`answer`] (answers annotated with
//!   confidence, provenance, and property tags);
//! * ⓑ *Computational Infrastructure*: [`catalog`] (dataset registry with
//!   embedding-indexed discovery over [`cda_vector`]), the SQL engine, and
//!   the time-series routines;
//! * ⓒ *NL Model*: intent classification, NL2SQL with the simulated LM,
//!   constrained decoding, and template generation from [`cda_nlmodel`];
//! * ⓓ/ⓔ the data and answer layers: the demo domain in [`demo`] and the
//!   per-answer lineage from [`cda_provenance`].
//!
//! Reliability properties are explicit, *toggleable* mechanisms
//! ([`reliability::CdaConfig`]) so experiment F2 can ablate each and measure
//! the interplay of Figure 2.
//!
//! ## Quickstart
//!
//! ```
//! use cda_core::demo::demo_session;
//!
//! let mut cda = demo_session(42);
//! let turn = cda.process("Give me an overview of the working force in Switzerland");
//! assert!(turn.text.contains("labour market"));
//! assert!(turn.confidence.unwrap_or(0.0) > 0.5);
//! assert!(!turn.properties.is_empty());
//! ```
//!
//! Concurrent conversations share one immutable [`world::WorldSnapshot`]
//! behind an `Arc` and each open a cheap [`session::Session`] on it —
//! `cda-server` multiplexes thousands of them over a worker pool. The old
//! monolithic [`CdaSystem`] remains as a deprecated byte-identical shim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod answer;
pub mod catalog;
pub mod demo;
pub mod dialogue;
pub mod durable;
pub mod log;
pub mod mutation;
pub mod reliability;
pub mod rot;
pub mod session;
pub mod system;
pub mod world;

pub use answer::{AnswerTurn, PropertyTag};
pub use catalog::{Dataset, DatasetCatalog};
pub use durable::DurableCache;
pub use mutation::{WriteDecision, WriteOutcome};
pub use reliability::CdaConfig;
pub use session::{CacheStats, CacheStore, Session, SessionStats};
pub use system::CdaSystem;
pub use world::{WorldDelta, WorldSnapshot};

/// The storage layer, re-exported so callers assembling a durable world
/// (`WorldSnapshot::builder().with_storage(..)`) need not depend on
/// `cda-storage` directly.
pub use cda_storage as storage;

use std::fmt;

/// Errors from the compound system.
#[derive(Debug, Clone, PartialEq)]
pub enum CdaError {
    /// A dataset name was not found in the catalog.
    UnknownDataset(String),
    /// Substrate failure, carried as text (the dialogue layer converts
    /// errors into conversational repair, so this rarely escapes).
    Substrate(String),
}

impl fmt::Display for CdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownDataset(d) => write!(f, "unknown dataset {d:?}"),
            Self::Substrate(m) => write!(f, "substrate error: {m}"),
        }
    }
}

impl std::error::Error for CdaError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CdaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CdaError::UnknownDataset("x".into()).to_string().contains('x'));
    }
}
