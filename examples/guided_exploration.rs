//! Guided exploration: active clarification by expected information gain,
//! speculative planning of next steps, and expertise-adaptive interaction.
//!
//! Run with: `cargo run -p cda-core --example guided_exploration`

use cda_guidance::clarify::{best_question, simulate_dialogue, ClarificationQuestion, GoalBelief};
use cda_guidance::planner::{Action, SpeculativePlanner};
use cda_guidance::profile::UserProfile;

fn main() {
    // --- Active clarification (P5) --------------------------------------
    let goals = ["employment_stats", "barometer_trend", "wage_analysis", "unemployment_rate"];
    let questions = vec![
        ClarificationQuestion::new(
            "Are you interested in levels or trends?",
            vec![
                ("employment_stats", "levels"),
                ("wage_analysis", "levels"),
                ("barometer_trend", "trends"),
                ("unemployment_rate", "trends"),
            ],
        ),
        ClarificationQuestion::new(
            "Is this about wages specifically?",
            vec![
                ("employment_stats", "no"),
                ("wage_analysis", "yes"),
                ("barometer_trend", "no"),
                ("unemployment_rate", "no"),
            ],
        ),
        ClarificationQuestion::new(
            "Survey-based or registry-based data?",
            vec![
                ("employment_stats", "registry"),
                ("wage_analysis", "survey"),
                ("barometer_trend", "survey"),
                ("unemployment_rate", "registry"),
            ],
        ),
    ];
    let belief = GoalBelief::uniform(&goals).expect("goals non-empty");
    println!("Prior entropy over user goals: {:.2} bits", belief.entropy());
    let (q, gain) = best_question(&belief, &questions).expect("questions non-empty");
    println!("Best first question (EIG {gain:.2} bits): {}\n", q.text);

    println!("Turns-to-goal, EIG policy vs fixed order:");
    for goal in goals {
        let (eig_turns, _) = simulate_dialogue(&belief, &questions, goal, 0.95, true);
        let (fixed_turns, _) = simulate_dialogue(&belief, &questions, goal, 0.95, false);
        println!("  goal {goal:<20} eig={eig_turns}  fixed={fixed_turns}");
    }

    // --- Speculative planning --------------------------------------------
    println!("\nSpeculative plan over next actions (simulated soundness scores):");
    let actions = vec![
        Action::leaf("drill_down", "Break the barometer down by canton"),
        Action::leaf("seasonality", "Analyze seasonality of the barometer")
            .with_follow_ups(vec![Action::leaf("forecast", "Forecast the next 12 months")]),
        Action::leaf("export", "Export the raw table"),
    ];
    let planner = SpeculativePlanner::default();
    let score = |a: &Action| match a.id.as_str() {
        "seasonality" => 0.9,
        "forecast" => 0.8,
        "drill_down" => 0.7,
        _ => 0.3,
    };
    for r in planner.rank(&actions, &score).expect("actions non-empty") {
        println!(
            "  {:<12} immediate={:.2} lookahead={:.2} total={:.2} — {}",
            r.action.id, r.immediate, r.lookahead, r.total, r.action.description
        );
    }

    // --- Expertise profiling ----------------------------------------------
    println!("\nExpertise profiling adapts the interaction:");
    let mut novice = UserProfile::new();
    novice.observe("give me an overview of the working force");
    let mut expert = UserProfile::new();
    expert.observe("SELECT canton FROM employment_by_type WHERE employees > 10000");
    for (label, profile) in [("novice utterances", novice), ("raw-SQL user", expert)] {
        let level = profile.level();
        println!(
            "  {label:<18} -> {:?} (show code: {}, show internals: {})",
            level,
            level.show_code(),
            level.show_internals()
        );
    }
}
