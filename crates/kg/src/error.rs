//! Error type for the knowledge-graph substrate.

use std::fmt;

/// Errors from KG operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgError {
    /// A query used an unbound variable where a binding was required.
    UnboundVariable(String),
    /// A BGP with no patterns was evaluated.
    EmptyPattern,
    /// An identifier exceeded the dictionary capacity.
    DictionaryFull,
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnboundVariable(v) => write!(f, "unbound variable ?{v}"),
            Self::EmptyPattern => write!(f, "empty basic graph pattern"),
            Self::DictionaryFull => write!(f, "dictionary full (u32 ids exhausted)"),
        }
    }
}

impl std::error::Error for KgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(KgError::UnboundVariable("x".into()).to_string(), "unbound variable ?x");
        assert!(KgError::EmptyPattern.to_string().contains("empty"));
    }
}
