//! Domain vocabulary and term disambiguation.
//!
//! The paper's grounding property requires "access to the relevant terms and
//! definitions specific to a domain" and the ability to disambiguate user
//! terminology in context (the Figure-1 move of reading "working force" as
//! the labour market). A [`Vocabulary`] maps surface terms and synonyms to
//! [`Concept`]s; [`Vocabulary::disambiguate`] scores candidate concepts by
//! contextual overlap and returns a *grounding confidence* alongside the
//! winner, which the core system surfaces to the user (P3/P4).

use std::collections::HashMap;

/// A domain concept a term can resolve to.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Canonical identifier (also a KG node name).
    pub id: String,
    /// Short natural-language definition.
    pub definition: String,
    /// Topical domain tags (e.g. "employment", "finance").
    pub domains: Vec<String>,
}

impl Concept {
    /// Construct a concept.
    pub fn new(
        id: impl Into<String>,
        definition: impl Into<String>,
        domains: Vec<&str>,
    ) -> Self {
        Self {
            id: id.into(),
            definition: definition.into(),
            domains: domains.into_iter().map(str::to_owned).collect(),
        }
    }
}

/// A scored disambiguation candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Disambiguation {
    /// The winning concept.
    pub concept: Concept,
    /// Normalized confidence in `[0, 1]` (softmax-free mass of this
    /// candidate's score over all candidates).
    pub confidence: f64,
}

/// Lowercase alphanumeric tokens of a text.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The vocabulary: term (and synonym) → candidate concepts.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    entries: HashMap<String, Vec<Concept>>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a concept under a surface term (case-insensitive). A term may
    /// map to several concepts (ambiguity); a concept may be registered under
    /// several terms (synonymy).
    pub fn register(&mut self, term: &str, concept: Concept) {
        self.entries.entry(term.to_lowercase()).or_default().push(concept);
    }

    /// Candidate concepts for a term.
    pub fn candidates(&self, term: &str) -> &[Concept] {
        self.entries.get(&term.to_lowercase()).map_or(&[], Vec::as_slice)
    }

    /// Whether the vocabulary knows the term.
    pub fn knows(&self, term: &str) -> bool {
        self.entries.contains_key(&term.to_lowercase())
    }

    /// Number of distinct surface terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no terms are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Disambiguate `term` in `context`, returning ranked candidates with
    /// normalized confidences (best first). Unknown terms return an empty
    /// vector — the caller should then ask the user (P5 Guidance).
    pub fn disambiguate(&self, term: &str, context: &str) -> Vec<Disambiguation> {
        let candidates = self.candidates(term);
        if candidates.is_empty() {
            return Vec::new();
        }
        let ctx_tokens: Vec<String> = tokenize(context);
        let mut scored: Vec<(f64, &Concept)> = candidates
            .iter()
            .map(|c| {
                let def_tokens = tokenize(&c.definition);
                let overlap = ctx_tokens
                    .iter()
                    .filter(|t| def_tokens.contains(t) || c.domains.iter().any(|d| d == *t))
                    .count() as f64;
                // +1 smoothing keeps single-candidate terms at confidence 1.0
                (overlap + 1.0, c)
            })
            .collect();
        let total: f64 = scored.iter().map(|(s, _)| s).sum();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .map(|(s, c)| Disambiguation { concept: c.clone(), confidence: s / total })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.register(
            "workforce",
            Concept::new("labour_market", "people available for employment and labour", vec![
                "employment",
                "labour",
            ]),
        );
        v.register(
            "working force",
            Concept::new("labour_market", "people available for employment and labour", vec![
                "employment",
            ]),
        );
        v.register(
            "barometer",
            Concept::new("swiss_labour_barometer", "monthly leading indicator of the labour market based on a survey", vec!["employment"]),
        );
        v.register(
            "barometer",
            Concept::new("weather_barometer", "instrument measuring atmospheric pressure for weather", vec!["meteorology"]),
        );
        v
    }

    #[test]
    fn tokenizer_lowers_and_splits() {
        assert_eq!(tokenize("The Swiss Labour-Market!"), vec!["the", "swiss", "labour", "market"]);
        assert!(tokenize("  ").is_empty());
    }

    #[test]
    fn single_candidate_has_full_confidence() {
        let v = vocab();
        let d = v.disambiguate("workforce", "overview of switzerland");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].concept.id, "labour_market");
        assert!((d[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_steers_ambiguous_terms() {
        let v = vocab();
        let d = v.disambiguate("barometer", "employment and labour market survey");
        assert_eq!(d[0].concept.id, "swiss_labour_barometer");
        assert!(d[0].confidence > d[1].confidence);
        let d = v.disambiguate("barometer", "atmospheric pressure and weather forecast");
        assert_eq!(d[0].concept.id, "weather_barometer");
    }

    #[test]
    fn no_context_splits_confidence() {
        let v = vocab();
        let d = v.disambiguate("barometer", "");
        assert_eq!(d.len(), 2);
        assert!((d[0].confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_term_is_empty() {
        let v = vocab();
        assert!(v.disambiguate("flux capacitor", "anything").is_empty());
        assert!(!v.knows("flux capacitor"));
        assert!(v.knows("WORKFORCE"));
    }

    #[test]
    fn confidences_sum_to_one() {
        let v = vocab();
        let d = v.disambiguate("barometer", "labour");
        let total: f64 = d.iter().map(|x| x.confidence).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiword_terms_supported() {
        let v = vocab();
        assert_eq!(v.candidates("Working Force").len(), 1);
    }
}
