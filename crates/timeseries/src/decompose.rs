//! Classical additive decomposition: trend + seasonal + residual.
//!
//! Trend is a centered moving average of window `period` (with the standard
//! 2×m averaging for even periods); the seasonal component is the per-phase
//! mean of the detrended series, re-centered to sum to zero; the residual is
//! what remains. This is the decomposition the Figure-1 answer plots.

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// The three additive components of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// The seasonal period used.
    pub period: usize,
    /// Trend component (NaN-free: edges are extended from the first/last
    /// computable trend values).
    pub trend: Vec<f64>,
    /// Seasonal component, one value per observation (repeats with period).
    pub seasonal: Vec<f64>,
    /// Residual = value − trend − seasonal.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Fraction of variance explained by trend + seasonal (R², clamped ≥ 0).
    pub fn variance_explained(&self, series: &TimeSeries) -> f64 {
        let values = series.values();
        let mean = series.mean();
        let total: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
        if total == 0.0 {
            return 1.0;
        }
        let resid: f64 = self.residual.iter().map(|r| r * r).sum();
        (1.0 - resid / total).max(0.0)
    }

    /// Mean absolute seasonal amplitude.
    pub fn seasonal_strength(&self) -> f64 {
        if self.seasonal.is_empty() {
            return 0.0;
        }
        self.seasonal.iter().map(|s| s.abs()).sum::<f64>() / self.seasonal.len() as f64
    }

    /// Direction of the trend: slope of a least-squares line through the
    /// trend component (per observation).
    pub fn trend_slope(&self) -> f64 {
        least_squares_slope(&self.trend)
    }
}

/// Least-squares slope of `y` against `0..n`.
pub fn least_squares_slope(y: &[f64]) -> f64 {
    let n = y.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, &v) in y.iter().enumerate() {
        let dx = i as f64 - mean_x;
        cov += dx * (v - mean_y);
        var += dx * dx;
    }
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Centered moving average with the 2×m correction for even windows.
/// Edges are filled by extending the first/last computable value.
pub fn centered_moving_average(values: &[f64], window: usize) -> Result<Vec<f64>> {
    if window == 0 {
        return Err(TsError::InvalidParameter("window must be ≥ 1".into()));
    }
    let n = values.len();
    if n < window {
        return Err(TsError::InsufficientData { required: window, available: n });
    }
    let mut out = vec![f64::NAN; n];
    if window % 2 == 1 {
        let half = window / 2;
        for i in half..n - half {
            let sum: f64 = values[i - half..=i + half].iter().sum();
            out[i] = sum / window as f64;
        }
    } else {
        // 2×m MA: average of two adjacent m-windows.
        let half = window / 2;
        if n < window + 1 {
            return Err(TsError::InsufficientData { required: window + 1, available: n });
        }
        for i in half..n - half {
            let a: f64 = values[i - half..i + half].iter().sum::<f64>() / window as f64;
            let b: f64 = values[i - half + 1..=i + half].iter().sum::<f64>() / window as f64;
            out[i] = (a + b) / 2.0;
        }
    }
    // extend edges
    let first = out.iter().copied().find(|v| !v.is_nan()).unwrap_or(0.0);
    let last = out.iter().rev().copied().find(|v| !v.is_nan()).unwrap_or(0.0);
    let mut seen_valid = false;
    for v in out.iter_mut() {
        if v.is_nan() {
            *v = if seen_valid { last } else { first };
        } else {
            seen_valid = true;
        }
    }
    Ok(out)
}

/// Additive decomposition with the given seasonal period. Requires at least
/// two full periods of data.
pub fn decompose(series: &TimeSeries, period: usize) -> Result<Decomposition> {
    if period < 2 {
        return Err(TsError::InvalidParameter("period must be ≥ 2".into()));
    }
    series.require(2 * period)?;
    let values = series.values();
    let trend = centered_moving_average(values, period)?;
    // per-phase means of the detrended series
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_count = vec![0usize; period];
    for (i, (&v, &t)) in values.iter().zip(&trend).enumerate() {
        phase_sum[i % period] += v - t;
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // center so seasonal sums to zero over one period
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for m in &mut phase_mean {
        *m -= grand;
    }
    let seasonal: Vec<f64> = (0..values.len()).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<f64> =
        values.iter().zip(&trend).zip(&seasonal).map(|((&v, &t), &s)| v - t - s).collect();
    Ok(Decomposition { period, trend, seasonal, residual })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_odd_window() {
        let ma = centered_moving_average(&[1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        assert_eq!(ma[1], 2.0);
        assert_eq!(ma[2], 3.0);
        assert_eq!(ma[3], 4.0);
        // edges extended
        assert_eq!(ma[0], 2.0);
        assert_eq!(ma[4], 4.0);
    }

    #[test]
    fn moving_average_even_window_uses_2xm() {
        let ma = centered_moving_average(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 4).unwrap();
        // at i=2: mean(1..5)/... a = mean(1,2,3,4)=2.5, b = mean(2,3,4,5)=3.5 → 3.0
        assert!((ma[2] - 3.0).abs() < 1e-12);
        assert!((ma[3] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_validates() {
        assert!(centered_moving_average(&[1.0], 0).is_err());
        assert!(centered_moving_average(&[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn decompose_recovers_noise_free_components() {
        let ts = TimeSeries::synthetic_seasonal(96, 12, 8.0, 0.2, 0.0, 1);
        let d = decompose(&ts, 12).unwrap();
        // residual should be tiny away from edges
        let interior = &d.residual[12..84];
        let max_resid = interior.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        assert!(max_resid < 0.5, "max residual {max_resid}");
        // trend slope ≈ 0.2
        assert!((d.trend_slope() - 0.2).abs() < 0.05, "slope {}", d.trend_slope());
        // seasonal strength ≈ mean |8 sin| = 16/π ≈ 5.09
        assert!((d.seasonal_strength() - 16.0 / std::f64::consts::PI).abs() < 0.6);
        // explains nearly everything
        assert!(d.variance_explained(&ts) > 0.98);
    }

    #[test]
    fn seasonal_component_sums_to_zero_per_period() {
        let ts = TimeSeries::synthetic_seasonal(60, 6, 5.0, 0.0, 0.5, 3);
        let d = decompose(&ts, 6).unwrap();
        let sum: f64 = d.seasonal[..6].iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn decompose_requires_two_periods() {
        let ts = TimeSeries::from_values(vec![1.0; 10]);
        assert!(decompose(&ts, 6).is_err());
        assert!(decompose(&ts, 1).is_err());
        assert!(decompose(&ts, 5).is_ok());
    }

    #[test]
    fn constant_series_fully_explained() {
        let ts = TimeSeries::from_values(vec![7.0; 30]);
        let d = decompose(&ts, 5).unwrap();
        assert_eq!(d.variance_explained(&ts), 1.0);
        assert_eq!(d.seasonal_strength(), 0.0);
        assert_eq!(d.trend_slope(), 0.0);
    }

    #[test]
    fn slope_helper() {
        assert_eq!(least_squares_slope(&[]), 0.0);
        assert_eq!(least_squares_slope(&[1.0]), 0.0);
        assert!((least_squares_slope(&[0.0, 1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((least_squares_slope(&[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }
}
