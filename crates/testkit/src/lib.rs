//! # cda-testkit — zero-dependency deterministic testkit
//!
//! Makes the CDA workspace fully self-contained and regenerable offline,
//! per the paper's Soundness property (P4): every random draw, generated
//! property case, and benchmark sample in the repo flows through this crate
//! under explicit fixed seeds, so experiments replay byte-identically with
//! **zero crates-io dependencies**.
//!
//! Three sub-systems, each replacing an external crate:
//!
//! | module | replaces | surface |
//! |--------|----------|---------|
//! | [`rng`] | `rand` | [`rng::StdRng`] (xoshiro256++ / SplitMix64): `seed_from_u64`, `gen_range`, `gen_bool`, `gen`, `shuffle`, Gaussian |
//! | [`prop`] | `proptest` | choice-stream generators with automatic shrinking, [`proptest!`], `prop_assert*`, fixed-seed replay |
//! | [`mod@bench`] | `criterion` | warmup + N samples, median/p99, `BENCH_*.json` artifacts, [`criterion_group!`]/[`criterion_main!`] |
//!
//! Plus [`json`], the tiny writer/parser backing the bench artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

/// One-stop imports for property-test files (mirrors
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop::{
        any, collection, option, string_class, Arbitrary, Config, Gen, GenExt, IntoGen, Just,
        ProptestConfig, TestCase, TestError,
    };
    pub use crate::rng::StdRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
