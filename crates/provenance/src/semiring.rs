//! Provenance semirings.
//!
//! Following the provenance-semiring framework (Green, Karvounarakis,
//! Tannen; surveyed in the paper's reference \[21\]): each source row is a
//! variable; alternative derivations add (`+`), joint derivations multiply
//! (`×`). Specializing the polynomial recovers the classical notions:
//! dropping coefficients/exponents gives why-provenance (witness sets);
//! evaluating under `x ↦ 1` gives the counting semiring (derivation counts);
//! evaluating under `x ↦ value(x)` lets an aggregate be *recomputed from its
//! provenance* — the basis of the invertibility check.

use cda_dataframe::RowId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A monomial: coefficient × product of row-variables (with exponents).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Monomial {
    /// Variable → exponent, sorted (BTreeMap keeps canonical form).
    pub vars: BTreeMap<RowId, u32>,
    /// Natural coefficient.
    pub coefficient: u64,
}

impl Monomial {
    /// The monomial `1` (empty product).
    pub fn one() -> Self {
        Self { vars: BTreeMap::new(), coefficient: 1 }
    }

    /// A single variable `x`.
    pub fn var(x: RowId) -> Self {
        let mut vars = BTreeMap::new();
        vars.insert(x, 1);
        Self { vars, coefficient: 1 }
    }

    /// Product of two monomials (coefficients multiply, exponents add).
    pub fn times(&self, other: &Monomial) -> Monomial {
        let mut vars = self.vars.clone();
        for (&v, &e) in &other.vars {
            *vars.entry(v).or_insert(0) += e;
        }
        Monomial { vars, coefficient: self.coefficient * other.coefficient }
    }

    /// The witness set (variables, exponents dropped).
    pub fn witness(&self) -> BTreeSet<RowId> {
        self.vars.keys().copied().collect()
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coefficient != 1 || self.vars.is_empty() {
            write!(f, "{}", self.coefficient)?;
            if !self.vars.is_empty() {
                f.write_str("·")?;
            }
        }
        let parts: Vec<String> = self
            .vars
            .iter()
            .map(|(v, e)| if *e == 1 { format!("{v}") } else { format!("{v}^{e}") })
            .collect();
        f.write_str(&parts.join("·"))
    }
}

/// A how-provenance polynomial: a sum of monomials in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HowPolynomial {
    monomials: Vec<Monomial>,
}

impl HowPolynomial {
    /// The zero polynomial (no derivations).
    pub fn zero() -> Self {
        Self { monomials: Vec::new() }
    }

    /// The unit polynomial.
    pub fn one() -> Self {
        Self { monomials: vec![Monomial::one()] }
    }

    /// A single source-row variable.
    pub fn var(x: RowId) -> Self {
        Self { monomials: vec![Monomial::var(x)] }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.monomials.is_empty()
    }

    /// The monomials in canonical order.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Sum (alternative derivations). Like monomials merge coefficients.
    pub fn plus(&self, other: &HowPolynomial) -> HowPolynomial {
        let mut merged: BTreeMap<BTreeMap<RowId, u32>, u64> = BTreeMap::new();
        for m in self.monomials.iter().chain(&other.monomials) {
            *merged.entry(m.vars.clone()).or_insert(0) += m.coefficient;
        }
        HowPolynomial {
            monomials: merged
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .map(|(vars, coefficient)| Monomial { vars, coefficient })
                .collect(),
        }
    }

    /// Product (joint derivation).
    ///
    /// Merges like monomials once at the end rather than re-normalising the
    /// accumulator per product term (the latter is quadratic in the output
    /// size, which made large aggregate products intractable).
    pub fn times(&self, other: &HowPolynomial) -> HowPolynomial {
        let mut merged: BTreeMap<BTreeMap<RowId, u32>, u64> = BTreeMap::new();
        for a in &self.monomials {
            for b in &other.monomials {
                let m = a.times(b);
                *merged.entry(m.vars).or_insert(0) += m.coefficient;
            }
        }
        HowPolynomial {
            monomials: merged
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .map(|(vars, coefficient)| Monomial { vars, coefficient })
                .collect(),
        }
    }

    /// Why-provenance: the set of minimal witness sets (each monomial's
    /// variable set, with supersets of other witnesses removed).
    pub fn why(&self) -> Vec<BTreeSet<RowId>> {
        let mut sets: Vec<BTreeSet<RowId>> = self.monomials.iter().map(Monomial::witness).collect();
        sets.sort_by_key(BTreeSet::len);
        let mut minimal: Vec<BTreeSet<RowId>> = Vec::new();
        for s in sets {
            if !minimal.iter().any(|m| m.is_subset(&s)) {
                minimal.push(s);
            }
        }
        minimal
    }

    /// Counting semiring: number of derivations (evaluate at `x ↦ 1`).
    pub fn count(&self) -> u64 {
        self.monomials.iter().map(|m| m.coefficient).sum()
    }

    /// Evaluate under a valuation `x ↦ value(x)` (invertibility: recompute a
    /// result from its provenance). Missing variables evaluate as 0.
    pub fn evaluate(&self, valuation: &impl Fn(RowId) -> f64) -> f64 {
        self.monomials
            .iter()
            .map(|m| {
                let prod: f64 = m
                    .vars
                    .iter()
                    .map(|(&v, &e)| valuation(v).powi(e as i32))
                    .product();
                m.coefficient as f64 * prod
            })
            .sum()
    }

    /// All source rows mentioned anywhere in the polynomial.
    pub fn support(&self) -> BTreeSet<RowId> {
        self.monomials.iter().flat_map(Monomial::witness).collect()
    }
}

impl fmt::Display for HowPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monomials.is_empty() {
            return f.write_str("0");
        }
        let parts: Vec<String> = self.monomials.iter().map(|m| m.to_string()).collect();
        f.write_str(&parts.join(" + "))
    }
}

/// Build the how-provenance of one output row of a query from its lineage:
/// a filter/scan row is its variable; a join row is the **product** of its
/// witnesses; an aggregate row is the **sum** of its group's products. Since
/// the executor stores flat witness lists per row, we reconstruct: rows with
/// one witness → `x`; joins → `x·y`; aggregates get one monomial per
/// contributing base row (sum), which is exact for single-table aggregates.
pub fn from_lineage(witnesses: &[RowId], aggregated: bool) -> HowPolynomial {
    if witnesses.is_empty() {
        return HowPolynomial::one();
    }
    if aggregated {
        // One linear pass: count occurrences and emit one monomial per
        // distinct witness in canonical (BTreeMap) order — the same
        // polynomial the fold-of-`plus` construction built, without its
        // quadratic re-merge of the accumulator per witness (the 35 ms
        // `invertibility_check_one_row` outlier on 2k-row groups).
        let mut counts: BTreeMap<RowId, u64> = BTreeMap::new();
        for &w in witnesses {
            *counts.entry(w).or_insert(0) += 1;
        }
        HowPolynomial {
            monomials: counts
                .into_iter()
                .map(|(w, coefficient)| {
                    let mut vars = BTreeMap::new();
                    vars.insert(w, 1);
                    Monomial { vars, coefficient }
                })
                .collect(),
        }
    } else {
        // A joint derivation is a single monomial: accumulate exponents.
        let mut vars: BTreeMap<RowId, u32> = BTreeMap::new();
        for &w in witnesses {
            *vars.entry(w).or_insert(0) += 1;
        }
        HowPolynomial { monomials: vec![Monomial { vars, coefficient: 1 }] }
    }
}

/// A lazily-expanded how-provenance: witness **spans** attached per
/// execution morsel, with the polynomial itself materialized only on
/// demand.
///
/// The vectorized engine produces lineage in per-morsel segments; the
/// numeric provenance checks (counting, invertibility evaluation, support)
/// only need folds over the witnesses, so attaching spans and folding
/// directly skips building `O(group)` BTreeMap monomials per check.
/// [`HowSpan::expand`] recovers the exact canonical [`HowPolynomial`]
/// (pinned by the `span_*` tests) when explanation rendering needs one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HowSpan {
    segments: Vec<Vec<RowId>>,
    aggregated: bool,
}

impl HowSpan {
    /// An empty span set; `aggregated` chooses sum (`true`) or product
    /// semantics, exactly as in [`from_lineage`].
    pub fn new(aggregated: bool) -> Self {
        Self { segments: Vec::new(), aggregated }
    }

    /// Attach one morsel's witnesses as a span (no expansion happens).
    pub fn attach(&mut self, witnesses: &[RowId]) {
        if !witnesses.is_empty() {
            self.segments.push(witnesses.to_vec());
        }
    }

    /// Number of attached (non-empty) spans.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total witnesses across all spans.
    pub fn num_witnesses(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Expand into the canonical polynomial — one linear merge over all
    /// spans, identical to `from_lineage(concat(spans), aggregated)`.
    pub fn expand(&self) -> HowPolynomial {
        let all: Vec<RowId> = self.segments.iter().flatten().copied().collect();
        from_lineage(&all, self.aggregated)
    }

    /// Derivation count without expanding: total witnesses for a sum, 1 for
    /// a product (and 1 for the empty span set, whose expansion is `one()`).
    pub fn count(&self) -> u64 {
        if self.aggregated {
            let n = self.num_witnesses() as u64;
            if n == 0 {
                1
            } else {
                n
            }
        } else {
            1
        }
    }

    /// Evaluate under a valuation without expanding: a straight sum (or
    /// product) fold over the spans in attach order — numerically identical
    /// to `self.expand().evaluate(valuation)`.
    pub fn evaluate(&self, valuation: &impl Fn(RowId) -> f64) -> f64 {
        if self.num_witnesses() == 0 {
            return 1.0; // the unit polynomial
        }
        let flat = self.segments.iter().flatten();
        if self.aggregated {
            flat.map(|&w| valuation(w)).sum()
        } else {
            flat.map(|&w| valuation(w)).product()
        }
    }

    /// All source rows mentioned in any span.
    pub fn support(&self) -> BTreeSet<RowId> {
        self.segments.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RowId {
        RowId::new(1, i)
    }

    #[test]
    fn monomial_product_merges_exponents() {
        let m = Monomial::var(r(1)).times(&Monomial::var(r(1))).times(&Monomial::var(r(2)));
        assert_eq!(m.vars.get(&r(1)), Some(&2));
        assert_eq!(m.vars.get(&r(2)), Some(&1));
        assert_eq!(m.to_string(), "t1:r1^2·t1:r2");
    }

    #[test]
    fn plus_merges_like_terms() {
        let p = HowPolynomial::var(r(1)).plus(&HowPolynomial::var(r(1)));
        assert_eq!(p.monomials().len(), 1);
        assert_eq!(p.monomials()[0].coefficient, 2);
        assert_eq!(p.to_string(), "2·t1:r1");
    }

    #[test]
    fn distributive_law() {
        // (x + y) * z = xz + yz
        let x = HowPolynomial::var(r(1));
        let y = HowPolynomial::var(r(2));
        let z = HowPolynomial::var(r(3));
        let lhs = x.plus(&y).times(&z);
        let rhs = x.times(&z).plus(&y.times(&z));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs.monomials().len(), 2);
    }

    #[test]
    fn zero_and_one_laws() {
        let x = HowPolynomial::var(r(1));
        assert_eq!(x.plus(&HowPolynomial::zero()), x);
        assert_eq!(x.times(&HowPolynomial::one()), x);
        assert!(x.times(&HowPolynomial::zero()).is_zero());
        assert_eq!(HowPolynomial::zero().to_string(), "0");
    }

    #[test]
    fn why_provenance_is_minimal() {
        // x + x·y: witness {x} subsumes {x, y}
        let x = HowPolynomial::var(r(1));
        let xy = x.times(&HowPolynomial::var(r(2)));
        let p = x.plus(&xy);
        let why = p.why();
        assert_eq!(why.len(), 1);
        assert!(why[0].contains(&r(1)));
        assert_eq!(why[0].len(), 1);
    }

    #[test]
    fn counting_evaluation() {
        let p = HowPolynomial::var(r(1))
            .plus(&HowPolynomial::var(r(2)))
            .plus(&HowPolynomial::var(r(2)));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn numeric_evaluation_recovers_sum() {
        // SUM over rows 0..3 with values 10, 20, 30
        let p = from_lineage(&[r(0), r(1), r(2)], true);
        let value = p.evaluate(&|id: RowId| (id.row as f64 + 1.0) * 10.0);
        assert_eq!(value, 60.0);
    }

    #[test]
    fn join_lineage_is_a_product() {
        let p = from_lineage(&[r(0), RowId::new(2, 5)], false);
        assert_eq!(p.monomials().len(), 1);
        assert_eq!(p.monomials()[0].witness().len(), 2);
        // count of derivations through a single join path is 1
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn support_collects_all_vars() {
        let p = from_lineage(&[r(0), r(1)], true);
        let s = p.support();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&r(0)));
    }

    #[test]
    fn empty_lineage_is_unit() {
        assert_eq!(from_lineage(&[], true), HowPolynomial::one());
    }

    #[test]
    fn linear_from_lineage_equals_semiring_fold() {
        // The linear constructions must produce exactly the polynomial the
        // definitional fold-of-plus / fold-of-times builds — including
        // duplicate witnesses (coefficients vs exponents) and ordering.
        let ws = [r(3), r(1), r(2), r(1), r(3), r(3)];
        let sum_fold =
            ws.iter().fold(HowPolynomial::zero(), |acc, &w| acc.plus(&HowPolynomial::var(w)));
        assert_eq!(from_lineage(&ws, true), sum_fold);
        let prod_fold =
            ws.iter().fold(HowPolynomial::one(), |acc, &w| acc.times(&HowPolynomial::var(w)));
        assert_eq!(from_lineage(&ws, false), prod_fold);
    }

    #[test]
    fn span_expansion_is_canonical_and_folds_match() {
        // Spans attached per morsel expand to from_lineage(concat), and the
        // lazy folds agree with the expanded polynomial exactly.
        let m0 = [r(0), r(1), r(1)];
        let m1 = [r(2)];
        let m2 = [r(0), r(3)];
        for aggregated in [true, false] {
            let mut span = HowSpan::new(aggregated);
            span.attach(&m0);
            span.attach(&[]);
            span.attach(&m1);
            span.attach(&m2);
            assert_eq!(span.num_segments(), 3);
            assert_eq!(span.num_witnesses(), 6);
            let all: Vec<RowId> = m0.iter().chain(&m1).chain(&m2).copied().collect();
            let expanded = span.expand();
            assert_eq!(expanded, from_lineage(&all, aggregated));
            assert_eq!(span.count(), expanded.count());
            let val = |id: RowId| id.row as f64 + 2.0;
            assert_eq!(span.evaluate(&val), expanded.evaluate(&val));
            assert_eq!(span.support(), expanded.support());
        }
        // empty span set = unit polynomial
        let empty = HowSpan::new(true);
        assert_eq!(empty.expand(), HowPolynomial::one());
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.evaluate(&|_| 42.0), 1.0);
    }

    #[test]
    fn aggregate_from_lineage_is_linear_not_quadratic() {
        // Regression guard for the invertibility outlier: building the
        // polynomial of a 50k-witness aggregate must be a single linear
        // pass. The old fold-of-plus rebuilt the merged accumulator per
        // witness (~n²/2 BTreeMap inserts ≈ 1.25e9 for n = 50k), which takes
        // minutes; the linear pass is well under this generous wall bound
        // even on debug builds.
        let witnesses: Vec<RowId> = (0..50_000).map(r).collect();
        let t0 = std::time::Instant::now();
        let p = from_lineage(&witnesses, true);
        let elapsed = t0.elapsed();
        assert_eq!(p.monomials().len(), 50_000);
        assert_eq!(p.count(), 50_000);
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "from_lineage(50k, aggregated) took {elapsed:?} — quadratic regression?"
        );
    }
}
