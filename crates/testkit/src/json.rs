//! A deliberately tiny JSON value type with a writer and parser — just
//! enough for the bench harness to emit `BENCH_*.json` artifacts and for
//! tests to round-trip them, with zero external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a `BTreeMap` so emitted documents are
/// deterministically ordered (part of the repo's reproducibility bar).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Fetch an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse a JSON document. Supports the full value grammar this module
/// emits (and standard escapes); returns a message on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj([
            ("group", Json::Str("ann_20k".into())),
            ("sample_size", Json::Num(30.0)),
            (
                "benches",
                Json::Arr(vec![Json::obj([
                    ("name", Json::Str("exact \"quoted\"\n".into())),
                    ("median_ns", Json::Num(1234.5)),
                    ("p99_ns", Json::Num(98765.0)),
                    ("flag", Json::Bool(true)),
                    ("none", Json::Null),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        // and stability: re-rendering is byte-identical
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v = parse(" { \"a\" : [ -1.5e2 , 3 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64().unwrap(), -150.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
