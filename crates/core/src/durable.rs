//! Durable world state: codecs and the durable semantic cache.
//!
//! `cda-storage` stores bytes under byte keys; this module is where the
//! domain types become those bytes. Three stores are persisted, each keyed
//! by the [`WorldSnapshot`] epoch stamped at
//! commit:
//!
//! * **Datasets** — every registered [`Dataset`] (schema, typed columns,
//!   per-row lineage, time series, freshness), keyed by registration index.
//!   Loading replays [`DatasetCatalog::register`] in registration order,
//!   which deterministically reproduces the SQL catalog (table tags are
//!   assigned 1..n in registration order), the statistics, the embeddings,
//!   and the progressive index — so a reopened world plans and executes
//!   byte-identically to the world that was persisted.
//! * **KG triples** — the dictionary's strings in id order plus the
//!   id-encoded triples. Re-interning in order reproduces the id
//!   assignment, so the rebuilt store is exactly the original, indexes
//!   included.
//! * **Semantic cache** — `(fingerprint → epoch, turn, SQL, result)`
//!   records. The result *table* and `ExecStats` are serialized; the plan
//!   is **not** — it is re-derived from the stored SQL against the
//!   (epoch-matched, hence identical) catalog via
//!   [`cda_sql::exec::optimized_plan`], because planning is deterministic
//!   and plan trees are deep recursive structures with no stability
//!   guarantee across refactors.
//!
//! Epoch invalidation: every cache record carries the epoch it was
//! executed under. A `successor()` rebuild commits the world under
//! `epoch + 1`; what happens to the records is decided by the builder's
//! [`WorldDelta`](crate::world::WorldDelta): a `Schema` delta drops every
//! record whose stamp differs (`purge_stale_cache`), a `Data` delta drops
//! exactly the records whose re-derived read set intersects the committed
//! write's effect set and re-stamps the survivors, and a `Statistics`
//! delta re-stamps everything. [`DurableCache::get`] re-checks the stamp
//! on every hit as defense in depth — a stale entry is *never served*.

use crate::catalog::{Dataset, DatasetCatalog};
use crate::rot::{Freshness, UpdateCadence};
use crate::session::{CacheStats, CacheStore, CachedAnswer};
use crate::world::WorldSnapshot;
use crate::{CdaError, Result};
use cda_dataframe::{Column, DataType, Field, Schema, Table, Value};
use cda_sql::exec::{ExecStats, QueryResult};
use cda_storage::{ByteReader, ByteWriter, StorageBackend, StoreId};
use cda_timeseries::TimeSeries;
use std::sync::Arc;

/// On-disk format version; bumped when any codec changes incompatibly.
pub const FORMAT_VERSION: u32 = 1;

fn serr(e: cda_storage::StorageError) -> CdaError {
    CdaError::Substrate(format!("storage: {e}"))
}

fn cerr(what: &str) -> CdaError {
    CdaError::Substrate(format!("durable decode: {what}"))
}

// ---------------------------------------------------------------- tables --

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Timestamp => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Timestamp,
        other => return Err(cerr(&format!("unknown data type tag {other}"))),
    })
}

/// Serialize a table: schema (name/type/nullability/description per field),
/// typed column values (null-tagged), and per-row provenance lineage.
pub fn encode_table(w: &mut ByteWriter, table: &Table) {
    let schema = table.schema();
    w.u32(schema.fields().len() as u32);
    for f in schema.fields() {
        w.str(f.name());
        w.u8(dtype_tag(f.data_type()));
        w.bool(f.is_nullable());
        w.opt_str(f.description());
    }
    w.u64(table.num_rows() as u64);
    for col in table.columns() {
        for i in 0..col.len() {
            match col.value(i).unwrap_or(Value::Null) {
                Value::Null => w.bool(false),
                v => {
                    w.bool(true);
                    match v {
                        Value::Int(x) | Value::Timestamp(x) => w.i64(x),
                        Value::Float(x) => w.f64(x),
                        Value::Str(x) => w.str(&x),
                        Value::Bool(x) => w.bool(x),
                        Value::Null => unreachable!("matched above"), // lint: allow(R002)
                    }
                }
            }
        }
    }
    let lineages = table.lineages();
    w.u64(lineages.len() as u64);
    for lin in lineages {
        w.u32(lin.len() as u32);
        for rid in lin {
            w.u32(rid.table);
            w.u64(rid.row);
        }
    }
}

/// Inverse of [`encode_table`]; the round trip is value-exact (canonical
/// placeholders are re-established under null slots).
pub fn decode_table(r: &mut ByteReader<'_>) -> Result<Table> {
    let nfields = r.u32().map_err(serr)? as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name = r.str().map_err(serr)?;
        let dt = dtype_from_tag(r.u8().map_err(serr)?)?;
        let nullable = r.bool().map_err(serr)?;
        let desc = r.opt_str().map_err(serr)?;
        let mut f = Field::new(name, dt);
        if !nullable {
            f = f.non_nullable();
        }
        if let Some(d) = desc {
            f = f.with_description(d);
        }
        fields.push(f);
    }
    let rows = r.u64().map_err(serr)? as usize;
    let mut columns = Vec::with_capacity(nfields);
    for f in &fields {
        let mut col = Column::with_capacity(f.data_type(), rows);
        for _ in 0..rows {
            let valid = r.bool().map_err(serr)?;
            let v = if !valid {
                Value::Null
            } else {
                match f.data_type() {
                    DataType::Int => Value::Int(r.i64().map_err(serr)?),
                    DataType::Timestamp => Value::Timestamp(r.i64().map_err(serr)?),
                    DataType::Float => Value::Float(r.f64().map_err(serr)?),
                    DataType::Str => Value::Str(r.str().map_err(serr)?),
                    DataType::Bool => Value::Bool(r.bool().map_err(serr)?),
                }
            };
            col.push(v).map_err(|e| cerr(&format!("column rebuild: {e}")))?;
        }
        columns.push(col);
    }
    let nlin = r.u64().map_err(serr)? as usize;
    let mut lineage = Vec::with_capacity(nlin);
    for _ in 0..nlin {
        let n = r.u32().map_err(serr)? as usize;
        let mut lin = Vec::with_capacity(n);
        for _ in 0..n {
            let table = r.u32().map_err(serr)?;
            let row = r.u64().map_err(serr)?;
            lin.push(cda_dataframe::RowId::new(table, row));
        }
        lineage.push(lin);
    }
    Table::with_lineage(Schema::new(fields), columns, lineage)
        .map_err(|e| cerr(&format!("table rebuild: {e}")))
}

// -------------------------------------------------------------- datasets --

fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&ds.name);
    w.str(&ds.description);
    w.str(&ds.source_url);
    w.u32(ds.keywords.len() as u32);
    for k in &ds.keywords {
        w.str(k);
    }
    w.u64(ds.freshness.last_updated);
    match ds.freshness.cadence {
        UpdateCadence::Static => {
            w.u8(0);
            w.u64(0);
        }
        UpdateCadence::Every(t) => {
            w.u8(1);
            w.u64(t);
        }
    }
    match &ds.table {
        Some(t) => {
            w.bool(true);
            encode_table(&mut w, t);
        }
        None => w.bool(false),
    }
    match &ds.series {
        Some(s) => {
            w.bool(true);
            w.u64(s.len() as u64);
            for &t in s.timestamps() {
                w.i64(t);
            }
            for &v in s.values() {
                w.f64(v);
            }
        }
        None => w.bool(false),
    }
    w.finish()
}

fn decode_dataset(bytes: &[u8]) -> Result<Dataset> {
    let mut r = ByteReader::new(bytes);
    let name = r.str().map_err(serr)?;
    let description = r.str().map_err(serr)?;
    let source_url = r.str().map_err(serr)?;
    let nkw = r.u32().map_err(serr)? as usize;
    let mut keywords = Vec::with_capacity(nkw);
    for _ in 0..nkw {
        keywords.push(r.str().map_err(serr)?);
    }
    let last_updated = r.u64().map_err(serr)?;
    let cadence = match (r.u8().map_err(serr)?, r.u64().map_err(serr)?) {
        (0, _) => UpdateCadence::Static,
        (1, t) => UpdateCadence::Every(t),
        (tag, _) => return Err(cerr(&format!("unknown cadence tag {tag}"))),
    };
    let table = if r.bool().map_err(serr)? { Some(decode_table(&mut r)?) } else { None };
    let series = if r.bool().map_err(serr)? {
        let n = r.u64().map_err(serr)? as usize;
        let mut ts = Vec::with_capacity(n);
        for _ in 0..n {
            ts.push(r.i64().map_err(serr)?);
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(r.f64().map_err(serr)?);
        }
        Some(
            TimeSeries::new(ts, vals).map_err(|e| cerr(&format!("series rebuild: {e}")))?,
        )
    } else {
        None
    };
    r.expect_end().map_err(serr)?;
    Ok(Dataset {
        name,
        description,
        source_url,
        table,
        series,
        keywords,
        freshness: Freshness { last_updated, cadence },
    })
}

// -------------------------------------------------------------------- kg --

fn encode_kg(kg: &cda_kg::TripleStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(kg.dict().len() as u32);
    for s in kg.dict().strings() {
        w.str(s);
    }
    w.u64(kg.len() as u64);
    for (s, p, o) in kg.triples() {
        w.u32(s);
        w.u32(p);
        w.u32(o);
    }
    w.finish()
}

fn decode_kg(bytes: &[u8]) -> Result<cda_kg::TripleStore> {
    let mut r = ByteReader::new(bytes);
    let mut kg = cda_kg::TripleStore::new();
    let nstrings = r.u32().map_err(serr)?;
    for expect in 0..nstrings {
        let s = r.str().map_err(serr)?;
        let id = kg.dict_mut().intern(&s);
        if id != expect {
            return Err(cerr("dictionary ids not in intern order"));
        }
    }
    let ntriples = r.u64().map_err(serr)?;
    for _ in 0..ntriples {
        let s = r.u32().map_err(serr)?;
        let p = r.u32().map_err(serr)?;
        let o = r.u32().map_err(serr)?;
        kg.insert_ids((s, p, o));
    }
    r.expect_end().map_err(serr)?;
    Ok(kg)
}

// ----------------------------------------------------------- cache records --

const META_CLOCK_KEY: &[u8] = b"clock";
const META_FORMAT_KEY: &[u8] = b"format";
const KG_KEY: &[u8] = b"kg";

/// Encode a cache record: epoch stamp, then the answer (turn, SQL, stats,
/// result table). The plan is intentionally absent — see the module docs.
fn encode_cached(epoch: u64, answer: &CachedAnswer) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(epoch);
    w.u64(answer.turn as u64);
    w.str(&answer.sql);
    w.u64(answer.result.stats.rows_scanned as u64);
    w.u64(answer.result.stats.rows_materialized as u64);
    w.u64(answer.result.stats.join_pairs as u64);
    encode_table(&mut w, &answer.result.table);
    w.finish()
}

/// The epoch stamp of an encoded cache record (cheap prefix read).
fn cached_epoch(bytes: &[u8]) -> Result<u64> {
    ByteReader::new(bytes).u64().map_err(serr)
}

/// The epoch stamp and stored SQL of an encoded cache record — a prefix
/// read that skips the result table, for effect-set intersection checks.
fn cached_sql(bytes: &[u8]) -> Result<(u64, String)> {
    let mut r = ByteReader::new(bytes);
    let epoch = r.u64().map_err(serr)?;
    let _turn = r.u64().map_err(serr)?;
    let sql = r.str().map_err(serr)?;
    Ok((epoch, sql))
}

/// Decode a cache record, re-deriving the plan from the stored SQL against
/// `catalog` (which must be the epoch-matched catalog the record was
/// executed under).
fn decode_cached(bytes: &[u8], catalog: &cda_sql::Catalog) -> Result<(u64, CachedAnswer)> {
    let mut r = ByteReader::new(bytes);
    let epoch = r.u64().map_err(serr)?;
    let turn = r.u64().map_err(serr)? as usize;
    let sql = r.str().map_err(serr)?;
    let stats = ExecStats {
        rows_scanned: r.u64().map_err(serr)? as usize,
        rows_materialized: r.u64().map_err(serr)? as usize,
        join_pairs: r.u64().map_err(serr)? as usize,
    };
    let table = decode_table(&mut r)?;
    r.expect_end().map_err(serr)?;
    let plan =
        cda_sql::exec::optimized_plan(catalog, &sql, cda_sql::OptimizerRules::all())
            .map_err(|e| cerr(&format!("plan rebuild for cached SQL: {e}")))?;
    Ok((epoch, CachedAnswer { turn, sql, result: QueryResult { table, plan, stats } }))
}

// ------------------------------------------------------------ world sync --

/// Persist the builder's catalog and KG under `epoch`, reconcile the
/// semantic-cache records per `delta`
/// ([`WorldDelta`](crate::world::WorldDelta) selects the invalidation
/// policy), and commit — one atomic transition. Returns the number of
/// cache records dropped.
pub(crate) fn sync_world_delta(
    backend: &dyn StorageBackend,
    epoch: u64,
    catalog: &DatasetCatalog,
    kg: &cda_kg::TripleStore,
    delta: &crate::world::WorldDelta,
) -> Result<usize> {
    backend.clear(StoreId::Datasets).map_err(serr)?;
    for (i, ds) in catalog.datasets().iter().enumerate() {
        backend
            .put(StoreId::Datasets, &(i as u32).to_be_bytes(), &encode_dataset(ds))
            .map_err(serr)?;
    }
    backend.put(StoreId::KgTriples, KG_KEY, &encode_kg(kg)).map_err(serr)?;
    let mut w = ByteWriter::new();
    w.u64(catalog.clock());
    backend.put(StoreId::Meta, META_CLOCK_KEY, &w.finish()).map_err(serr)?;
    let mut w = ByteWriter::new();
    w.u32(FORMAT_VERSION);
    backend.put(StoreId::Meta, META_FORMAT_KEY, &w.finish()).map_err(serr)?;
    let dropped = match delta {
        crate::world::WorldDelta::Schema => purge_stale_cache(backend, epoch)?,
        crate::world::WorldDelta::Data(effects) => {
            restamp_cache(backend, epoch, Some((effects, catalog.sql())))?
        }
        crate::world::WorldDelta::Statistics => restamp_cache(backend, epoch, None)?,
    };
    backend.commit(epoch).map_err(serr)?;
    Ok(dropped)
}

/// Load the committed catalog and KG. Returns `(catalog, kg, epoch)`.
pub(crate) fn load_world(
    backend: &dyn StorageBackend,
) -> Result<(DatasetCatalog, cda_kg::TripleStore, u64)> {
    let epoch = backend
        .committed_epoch()
        .map_err(serr)?
        .ok_or_else(|| cerr("backend holds no committed world"))?;
    if let Some(bytes) = backend.get(StoreId::Meta, META_FORMAT_KEY).map_err(serr)? {
        let v = ByteReader::new(&bytes).u32().map_err(serr)?;
        if v != FORMAT_VERSION {
            return Err(cerr(&format!("on-disk format v{v}, this build reads v{FORMAT_VERSION}")));
        }
    }
    let mut catalog = DatasetCatalog::new();
    for (_key, value) in backend.scan(StoreId::Datasets).map_err(serr)? {
        catalog.register(decode_dataset(&value)?)?;
    }
    if let Some(bytes) = backend.get(StoreId::Meta, META_CLOCK_KEY).map_err(serr)? {
        catalog.set_clock(ByteReader::new(&bytes).u64().map_err(serr)?);
    }
    let kg = match backend.get(StoreId::KgTriples, KG_KEY).map_err(serr)? {
        Some(bytes) => decode_kg(&bytes)?,
        None => cda_kg::TripleStore::new(),
    };
    Ok((catalog, kg, epoch))
}

/// Precise (or data-preserving) cache reconciliation for an epoch bump
/// whose delta proves the catalog *shape* is unchanged. With
/// `invalidated = Some((effects, catalog))`, a record is dropped exactly
/// when the read set of its stored SQL — re-derived by replanning against
/// the successor catalog, sound because the schema is identical —
/// intersects the committed write set; with `None` (statistics-only
/// rebuild) nothing is dropped. Every surviving record stamped with an
/// older epoch is rewritten under `epoch` (the stamp is the first 8 bytes,
/// so the rewrite is a prefix splice). Undecodable or unplannable records
/// are dropped conservatively. Does not commit. Returns the drop count.
fn restamp_cache(
    backend: &dyn StorageBackend,
    epoch: u64,
    invalidated: Option<(&cda_analyzer::EffectSet, &cda_sql::Catalog)>,
) -> Result<usize> {
    let mut stale: Vec<Vec<u8>> = Vec::new();
    let mut restamp: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for (key, value) in backend.scan(StoreId::SemanticCache).map_err(serr)? {
        let Ok((stamp, sql)) = cached_sql(&value) else {
            stale.push(key);
            continue;
        };
        if let Some((effects, catalog)) = invalidated {
            let reads = cda_sql::exec::optimized_plan(catalog, &sql, cda_sql::OptimizerRules::all())
                .map(|plan| cda_analyzer::plan_reads(&plan));
            match reads {
                Ok(reads) if !effects.invalidates(&reads) => {}
                _ => {
                    stale.push(key);
                    continue;
                }
            }
        }
        if stamp != epoch {
            let mut value = value;
            value[..8].copy_from_slice(&epoch.to_le_bytes());
            restamp.push((key, value));
        }
    }
    let dropped = stale.len();
    for key in stale {
        backend.remove(StoreId::SemanticCache, &key).map_err(serr)?;
    }
    for (key, value) in restamp {
        backend.put(StoreId::SemanticCache, &key, &value).map_err(serr)?;
    }
    Ok(dropped)
}

/// Drop every cache record whose epoch stamp differs from `epoch`.
/// Undecodable records are dropped too (a torn value would have failed its
/// page checksum earlier, but belt and braces). Does not commit.
pub(crate) fn purge_stale_cache(backend: &dyn StorageBackend, epoch: u64) -> Result<usize> {
    let mut stale = Vec::new();
    for (key, value) in backend.scan(StoreId::SemanticCache).map_err(serr)? {
        match cached_epoch(&value) {
            Ok(e) if e == epoch => {}
            _ => stale.push(key),
        }
    }
    let dropped = stale.len();
    for key in stale {
        backend.remove(StoreId::SemanticCache, &key).map_err(serr)?;
    }
    Ok(dropped)
}

// ---------------------------------------------------------- durable cache --

/// The durable semantic cache: a [`CacheStore`] over the world's storage
/// backend. Entries are shared by every durable session over the same
/// world — and by future processes: a hit may have been paid for before
/// this process started, which is exactly the E20 restart scenario.
///
/// Storage failures fail *open* (a write error skips persistence, a read
/// error is a miss) so a sick disk degrades to the in-memory behaviour
/// instead of taking conversations down; `write_errors` counts them.
#[derive(Debug, Clone)]
pub struct DurableCache {
    world: Arc<WorldSnapshot>,
    backend: Arc<dyn StorageBackend>,
    hits: usize,
    misses: usize,
    write_errors: usize,
}

impl DurableCache {
    /// A durable cache over `backend`, decoding against `world`'s catalog.
    /// The usual route is [`Session::open_durable`](crate::session::Session::open_durable),
    /// which checks that world and backend agree on the epoch; construct
    /// directly only when that invariant is guaranteed another way (e.g.
    /// a fresh backend that has never held another world's records).
    pub fn new(world: Arc<WorldSnapshot>, backend: Arc<dyn StorageBackend>) -> Self {
        Self { world, backend, hits: 0, misses: 0, write_errors: 0 }
    }

    /// Storage write failures swallowed so far (fail-open persistence).
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// Re-point the cache at a successor world (same backend). Storage-side
    /// invalidation already happened when the successor was opened — records
    /// the write touched are gone, survivors are re-stamped — so the cache
    /// only has to decode against the successor catalog and epoch from now
    /// on. Counters carry over: the conversation did not restart.
    pub(crate) fn set_world(&mut self, world: Arc<WorldSnapshot>) {
        self.world = world;
    }

    fn entries(&self) -> usize {
        self.backend.len(StoreId::SemanticCache).unwrap_or(0)
    }
}

impl CacheStore for DurableCache {
    fn get(&mut self, fingerprint: u64) -> Option<CachedAnswer> {
        let bytes = self.backend.get(StoreId::SemanticCache, &fingerprint.to_be_bytes()).ok()??;
        match decode_cached(&bytes, self.world.catalog().sql()) {
            Ok((epoch, answer)) if epoch == self.world.epoch() => {
                self.hits += 1;
                Some(answer)
            }
            // Stale stamp (never served) or undecodable: a miss.
            _ => None,
        }
    }

    fn put(&mut self, fingerprint: u64, answer: CachedAnswer) {
        self.misses += 1;
        let bytes = encode_cached(self.world.epoch(), &answer);
        let written = self
            .backend
            .put(StoreId::SemanticCache, &fingerprint.to_be_bytes(), &bytes)
            .and_then(|()| self.backend.commit(self.world.epoch()));
        if written.is_err() {
            self.write_errors += 1;
        }
    }

    fn invalidate(&mut self, _effects: &cda_analyzer::EffectSet) -> usize {
        // Durable records are reconciled storage-side when the successor
        // world is opened (`sync_world_delta`): intersecting readers are
        // removed there and survivors re-stamped, shared by every durable
        // session over the backend. Nothing is left for this handle to do —
        // and the epoch check in `get` keeps any record the reconciliation
        // missed from ever being served.
        0
    }

    fn clear(&mut self) {
        // Durable entries are world-scoped, not conversation-scoped: a
        // conversation reset forgets the counters, not the executed work.
        self.hits = 0;
        self.misses = 0;
        self.write_errors = 0;
    }

    fn len(&self) -> usize {
        self.entries()
    }

    fn stats(&self) -> CacheStats {
        let total = self.hits + self.misses;
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries(),
            hit_rate: if total == 0 { 0.0 } else { self.hits as f64 / total as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_catalog, demo_kg};
    use cda_storage::MemBackend;

    #[test]
    fn table_codec_round_trips_values_schema_and_lineage() {
        let catalog = demo_catalog(7);
        for ds in catalog.datasets() {
            if let Some(t) = &ds.table {
                let mut w = ByteWriter::new();
                encode_table(&mut w, t);
                let buf = w.finish();
                let mut r = ByteReader::new(&buf);
                let back = decode_table(&mut r).unwrap();
                assert_eq!(&back, t, "table {} must round-trip exactly", ds.name);
                assert_eq!(back.lineages(), t.lineages());
            }
        }
    }

    #[test]
    fn dataset_codec_round_trips_every_demo_dataset() {
        let catalog = demo_catalog(7);
        for ds in catalog.datasets() {
            let back = decode_dataset(&encode_dataset(ds)).unwrap();
            assert_eq!(back.name, ds.name);
            assert_eq!(back.description, ds.description);
            assert_eq!(back.source_url, ds.source_url);
            assert_eq!(back.keywords, ds.keywords);
            assert_eq!(back.freshness, ds.freshness);
            assert_eq!(back.table, ds.table);
            match (&back.series, &ds.series) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.timestamps(), b.timestamps());
                    assert_eq!(a.values(), b.values());
                }
                (None, None) => {}
                other => unreachable!("series presence diverged: {other:?}"), // lint: allow(R002)
            }
        }
    }

    #[test]
    fn kg_codec_round_trips_dictionary_ids_exactly() {
        let kg = demo_kg();
        let back = decode_kg(&encode_kg(&kg)).unwrap();
        assert_eq!(back.len(), kg.len());
        assert_eq!(back.dict().len(), kg.dict().len());
        assert_eq!(
            back.triples().collect::<Vec<_>>(),
            kg.triples().collect::<Vec<_>>()
        );
        for (i, s) in kg.dict().strings().enumerate() {
            assert_eq!(back.dict().resolve(i as u32), Some(s));
        }
    }

    #[test]
    fn world_sync_and_load_round_trip() {
        let backend = MemBackend::new();
        let catalog = demo_catalog(7);
        let kg = demo_kg();
        let dropped =
            sync_world_delta(&backend, 3, &catalog, &kg, &crate::world::WorldDelta::Schema)
                .unwrap();
        assert_eq!(dropped, 0);
        let (cat2, kg2, epoch) = load_world(&backend).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(cat2.len(), catalog.len());
        assert_eq!(kg2.len(), kg.len());
        // Registration replay reproduces the SQL catalog table set.
        assert_eq!(cat2.sql().table_names(), catalog.sql().table_names());
        assert_eq!(cat2.clock(), catalog.clock());
    }

    #[test]
    fn purge_drops_only_mismatched_epochs() {
        let backend = MemBackend::new();
        let catalog = demo_catalog(7);
        let sql = "SELECT type, employees FROM employment_by_type";
        let result = cda_sql::execute(catalog.sql(), sql).unwrap();
        let answer = CachedAnswer { turn: 0, sql: sql.into(), result };
        backend
            .put(StoreId::SemanticCache, &1u64.to_be_bytes(), &encode_cached(0, &answer))
            .unwrap();
        backend
            .put(StoreId::SemanticCache, &2u64.to_be_bytes(), &encode_cached(1, &answer))
            .unwrap();
        let dropped = purge_stale_cache(&backend, 1).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(backend.len(StoreId::SemanticCache).unwrap(), 1);
        assert!(backend.get(StoreId::SemanticCache, &2u64.to_be_bytes()).unwrap().is_some());
    }

    #[test]
    fn cache_record_round_trips_with_rederived_plan() {
        let catalog = demo_catalog(7);
        let sql = "SELECT canton, employees FROM employment_by_type WHERE type = 'full_time'";
        let result = cda_sql::execute(catalog.sql(), sql).unwrap();
        let answer = CachedAnswer { turn: 4, sql: sql.into(), result: result.clone() };
        let bytes = encode_cached(9, &answer);
        assert_eq!(cached_epoch(&bytes).unwrap(), 9);
        let (epoch, back) = decode_cached(&bytes, catalog.sql()).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(back.turn, 4);
        assert_eq!(back.sql, sql);
        assert_eq!(back.result.table, result.table);
        assert_eq!(back.result.stats, result.stats);
        assert_eq!(back.result.plan, result.plan, "re-derived plan must equal the executed one");
    }
}
