//! Differential certification of the optimizer (CI gate).
//!
//! Every optimizer rule — alone and composed — is checked against its input
//! plan by `cda-analyzer`'s equivalence engine over a query corpus chosen to
//! trigger each rewrite, including the shapes the rules must *refuse* to
//! rewrite (fallible predicates, LEFT joins). An unsound rewrite fails this
//! suite with the offending rule, the query, and a concrete counterexample
//! table printed — which is exactly what `ci.sh` runs as its dedicated
//! `cargo test -q -p cda-sql` step.

use cda_analyzer::equiv::{certify_optimizer, EquivEngine, EquivResult, CERTIFIED_RULES};
use cda_dataframe::{Column, DataType, Field, Schema, Table};
use cda_sql::Catalog;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let emp = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("sector", DataType::Str),
            Field::new("jobs", DataType::Int),
            Field::new("rate", DataType::Float),
        ]),
        vec![
            Column::from_strs(&["ZH", "BE", "ZH", "GE", "BE", "ZH"]),
            Column::from_strs(&["it", "it", "finance", "health", "health", "it"]),
            Column::from_opt_ints(&[Some(120), Some(0), Some(340), None, Some(75), Some(18)]),
            Column::from_floats(&[1.5, 0.0, 2.25, 3.5, 0.5, 1.0]),
        ],
    )
    .expect("emp table");
    let regions = Table::from_columns(
        Schema::new(vec![
            Field::new("canton", DataType::Str),
            Field::new("population", DataType::Int),
        ]),
        vec![
            Column::from_strs(&["ZH", "BE", "GE", "VD"]),
            Column::from_opt_ints(&[Some(1_500_000), Some(1_000_000), None, Some(800_000)]),
        ],
    )
    .expect("regions table");
    c.register("emp", emp).expect("register emp");
    c.register("regions", regions).expect("register regions");
    c
}

/// The certification corpus: every rule's trigger shape, plus the shapes
/// rewrites must leave alone.
fn corpus() -> Vec<String> {
    [
        // constant folding: removable TRUE filters, foldable arithmetic,
        // constants that must NOT fold (1/0 stays for runtime)
        "SELECT canton FROM emp WHERE 1 = 1",
        "SELECT canton FROM emp WHERE 2 + 3 > 4",
        "SELECT jobs + 2 * 3 FROM emp",
        "SELECT canton FROM emp WHERE jobs > 10 AND 1 = 1",
        // predicate pushdown: single-side conjuncts, cross-side keeps,
        // LEFT-join skip, fallible all-or-nothing
        "SELECT e.canton FROM emp e JOIN regions r ON e.canton = r.canton WHERE e.jobs > 50 AND r.population > 900000",
        "SELECT e.canton FROM emp e JOIN regions r ON 1 = 1 WHERE e.canton = r.canton",
        "SELECT e.canton FROM emp e LEFT JOIN regions r ON e.canton = r.canton WHERE r.population IS NULL",
        "SELECT e.canton FROM emp e JOIN regions r ON e.canton = r.canton WHERE 100 / e.jobs > 1 AND r.population > 0",
        "SELECT e.canton FROM emp e JOIN regions r ON e.canton = r.canton WHERE e.jobs > 10 AND e.rate < 2.0 AND r.population > 500000",
        // projection pruning: narrow scans under projects/aggregates/joins
        "SELECT canton FROM emp",
        "SELECT canton FROM emp WHERE jobs > 20",
        "SELECT sector, SUM(jobs) FROM emp GROUP BY sector",
        "SELECT e.sector FROM emp e JOIN regions r ON e.canton = r.canton WHERE r.population > 0",
        // operator coverage: distinct, sort, limit/offset, in, between,
        // like, case, aggregates without group
        "SELECT DISTINCT sector FROM emp ORDER BY sector",
        "SELECT canton FROM emp WHERE sector IN ('it', 'health') ORDER BY canton LIMIT 3",
        "SELECT canton FROM emp WHERE jobs BETWEEN 10 AND 200",
        "SELECT canton FROM emp WHERE sector LIKE 'h%'",
        "SELECT CASE WHEN jobs > 100 THEN 'big' ELSE 'small' END FROM emp",
        "SELECT COUNT(*), AVG(rate) FROM emp",
        "SELECT canton, MAX(jobs) FROM emp WHERE rate > 0.1 GROUP BY canton ORDER BY canton LIMIT 2 OFFSET 1",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

#[test]
fn every_optimizer_rule_certifies_equivalent_on_the_corpus() {
    let catalog = catalog();
    let queries = corpus();
    let engine = EquivEngine::new().with_trials(8).with_seed(0xE16);
    let report = certify_optimizer(&engine, &catalog, &queries);

    // the corpus must exercise all rules and actually plan
    assert_eq!(
        report.checks.len(),
        queries.len() * CERTIFIED_RULES.len(),
        "every corpus query must plan and be checked against every rule"
    );
    for (rule, _) in CERTIFIED_RULES {
        assert!(report.checks.iter().any(|c| c.rule == rule), "rule {rule} not covered");
    }

    if !report.all_certified() {
        for check in report.uncertified() {
            eprintln!("UNCERTIFIED: rule `{}` on `{}`", check.rule, check.sql);
            match &check.result {
                EquivResult::NotEquivalent { counterexample } => {
                    eprintln!("counterexample:\n{}", counterexample.describe());
                }
                EquivResult::Unknown { reason } => eprintln!("undecided: {reason}"),
                EquivResult::Equivalent { .. } => {}
            }
        }
        panic!(
            "{} of {} optimizer rewrites failed to certify (see counterexamples above)",
            report.checks.len() - report.certified(),
            report.checks.len()
        );
    }
}

#[test]
fn certifier_refutes_a_deliberately_broken_rewrite() {
    // Sanity check that the harness has teeth: a rewrite that swaps the
    // filter constant is refuted with a re-checkable counterexample.
    use cda_sql::parser::parse;
    use cda_sql::planner::plan_select;

    let c = catalog();
    let engine = EquivEngine::new().with_trials(8).with_seed(1);
    let good = plan_select(&c, &parse("SELECT canton FROM emp WHERE jobs > 10").expect("parse"))
        .expect("plan");
    let bad = plan_select(&c, &parse("SELECT canton FROM emp WHERE jobs > 11").expect("parse"))
        .expect("plan");
    match engine.check(&good, &bad) {
        EquivResult::NotEquivalent { counterexample } => {
            assert!(counterexample.recheck(&good, &bad), "counterexample must re-check");
        }
        other => panic!("broken rewrite not refuted: {other:?}"),
    }
}

#[test]
fn fingerprints_ignore_conjunct_order_but_not_semantics() {
    use cda_sql::parser::parse;
    use cda_sql::planner::plan_select;

    let c = catalog();
    let engine = EquivEngine::new();
    let p = plan_select(
        &c,
        &parse("SELECT canton FROM emp WHERE jobs > 10 AND sector = 'it'").expect("parse"),
    )
    .expect("plan");
    let q = plan_select(
        &c,
        &parse("SELECT canton FROM emp WHERE sector = 'it' AND jobs > 10").expect("parse"),
    )
    .expect("plan");
    assert_eq!(engine.fingerprint(&p), engine.fingerprint(&q));
    let r = plan_select(
        &c,
        &parse("SELECT canton FROM emp WHERE jobs > 10 AND sector = 'finance'").expect("parse"),
    )
    .expect("plan");
    assert_ne!(engine.fingerprint(&p), engine.fingerprint(&r));
}
